#!/usr/bin/env python
"""Quickstart: baseline core vs Phelps on the astar kernel.

Runs the paper's running example (Figure 3's makebound2 loop with its 16
dependent delinquent branches and 8 doubly-guarded stores) on the Table III
core, with and without Phelps, and prints what happened.

    python examples/quickstart.py
"""

from repro.harness import RunConfig, simulate


def main() -> None:
    n = 80_000
    print(f"Simulating astar for {n:,} instructions (this takes ~30s)...\n")

    base = simulate(RunConfig(workload="astar", engine="baseline",
                              max_instructions=n))
    phelps = simulate(RunConfig(workload="astar", engine="phelps",
                                max_instructions=n))

    print(f"{'':14s} {'IPC':>6s} {'MPKI':>7s} {'cycles':>9s}")
    print(f"{'baseline':14s} {base.ipc:6.3f} {base.mpki:7.2f} {base.cycles:9d}")
    print(f"{'Phelps':14s} {phelps.ipc:6.3f} {phelps.mpki:7.2f} {phelps.cycles:9d}")

    speedup = (phelps.stats.retired / phelps.cycles) / (base.stats.retired / base.cycles)
    print(f"\nPhelps speedup: {speedup:.2f}x   "
          f"MPKI: {base.mpki:.1f} -> {phelps.mpki:.1f}")

    e = phelps.stats.engine
    print(f"\nWhat Phelps did:")
    print(f"  epochs observed:            {e['epochs']}")
    print(f"  helper-thread activations:  {e['activations']}")
    print(f"  pre-executed outcomes used: {e['queue']['consumed']}")
    print(f"  outcomes not ready in time: {e['queue']['not_timely']}")
    print(f"  helper instructions retired: {phelps.stats.helper_retired:,}"
          f" (the cost of pre-execution)")


if __name__ == "__main__":
    main()
