#!/usr/bin/env python
"""Inspect the helper thread Phelps constructs for astar's makebound2 loop.

Shows the whole life cycle in one run: delinquency measurement (DBT),
loop selection (LT), IBDA slice growth, CDFSM guard learning, and the
finalized Helper Thread Cache row — predicate producers, predicated
stores, live-in sets, and queue assignments.

    python examples/inspect_helper_thread.py
"""

from repro.core import Core, CoreConfig
from repro.isa.opcodes import Opcode
from repro.phelps import PhelpsConfig, PhelpsEngine
from repro.workloads.astar import build_astar


def main() -> None:
    program = build_astar(worklist_len=704, grid_dim=64, seed=5)
    engine = PhelpsEngine(PhelpsConfig(epoch_length=8000))
    core = Core(program, config=CoreConfig(), engine=engine)
    print("Running astar until the helper thread deploys...")
    stats = core.run()

    print(f"\nEpochs: {engine.epoch_index}, activations: {engine.activations}")
    print(f"Loop status: {engine.loop_status}")

    row = next(iter(engine.htc.rows.values()))
    print(f"\nHTC row for loop {row.loop_target:#x}..{row.loop_branch:#x} "
          f"({'nested' if row.is_nested else 'inner-thread-only'})")
    print(f"  helper thread size: {row.size} instructions")
    print(f"  live-ins from main thread: "
          f"{['x%d' % r for r in row.mt_liveins_outer]}")
    print(f"  prediction queues: {len(row.queue_assignment)} "
          f"(PCs {[hex(pc) for pc in sorted(row.queue_assignment)][:4]}...)")

    print("\nHelper thread instructions (predicate producers marked):")
    for inst in row.inner_insts:
        marker = ""
        if inst.opcode is Opcode.PRED:
            guard = f"p{inst.pred_rs}@{'T' if inst.pred_dir else 'NT'}" \
                if inst.pred_rs else "pred0 (unguarded)"
            marker = f"   <-- predicate producer p{inst.pred_rd}, guarded by {guard}"
        elif inst.opcode is Opcode.SD:
            guard = f"p{inst.pred_rs}@{'T' if inst.pred_dir else 'NT'}" \
                if inst.pred_rs else "pred0"
            marker = f"   <-- predicated store (suppressed unless {guard})"
        elif inst.is_cond_branch:
            marker = "   <-- loop branch (the helper's only control flow)"
        print(f"  {inst!r}{marker}")

    print(f"\nResult: MPKI {stats.mpki:.2f}, "
          f"{engine.queues.consumed} pre-executed outcomes consumed, "
          f"{engine.queue_wrong} of them wrong "
          f"({engine.spec_cache.losses} speculative-cache evictions).")


if __name__ == "__main__":
    main()
