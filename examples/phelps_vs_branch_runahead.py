#!/usr/bin/env python
"""Phelps vs Branch Runahead on the dependent-branch problem (Fig. 11).

Runs astar's makebound2 kernel under both pre-execution schemes and shows
*why* Phelps wins: BR's chains predict the guarding branch (b1) with a
bimodal predictor and roll back when wrong — the misprediction bottleneck
just moves into the helper engine — while Phelps pre-executes everything
and lets the main thread pick.

    python examples/phelps_vs_branch_runahead.py
"""

from repro.harness import RunConfig, ascii_table, simulate


def main() -> None:
    n = 100_000
    print(f"Simulating astar under four configurations ({n:,} instructions "
          f"each; takes a few minutes)...\n")

    rows = []
    details = {}
    base = simulate(RunConfig(workload="astar", engine="baseline",
                              max_instructions=n))
    rows.append(["baseline", 1.0, base.mpki, base.ipc])
    for label, engine in [("BR (non-spec)", "br_nonspec"),
                          ("BR (spec)", "br"),
                          ("Phelps", "phelps")]:
        r = simulate(RunConfig(workload="astar", engine=engine,
                               max_instructions=n))
        speedup = (r.stats.retired / r.cycles) / (base.stats.retired / base.cycles)
        rows.append([label, speedup, r.mpki, r.ipc])
        details[label] = r.stats.engine

    print(ascii_table(["config", "speedup", "MPKI", "IPC"], rows))

    br = details["BR (spec)"]
    ph = details["Phelps"]
    print("\nWhy the gap (engine internals):")
    print(f"  BR rollbacks (chain-group squashes):   {br.get('rollbacks')}")
    print(f"  BR outcomes not ready in time:         {br['br_queue']['not_timely']}")
    print(f"  BR stores: excluded by design -> stale b1 inputs")
    print(f"  Phelps outcomes consumed / wrong:      "
          f"{ph['queue']['consumed']} / {ph['queue_wrong']}")
    print(f"  Phelps rollbacks in the helper thread: 0 by construction "
          f"(lockstep queues, no guard prediction)")


if __name__ == "__main__":
    main()
