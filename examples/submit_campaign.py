#!/usr/bin/env python
"""Campaign-service tour: submit a sweep over HTTP and ride it home.

Starts an in-process campaign daemon with a two-worker pool, then does
everything a remote client would do with nothing but stdlib HTTP:

1. ``POST /campaigns`` — submit a workloads × engines sweep spec;
2. ``GET /campaigns/<id>`` — poll status and per-point lease state;
3. ``GET /campaigns/<id>/stream`` — tail the Server-Sent Events feed
   until the campaign reaches a terminal status;
4. ``GET /campaigns/<id>/results`` — fetch the finished result entries.

    python examples/submit_campaign.py [--root /tmp/svc] [-n 20000]

Point it at an already-running daemon instead with ``--connect URL``
(start one with ``python -m repro service --port 8330``).
"""

import argparse
import json
import tempfile
import urllib.request
from pathlib import Path


def get_json(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--connect", default=None,
                        help="URL of a running daemon (default: start one)")
    parser.add_argument("--root", default=None,
                        help="service campaign root (default: a temp dir)")
    parser.add_argument("-n", type=int, default=20_000,
                        help="instructions per point")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    service = None
    if args.connect:
        base = args.connect.rstrip("/")
    else:
        from repro.service import CampaignService, ServiceConfig
        root = Path(args.root or tempfile.mkdtemp(prefix="svc-"))
        service = CampaignService(ServiceConfig(
            root=str(root), port=0, workers=args.workers,
            heartbeat_interval=0.2)).start()
        base = service.url
    print(f"daemon       : {base}")

    try:
        # 1. Submit.
        spec = {"workloads": ["astar", "sssp"],
                "engines": ["baseline", "phelps"],
                "instructions": args.n, "tenant": "example"}
        req = urllib.request.Request(
            f"{base}/campaigns", data=json.dumps(spec).encode(),
            method="POST", headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=10) as resp:
            record = json.loads(resp.read().decode())
        cid = record["id"]
        print(f"submitted    : {cid} ({record['total_points']} points "
              f"for tenant {record['tenant']})")

        # 2. One status poll, showing the per-point lease view.
        doc = get_json(f"{base}/campaigns/{cid}")
        print(f"status       : {doc['status']}  counts={doc['counts']}")

        # 3. Tail the SSE stream until a terminal frame arrives.
        print("streaming    :")
        with urllib.request.urlopen(f"{base}/campaigns/{cid}/stream",
                                    timeout=600) as resp:
            for raw in resp:
                line = raw.decode().strip()
                if not line.startswith("data: "):
                    continue
                frame = json.loads(line[len("data: "):])
                print(f"  {frame['status']:<10} counts={frame['counts']} "
                      f"leased={frame['leased']}")

        # 4. Fetch the results.
        results = get_json(f"{base}/campaigns/{cid}/results")
        print(f"results      : {results['done']}/{results['total_points']} "
              f"entries")
        for key, entry in sorted(results["results"].items()):
            print(f"  {key[:12]}…  cycles={entry['cycles']:>8}  "
                  f"mpki={entry['mpki']:.1f}")
        print(f"\nwatch it again any time:  "
              f"python -m repro watch --connect {base}/campaigns/{cid}")
    finally:
        if service is not None:
            service.stop()


if __name__ == "__main__":
    main()
