#!/usr/bin/env python
"""Live-telemetry tour: run a small campaign and watch it from outside.

Launches a journaled sweep in a background thread with fast heartbeats,
serves it over the stdlib HTTP telemetry endpoint, and — from the
*outside*, exactly like `repro watch` / a Prometheus scraper would —
polls the live view while the simulation runs, printing the dashboard
table and a couple of scraped gauges per frame.

    python examples/watch_campaign.py [--dir /tmp/livecamp] [-n 20000]

Everything here is observable after the fact too: point `repro watch`
or `repro serve` at the campaign directory once this exits.
"""

import argparse
import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.harness import CampaignJournal, RunConfig, run_campaign
from repro.obs import TelemetryServer, live_view, read_live, render_watch


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default=None,
                        help="campaign directory (default: a temp dir)")
    parser.add_argument("-n", type=int, default=20_000,
                        help="instructions per point")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    root = Path(args.dir or tempfile.mkdtemp(prefix="livecamp-"))
    configs = [RunConfig(workload=w, engine=e, max_instructions=args.n)
               for w in ("astar", "sssp") for e in ("baseline", "phelps")]
    journal = CampaignJournal(root)

    def sweep():
        run_campaign(configs, journal=journal, jobs=args.jobs,
                     heartbeat_interval=0.2)

    worker = threading.Thread(target=sweep, daemon=True)
    worker.start()

    with TelemetryServer(root, interval=0.2) as srv:
        print(f"campaign dir : {root}")
        print(f"endpoint     : {srv.url}  (/metrics /campaign /live /stream)")
        while worker.is_alive():
            time.sleep(0.5)
            doc = read_live(root)
            if doc is None:  # sweep still preparing the journal
                continue
            view = live_view(doc, now=time.time())
            print("\n" + render_watch(view))
            with urllib.request.urlopen(srv.url + "/metrics",
                                        timeout=5) as resp:
                gauges = [line for line in resp.read().decode().splitlines()
                          if line.startswith("repro_campaign_points")]
            print("scraped      : " + "  ".join(gauges))

        worker.join()
        with urllib.request.urlopen(srv.url + "/campaign", timeout=5) as resp:
            final = json.loads(resp.read().decode())

    print(f"\nfinal statuses: {final['counts']}")
    print(f"replay the dashboard any time:  "
          f"python -m repro watch {root} --once")


if __name__ == "__main__":
    main()
