#!/usr/bin/env python
"""The GAP graph kernels under Phelps' dual decoupled helper threads.

Graph kernels exhibit the paper's Figure 2 idiom — a short, unpredictable
inner loop (neighbour scan) nested in a long-running outer loop (frontier
scan).  This example runs bfs and cc, shows the outer-thread/inner-thread
deployment, and reports the Visit Queue traffic.

    python examples/graph_suite.py [kernel ...]
"""

import sys

from repro.core import Core, CoreConfig
from repro.phelps import PhelpsConfig, PhelpsEngine
from repro.workloads import build_workload


def run_kernel(name: str, n: int = 100_000) -> None:
    program = build_workload(name)
    base = Core(program, config=CoreConfig()).run(max_instructions=n)

    engine = PhelpsEngine(PhelpsConfig())
    stats = Core(program, config=CoreConfig(), engine=engine).run(max_instructions=n)

    speedup = (stats.retired / stats.cycles) / (base.retired / base.cycles)
    print(f"\n=== {name} ===")
    print(f"  baseline: IPC {base.ipc:.3f}, MPKI {base.mpki:.2f}")
    print(f"  Phelps:   IPC {stats.ipc:.3f}, MPKI {stats.mpki:.2f}  "
          f"(speedup {speedup:.2f}x)")

    if engine.htc.rows:
        row = next(iter(engine.htc.rows.values()))
        if row.is_nested:
            print(f"  dual decoupled helper threads: outer {len(row.outer_insts)} "
                  f"insts, inner {len(row.inner_insts)} insts")
            print(f"  header branch {row.header_pc:#x} queued "
                  f"{engine.visit_q.enqueued} inner-loop visits "
                  f"({engine.visit_q.dequeued} processed)")
            print(f"  visit live-ins from outer thread: "
                  f"{['x%d' % r for r in row.ot_liveins_inner]}")
        else:
            print(f"  inner-thread-only helper: {row.size} instructions")
    print(f"  queue outcomes: {engine.queues.consumed} consumed, "
          f"{engine.queues.not_timely} not timely, {engine.queue_wrong} wrong")


def main() -> None:
    kernels = sys.argv[1:] or ["bfs", "cc"]
    print(f"Running {kernels} (each takes ~30-60s)...")
    for name in kernels:
        run_kernel(name)


if __name__ == "__main__":
    main()
