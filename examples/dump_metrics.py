#!/usr/bin/env python
"""Observability tour: full metrics dump for an astar Phelps run.

Runs the paper's running example with the telemetry subsystem enabled
and pretty-prints everything it collects: the flat counter registry,
the per-epoch MPKI/IPC trajectory (you can watch Phelps deploy at
epoch 2), and the per-branch-PC prediction-queue drill-down.

    python examples/dump_metrics.py [--trace-out astar.trace.json]

Pass --trace-out to also write a Chrome trace-event file; open it at
https://ui.perfetto.dev to see helper-thread lifecycles on a timeline.
"""

import argparse

from repro.harness import RunConfig, simulate
from repro.harness.reporting import epoch_table, metrics_report
from repro.obs import ObserveConfig, write_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("-n", type=int, default=60_000,
                        help="instruction budget (default 60k = 3 epochs)")
    parser.add_argument("--trace-out", default=None,
                        help="also write a Chrome trace-event JSON file")
    args = parser.parse_args()

    print(f"Simulating astar/phelps for {args.n:,} instructions "
          f"with observability on...\n")
    result = simulate(RunConfig(
        workload="astar", engine="phelps", max_instructions=args.n,
        observe_config=ObserveConfig(profile=True,
                                     pipeline_trace=args.trace_out is not None),
    ))
    s = result.stats

    print(f"IPC {s.ipc:.3f}   MPKI {s.mpki:.2f}   "
          f"cycles {s.cycles:,}   wall {result.wall_seconds:.1f}s")

    print("\n--- per-epoch trajectory (watch MPKI drop when Phelps deploys) ---")
    print(epoch_table(s.epochs))

    print("\n--- per-branch-PC prediction queues ---")
    print(metrics_report(s.metrics, prefix="phelps.queues"))

    print("\n--- engine counters ---")
    print(metrics_report(s.metrics, prefix="engine"))

    print("\n--- where the simulator spent its own time ---")
    print(result.obs.profiler.report())

    if args.trace_out:
        n = write_chrome_trace(args.trace_out, result.obs.events.events(),
                               tracer=result.obs.tracer)
        print(f"\nWrote {n} trace events to {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
