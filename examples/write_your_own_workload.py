#!/usr/bin/env python
"""Write a custom workload with the assembler DSL and watch Phelps react.

Builds a pointer-chasing filter loop with one delinquent data-dependent
branch and a guarded influential store, then runs it under the baseline
core and Phelps.  This is the template for bringing your own kernel to the
simulator.

    python examples/write_your_own_workload.py
"""

import random

from repro.core import Core, CoreConfig
from repro.isa import Assembler, run_program
from repro.phelps import PhelpsConfig, PhelpsEngine


def build_filter_kernel(n: int = 4096, seed: int = 99):
    """for i in range(n): if table[hash(i)] < threshold: table[hash(i)] += 1"""
    rng = random.Random(seed)
    a = Assembler("filter")
    table = a.data("table", [rng.randrange(0, 100) for _ in range(2048)])

    a.li("x1", table)
    a.li("x2", n)
    a.li("x3", 0)           # i
    a.li("x4", 50)          # threshold
    a.li("x5", 2654435761)  # hash multiplier
    a.li("x20", 2047)
    a.label("loop")
    a.mul("x6", "x3", "x5")
    a.srli("x6", "x6", 7)
    a.and_("x6", "x6", "x20")
    a.slli("x6", "x6", 3)
    a.add("x6", "x6", "x1")
    a.ld("x7", "x6", 0)                 # table[hash(i)]
    a.bge("x7", "x4", "skip")           # delinquent: arbitrary data
    a.addi("x7", "x7", 1)
    a.sd("x7", "x6", 0)                 # guarded influential store
    a.label("skip")
    # Prunable bookkeeping (what pre-execution strips away):
    for k in range(6):
        a.xori("x8", "x7", k)
        a.add("x9", "x9", "x8")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


def main() -> None:
    program = build_filter_kernel()

    # Sanity: run it architecturally first.
    ref = run_program(program)
    print(f"Functional run: {ref.retired:,} instructions, "
          f"final checksum x9 = {ref.regs[9]}")

    base = Core(program, config=CoreConfig()).run()
    engine = PhelpsEngine(PhelpsConfig(epoch_length=8000))
    stats = Core(program, config=CoreConfig(), engine=engine).run()

    speedup = (stats.retired / stats.cycles) / (base.retired / base.cycles)
    print(f"\nbaseline: IPC {base.ipc:.3f}  MPKI {base.mpki:.2f}")
    print(f"Phelps:   IPC {stats.ipc:.3f}  MPKI {stats.mpki:.2f}  "
          f"speedup {speedup:.2f}x")
    print(f"\nPhelps found the loop: {engine.loop_status}")
    if engine.htc.rows:
        row = next(iter(engine.htc.rows.values()))
        print(f"Helper thread: {row.size} of "
              f"{(row.loop_branch - row.loop_target) // 4 + 1} loop instructions "
              f"(the rest was pruned)")


if __name__ == "__main__":
    main()
