#!/usr/bin/env python
"""Re-draw the paper's figures as ASCII charts from the benchmark cache.

Run ``pytest benchmarks/ --benchmark-only`` first (it populates
``benchmarks/results/cache.json``), then:

    python examples/render_figures.py
"""

import json
import pathlib
import sys

from repro.harness.plots import grouped_bars, hbar_chart, stacked_percent_rows

CACHE = pathlib.Path(__file__).parent.parent / "benchmarks" / "results" / "cache.json"

GAP = ["bc", "bfs", "pr", "cc", "cc_sv", "sssp", "astar"]
ENGINES = ["perfbp", "phelps", "br", "br12"]


def _entries(cache, workload, n="100000"):
    out = {}
    for key, entry in cache.items():
        parts = key.split("|")
        if parts[0] == workload and parts[2] == n and len(parts) == 3:
            out[parts[1]] = entry
        elif parts[0] == workload and parts[2] == n and parts[1] == "phelps" \
                and "gb1_st1_gs1" in key and "ep20000" in key and len(parts) == 4:
            out["phelps"] = entry
    return out


def main() -> int:
    if not CACHE.exists():
        print("No benchmark cache yet — run: pytest benchmarks/ --benchmark-only")
        return 1
    cache = json.loads(CACHE.read_text())

    print("=== Fig. 12a: speedup over baseline (|:baseline) ===\n")
    groups = {}
    for w in GAP:
        entries = _entries(cache, w)
        base = entries.get("baseline")
        if not base:
            continue
        base_rate = base["retired"] / base["cycles"]
        series = {}
        for e in ENGINES:
            if e in entries:
                rate = entries[e]["retired"] / entries[e]["cycles"]
                series[e] = rate / base_rate
        groups[w] = series
    print(grouped_bars(groups, width=44, reference=1.0))

    print("\n=== Fig. 13a: MPKI, baseline vs Phelps ===\n")
    series = {}
    for w in GAP:
        entries = _entries(cache, w)
        if "baseline" in entries and "phelps" in entries:
            series[f"{w} base"] = entries["baseline"]["mpki"]
            series[f"{w} phelps"] = entries["phelps"]["mpki"]
    print(hbar_chart(series, width=44))

    print("\n=== Fig. 14: misprediction taxonomy (stacked) ===\n")
    order = ["eliminated", "gathering", "being_constructed", "too_big",
             "not_iterating", "not_in_loop", "not_delinquent",
             "deployed_residual"]
    rows = {}
    for w in GAP + ["mcf", "xz", "gcc", "leela", "xalanc"]:
        entries = _entries(cache, w)
        if "baseline" not in entries or "phelps" not in entries:
            continue
        classes = dict(entries["phelps"]["engine"].get("misp_classes", {}))
        classes["eliminated"] = max(
            0, entries["baseline"]["mispredicts"] - entries["phelps"]["mispredicts"])
        rows[w] = {k: float(v) for k, v in classes.items()}
    print(stacked_percent_rows(rows, order=order, width=50))
    return 0


if __name__ == "__main__":
    sys.exit(main())
