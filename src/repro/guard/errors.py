"""Typed guard failures and their diagnostic bundles.

This module is a dependency leaf: the core pipeline raises these from its
hot loop and the CLI maps them to exit codes, so nothing here may import
the pipeline, the harness, or the engines.  Each exception carries a
report dataclass whose ``to_dict()`` is the JSON "diagnostic bundle" the
``guard`` CLI verb writes on failure.

The snapshot helpers at the bottom duck-type against a live ``Core`` so a
report can be assembled at the exact cycle of the failure without this
module knowing the core's types.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DivergenceError", "DivergenceReport", "GuardError", "HangReport",
    "InvariantReport", "InvariantViolation", "SimulationHang",
    "pipeline_snapshot", "recent_events",
]


@dataclass
class DivergenceReport:
    """First architectural disagreement between commit and the golden model."""

    cycle: int
    kind: str                     # "pc" | "reg_value" | "load_value" | ...
    expected: str                 # golden-model view
    actual: str                   # pipeline view
    uop: str                      # repr of the diverging uop
    pc: int
    seq: int
    golden_pc: int
    golden_retired: int
    checked: int                  # instructions compared before this one
    events: List[Dict] = field(default_factory=list)   # last-N obs events
    threads: List[Dict] = field(default_factory=list)  # pipeline snapshot
    # Rewind-and-replay bundle: when the run carried mid-run snapshots,
    # the harness re-runs from the preceding snapshot with full pipeline
    # tracing and attaches the focused diagnostics here (see
    # ``repro.harness.simulator``).  None when no snapshot was available.
    replay: Optional[Dict] = None

    def to_dict(self) -> Dict:
        doc = {
            "failure": "divergence",
            "cycle": self.cycle,
            "kind": self.kind,
            "expected": self.expected,
            "actual": self.actual,
            "uop": self.uop,
            "pc": f"{self.pc:#x}",
            "seq": self.seq,
            "golden_pc": f"{self.golden_pc:#x}",
            "golden_retired": self.golden_retired,
            "checked": self.checked,
            "events": self.events,
            "threads": self.threads,
        }
        if self.replay is not None:
            doc["replay"] = self.replay
        return doc

    def summary(self) -> str:
        return (f"divergence[{self.kind}] at cycle {self.cycle}, "
                f"pc={self.pc:#x}: expected {self.expected}, "
                f"got {self.actual} ({self.checked} instructions matched)")


@dataclass
class InvariantReport:
    """Cycle-level sanitizer failure: structural invariants that broke."""

    cycle: int
    violations: List[str]
    events: List[Dict] = field(default_factory=list)
    threads: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "failure": "invariant",
            "cycle": self.cycle,
            "violations": list(self.violations),
            "events": self.events,
            "threads": self.threads,
        }

    def summary(self) -> str:
        head = self.violations[0] if self.violations else "?"
        more = f" (+{len(self.violations) - 1} more)" if len(self.violations) > 1 else ""
        return f"invariant violation at cycle {self.cycle}: {head}{more}"


@dataclass
class HangReport:
    """No-commit livelock: the main thread stopped retiring instructions."""

    cycle: int
    last_commit_cycle: int
    stalled_for: int
    retired: int
    idle_cycles_skipped: int
    engine: str                   # engine class name
    events: List[Dict] = field(default_factory=list)
    threads: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "failure": "hang",
            "cycle": self.cycle,
            "last_commit_cycle": self.last_commit_cycle,
            "stalled_for": self.stalled_for,
            "retired": self.retired,
            "idle_cycles_skipped": self.idle_cycles_skipped,
            "engine": self.engine,
            "events": self.events,
            "threads": self.threads,
        }

    def summary(self) -> str:
        return (f"no commit for {self.stalled_for} cycles "
                f"(last at cycle {self.last_commit_cycle}, "
                f"{self.retired} retired, engine {self.engine})")


class GuardError(RuntimeError):
    """Base class for guard failures; ``report`` is the diagnostic bundle."""

    def __init__(self, report):
        self.report = report
        super().__init__(report.summary())


class DivergenceError(GuardError):
    """Commit disagreed with the golden in-order model."""


class InvariantViolation(GuardError):
    """A structural pipeline invariant broke mid-flight."""


class SimulationHang(GuardError):
    """The forward-progress watchdog fired: no-commit livelock."""


# ----------------------------------------------------------------------
# Snapshot helpers (duck-typed against a live Core).
# ----------------------------------------------------------------------
def pipeline_snapshot(core) -> List[Dict]:
    """Per-thread pipeline occupancy at the failure cycle."""
    out: List[Dict] = []
    for t in core.threads:
        rob_head: Optional[str] = repr(t.rob[0]) if t.rob else None
        out.append({
            "thread": t.id,
            "kind": t.kind.value,
            "retired": t.retired,
            "rob": len(t.rob),
            "rob_head": rob_head,
            "frontend_q": len(t.frontend_q),
            "lq": len(t.lq.entries),
            "sq": len(t.sq.entries),
            "blocked_loads": len(t.blocked_loads),
            "fetch_halted": t.fetch_halted,
            "wait_for_moves": t.wait_for_moves,
            "resume_pc": f"{t.resume_pc:#x}",
        })
    return out


def recent_events(core, limit: int = 32) -> List[Dict]:
    """The last ``limit`` observability events (empty when obs is off)."""
    if core.obs is None:
        return []
    events = core.obs.events.events()[-limit:]
    return [{"cycle": e.cycle, "name": e.name, "category": e.category,
             "args": dict(e.args)} for e in events]
