"""Golden-model co-simulation and cycle-level invariant sanitization.

:class:`SimGuard` attaches to a core when ``CoreConfig.guard_level`` is
not ``"off"`` and runs the in-order functional executor
(:class:`~repro.isa.executor.ArchState`) in lockstep with *commit*: every
main-thread uop that retires is replayed architecturally and its PC,
branch outcome, memory address/value, and destination-register value are
compared.  The first disagreement raises :class:`DivergenceError` with a
structured :class:`DivergenceReport` — catching a value-flow bug at the
instruction that caused it rather than thousands of cycles later in a
wrong IPC figure.

At ``guard_level="full"`` a structural sanitizer additionally sweeps the
pipeline every ``guard_check_interval`` cycles: freelist/RMT/AMT
consistency, ROB and LSQ program ordering, IQ occupancy accounting, and
the engine-facing queue invariants (prediction-queue head iteration never
ahead of the main thread's speculative iteration, visit-queue bounds).

Overhead discipline: the disabled path costs one ``is None`` test per
retired uop and zero per cycle (the pipeline only calls ``on_cycle`` when
a sanitizer is installed); see ``guard`` in BENCH_perf.json.
"""

from typing import List, Optional

from repro.guard.errors import (DivergenceError, DivergenceReport,
                                InvariantReport, InvariantViolation,
                                pipeline_snapshot, recent_events)
from repro.isa.executor import ArchState
from repro.utils.bits import to_i64

__all__ = ["SimGuard"]


class SimGuard:
    """Per-core guard state: the golden model plus sanitizer bookkeeping."""

    def __init__(self, core):
        self.core = core
        self.level = core.config.guard_level
        self.interval = max(1, core.config.guard_check_interval)
        self.golden = ArchState(core.program)
        self.checked = 0      # retired instructions compared against golden
        self.sweeps = 0       # invariant sweeps completed
        self._next_sweep = 0

    # ------------------------------------------------------------------
    # Boot (sampled simulation): adopt the same checkpoint as the core.
    # ------------------------------------------------------------------
    def boot(self, regs, mem, pc: int) -> None:
        self.golden.restore_snapshot({
            "regs": list(regs), "mem": dict(mem), "pc": pc,
            "halted": False, "retired": 0,
        })

    # ------------------------------------------------------------------
    # Commit-lockstep comparison.
    # ------------------------------------------------------------------
    def on_retire(self, thread, uop) -> None:
        """Replay one retiring main-thread uop on the golden model."""
        golden = self.golden
        inst = uop.inst
        if golden.halted:
            self._diverge(uop, "control", "halted",
                          f"retired {inst.opcode.value}@{uop.pc:#x}")
        if uop.pc != golden.pc:
            self._diverge(uop, "pc", f"{golden.pc:#x}", f"{uop.pc:#x}")

        step = golden.step()
        self.checked += 1

        if inst.is_cond_branch:
            if bool(uop.taken) != bool(step.taken):
                self._diverge(uop, "branch_direction",
                              str(bool(step.taken)), str(bool(uop.taken)))
        elif inst.is_jump:
            if uop.actual_target != step.next_pc:
                self._diverge(uop, "jump_target", f"{step.next_pc:#x}",
                              f"{uop.actual_target:#x}"
                              if uop.actual_target is not None else "None")

        if inst.is_load:
            if uop.mem_addr != step.mem_addr:
                self._diverge(uop, "load_addr", f"{step.mem_addr:#x}",
                              f"{uop.mem_addr:#x}"
                              if uop.mem_addr is not None else "None")
            if to_i64(uop.result) != step.mem_value:
                self._diverge(uop, "load_value", str(step.mem_value),
                              str(to_i64(uop.result)))
        elif inst.is_store:
            if uop.mem_addr != step.mem_addr:
                self._diverge(uop, "store_addr", f"{step.mem_addr:#x}",
                              f"{uop.mem_addr:#x}"
                              if uop.mem_addr is not None else "None")
            if to_i64(uop.store_value) != to_i64(step.mem_value):
                self._diverge(uop, "store_value", str(to_i64(step.mem_value)),
                              str(to_i64(uop.store_value)))

        dest = inst.dest_reg
        if dest is not None:
            expected = golden.regs[dest]
            if to_i64(uop.result) != expected:
                self._diverge(uop, "reg_value",
                              f"x{dest}={expected}",
                              f"x{dest}={to_i64(uop.result)}")

    def _diverge(self, uop, kind: str, expected: str, actual: str) -> None:
        core = self.core
        report = DivergenceReport(
            cycle=core.cycle, kind=kind, expected=expected, actual=actual,
            uop=repr(uop), pc=uop.pc, seq=uop.seq,
            golden_pc=self.golden.pc, golden_retired=self.golden.retired,
            checked=self.checked,
            events=recent_events(core), threads=pipeline_snapshot(core))
        if core.obs is not None:
            core.obs.events.divergence(core.cycle, kind, uop.pc)
        raise DivergenceError(report)

    # ------------------------------------------------------------------
    # Cycle-level invariant sanitizer (guard_level="full").
    # ------------------------------------------------------------------
    def on_cycle(self, core) -> None:
        if core.cycle < self._next_sweep:
            return
        self._next_sweep = core.cycle + self.interval
        violations = self.check_invariants()
        if violations:
            report = InvariantReport(
                cycle=core.cycle, violations=violations,
                events=recent_events(core), threads=pipeline_snapshot(core))
            if core.obs is not None:
                core.obs.events.invariant_violation(core.cycle, violations)
            raise InvariantViolation(report)
        self.sweeps += 1

    def check_invariants(self) -> List[str]:
        """All violated invariants this cycle (empty list = healthy)."""
        core = self.core
        bad: List[str] = []

        for pool, name in ((core.pool, "int"), (core.pred_pool, "pred")):
            free = pool.free_list()
            if len(set(free)) != len(free):
                bad.append(f"{name} freelist holds duplicate registers")
            if pool.free_count() + pool.held_total() != pool.size - pool.reserved:
                bad.append(
                    f"{name} pool leaked registers: free={pool.free_count()} "
                    f"held={pool.held_total()} size={pool.size}")

        free_int = set(core.pool.free_list())
        free_pred = set(core.pred_pool.free_list())
        dispatched = 0
        for t in core.threads:
            for table, free, name in ((t.rmt, free_int, "RMT"),
                                      (t.amt, free_int, "AMT"),
                                      (t.pred_rmt, free_pred, "pred RMT")):
                for phys in table.mapped_physical():
                    if phys in free:
                        bad.append(f"thread {t.id} {name} maps freed p{phys}")
                        break

            if len(t.rob) > t.share.rob:
                bad.append(f"thread {t.id} ROB over partition "
                           f"({len(t.rob)}/{t.share.rob})")
            last = -1
            for u in t.rob:
                if u.thread_id != t.id:
                    bad.append(f"thread {t.id} ROB holds foreign uop {u!r}")
                    break
                if u.seq <= last:
                    bad.append(f"thread {t.id} ROB out of program order "
                               f"at seq {u.seq}")
                    break
                last = u.seq
                if u.state.value == "dispatched":
                    dispatched += 1

            for q, name in ((t.lq, "LQ"), (t.sq, "SQ")):
                if len(q.entries) > q.capacity:
                    bad.append(f"thread {t.id} {name} over capacity")
                if any(a.seq >= b.seq for a, b in zip(q.entries, q.entries[1:])):
                    bad.append(f"thread {t.id} {name} out of program order")

        if dispatched != core.iq_count:
            bad.append(f"IQ accounting skew: counted {dispatched} dispatched "
                       f"uops, iq_count={core.iq_count}")

        bad.extend(self._engine_invariants())
        return bad

    def _engine_invariants(self) -> List[str]:
        """Phelps-structure invariants, duck-typed so any engine (or none)
        is acceptable."""
        bad: List[str] = []
        engine = self.core.engine
        queues = getattr(engine, "queues", None)
        if queues is not None and getattr(queues, "active", False):
            for s in (0, 1):
                # The paper's lockstep discipline: head (main-thread retired
                # iteration) can never pass spec_head (fetched iteration)...
                if queues.head[s] > queues.spec_head[s]:
                    bad.append(
                        f"prediction-queue set {s}: head iteration "
                        f"{queues.head[s]} ahead of spec_head "
                        f"{queues.spec_head[s]}")
                # ...and the helper tail must never wrap onto a live column.
                if queues.tail[s] - queues.head[s] > queues.depth - 1:
                    bad.append(
                        f"prediction-queue set {s}: tail "
                        f"{queues.tail[s]} overran ring (head "
                        f"{queues.head[s]}, depth {queues.depth})")
        visit_q = getattr(engine, "visit_q", None)
        if visit_q is not None and len(visit_q) > visit_q.depth:
            bad.append(f"visit queue over depth ({len(visit_q)}/{visit_q.depth})")
        return bad

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        return {"checked": self.checked, "sweeps": self.sweeps}
