"""Chaos suite: inject every fault class and check the promised behavior.

Each case either **recovers** (the run completes, with the golden-model
guard proving the architectural results stayed correct — degraded IPC is
allowed, wrong values are not) or **fails fast** with one of the typed
guard errors.  Anything else — an untyped exception, a silent wrong
result — marks the case ``failed`` and the suite (and the ``guard
--chaos`` CLI verb, and the CI chaos-smoke job) goes red.

The suite is deterministic: every injector decision derives from the
``seed`` argument, so a red case replays exactly.
"""

import shutil
import tempfile
from typing import Dict, List, Optional

from repro.guard.errors import GuardError
from repro.guard.inject import (FaultInjector, corrupt_dbt,
                                corrupt_loop_table,
                                corrupt_prediction_queues, truncate_file,
                                worker_fault_env)

__all__ = ["ENGINE_FAULTS", "STORAGE_FAULTS", "WORKER_FAULTS",
           "run_chaos_suite"]

# Faults wrapped around live Phelps structures, applied per workload.
ENGINE_FAULTS = ("queue-flip", "queue-drop", "dbt-flip", "loop-table-drop")
# Shard-store faults, workload-independent (run once per suite).
STORAGE_FAULTS = ("runcache-truncate", "checkpoint-truncate")
# Parallel-runner faults, workload-independent (run once per suite).
WORKER_FAULTS = ("worker-kill", "worker-hang")


def _engine_case(fault: str, workload: str, instructions: int,
                 seed: int) -> Dict:
    from repro.core import Core, CoreConfig
    from repro.phelps import PhelpsConfig, PhelpsEngine
    from repro.workloads import build_workload

    # The short-epoch config the phelps integration tests deploy with:
    # install after ~2 epochs, leaving most of the run under a helper.
    engine = PhelpsEngine(PhelpsConfig(epoch_length=8000,
                                       min_iterations_per_visit=8))
    injector = FaultInjector(seed)
    if fault == "queue-flip":
        corrupt_prediction_queues(engine, injector, rate=0.25, mode="flip")
    elif fault == "queue-drop":
        corrupt_prediction_queues(engine, injector, rate=0.25, mode="drop")
    elif fault == "dbt-flip":
        corrupt_dbt(engine, injector, rate=0.2)
    elif fault == "loop-table-drop":
        corrupt_loop_table(engine, injector, drop_rate=0.5)
    else:
        raise ValueError(f"unknown engine fault {fault!r}")

    # guard_level="commit" is the teeth of the case: a fault that leaks
    # into architectural state diverges from the golden model and the run
    # fails typed instead of completing with a silently wrong result.
    core = Core(build_workload(workload),
                config=CoreConfig(guard_level="commit"), engine=engine)
    stats = core.run(max_instructions=instructions)
    qstats = engine.queues.stats()
    return {
        "outcome": "recovered",
        "details": {
            "injected": len(injector.log),
            "retired": stats.retired,
            "ipc": round(stats.ipc, 4),
            "guard_checked": core.guard.checked,
            "activations": engine.activations,
            "desync_terminations": engine.desync_terminations,
            "queue_consumed_wrong": qstats["consumed_wrong"],
            "queue_not_timely": qstats["not_timely"],
        },
    }


def _runcache_case(workload: str, seed: int, workdir: str) -> Dict:
    from repro.harness.runcache import RunCache, entry_from_result
    from repro.harness.simulator import RunConfig, simulate

    injector = FaultInjector(seed)
    cache = RunCache(workdir)
    config = RunConfig(workload=workload, max_instructions=1500)
    entry = entry_from_result(simulate(config))
    cache.put(config, entry)
    removed = truncate_file(cache.path_for(config), injector)
    after = cache.get(config)
    corrupt = cache.path_for(config).with_suffix(".json.corrupt")
    if after is not None:
        raise RuntimeError("truncated shard was served as a cache hit")
    if cache.quarantined != 1 or not corrupt.exists():
        raise RuntimeError("truncated shard was not quarantined")
    cache.put(config, entry)          # heal: recompute and rewrite
    healed = cache.get(config)
    if healed != entry:
        raise RuntimeError("rewritten shard did not round-trip")
    return {
        "outcome": "recovered",
        "details": {"bytes_removed": removed, "quarantined": cache.quarantined,
                    "corrupt_shard": corrupt.name, "healed": True},
    }


def _checkpoint_case(workload: str, seed: int, workdir: str) -> Dict:
    from repro.sampling.checkpoint import CheckpointStore, capture_checkpoint

    injector = FaultInjector(seed)
    store = CheckpointStore(workdir)
    before = capture_checkpoint(workload, 2000, 500, store=store)
    removed = truncate_file(store.path_for(workload, 2000, 500), injector)
    healed = capture_checkpoint(workload, 2000, 500, store=store)
    corrupt = store.path_for(workload, 2000, 500).with_suffix(".json.corrupt")
    if store.quarantined != 1 or not corrupt.exists():
        raise RuntimeError("truncated checkpoint was not quarantined")
    if (healed.pc, healed.regs, healed.mem) != (before.pc, before.regs,
                                                before.mem):
        raise RuntimeError("re-captured checkpoint diverged from original")
    if store.get(workload, 2000, 500) is None:
        raise RuntimeError("healed checkpoint shard not readable")
    return {
        "outcome": "recovered",
        "details": {"bytes_removed": removed,
                    "quarantined": store.quarantined,
                    "corrupt_shard": corrupt.name, "healed": True},
    }


def _worker_case(fault: str, workload: str) -> Dict:
    from repro.harness.parallel import simulate_many
    from repro.harness.simulator import RunConfig

    configs = [RunConfig(workload=workload, max_instructions=1500),
               RunConfig(workload=workload, max_instructions=2000)]
    if fault == "worker-kill":
        with worker_fault_env("kill", [0]):
            results = simulate_many(configs, jobs=2, retries=1, backoff=0.05)
    else:
        with worker_fault_env("hang", [0], hang_seconds=120.0):
            results = simulate_many(configs, jobs=2, retries=1, timeout=5.0,
                                    backoff=0.05)
    if results[0].attempts != 2 or not results[0].last_error:
        raise RuntimeError(
            f"retry not surfaced: attempts={results[0].attempts} "
            f"last_error={results[0].last_error!r}")
    if results[1].attempts != 1 or results[1].last_error:
        raise RuntimeError("clean run carried retry metadata")
    return {
        "outcome": "recovered",
        "details": {"attempts": results[0].attempts,
                    "last_error": results[0].last_error,
                    "cycles": results[0].stats.cycles},
    }


def run_chaos_suite(workloads: List[str], instructions: int = 30_000,
                    seed: int = 1,
                    workdir: Optional[str] = None) -> Dict:
    """Run every fault class; returns the suite report (JSON-ready)."""
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    cases: List[Dict] = []

    def _run(fault: str, workload: str, fn, *args) -> None:
        case = {"fault": fault, "workload": workload, "error": None}
        try:
            case.update(fn(*args))
        except GuardError as exc:
            # Typed fail-fast is an acceptable outcome *contract-wise* but
            # still fails the suite: these seeds are chosen to recover.
            case["outcome"] = "failed"
            case["error"] = f"{type(exc).__name__}: {exc}"
            case["bundle"] = exc.report.to_dict()
        except Exception as exc:
            case["outcome"] = "failed"
            case["error"] = f"{type(exc).__name__}: {exc}"
        cases.append(case)

    try:
        for workload in workloads:
            for fault in ENGINE_FAULTS:
                _run(fault, workload, _engine_case, fault, workload,
                     instructions, seed)
        first = workloads[0]
        _run("runcache-truncate", first, _runcache_case, first, seed,
             workdir + "/runcache")
        _run("checkpoint-truncate", first, _checkpoint_case, first, seed,
             workdir + "/checkpoints")
        for fault in WORKER_FAULTS:
            _run(fault, first, _worker_case, fault, first)
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)

    failed = sum(1 for c in cases if c["outcome"] != "recovered")
    return {
        "schema": 1,
        "seed": seed,
        "instructions": instructions,
        "workloads": list(workloads),
        "cases": cases,
        "failed": failed,
    }
