"""Simulation health: golden-model co-simulation, invariant sanitizing,
forward-progress watchdog, and fault injection.

Import layering: this package is imported *lazily* by the core pipeline
(only when ``CoreConfig.guard_level`` enables it or the watchdog trips),
and this ``__init__`` pulls in only the leaf modules.  ``repro.guard.inject``
and ``repro.guard.chaos`` reach back into the harness, so they are
imported explicitly by their users (the CLI ``guard`` verb, the tests),
never from here.
"""

from repro.guard.errors import (DivergenceError, DivergenceReport,
                                GuardError, HangReport, InvariantReport,
                                InvariantViolation, SimulationHang)
from repro.guard.checker import SimGuard
from repro.guard.watchdog import build_hang_report, raise_hang

__all__ = [
    "DivergenceError", "DivergenceReport", "GuardError", "HangReport",
    "InvariantReport", "InvariantViolation", "SimGuard", "SimulationHang",
    "build_hang_report", "raise_hang",
]
