"""Deterministic, seeded fault injection.

Faults are installed by *wrapping* the victim structure's methods rather
than patching the simulator source: the injected behavior is exactly what
a corrupted hardware structure (or a killed writer process) would present
to the rest of the system, and removing the wrapper restores the pristine
object.  Every injector decision comes from one seeded ``random.Random``
stream, so a failing chaos case replays bit-identically from its seed.

Fault classes
=============
* :func:`corrupt_prediction_queues` — flip or drop helper-thread deposits
  (the paper's desync scenario: the main thread must consume-or-ignore and
  the controller must terminate the helper within one loop iteration).
* :func:`corrupt_dbt` — flip misprediction/taken bits feeding DBT
  training, so loop-bound learning and delinquency ranking are polluted.
* :func:`corrupt_loop_table` — drop Loop Table entries and flatten nested
  flags after each epoch-end populate.
* :func:`truncate_file` — chop the tail off a RunCache / checkpoint shard,
  simulating a writer killed mid-write (stores must quarantine and heal).
* :func:`worker_fault_env` — arm ``repro.harness.parallel`` workers to
  die or hang via the ``REPRO_INJECT_WORKER`` environment hook
  (``simulate_many`` must retry and surface ``attempts``).
"""

import json
import os
import random
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["FaultInjector", "WORKER_FAULT_ENV", "corrupt_dbt",
           "corrupt_loop_table", "corrupt_prediction_queues",
           "truncate_file", "worker_fault_env"]

WORKER_FAULT_ENV = "REPRO_INJECT_WORKER"


class FaultInjector:
    """Seeded decision stream plus a log of every fault actually fired."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.log: List[Dict] = []

    def fire(self, rate: float) -> bool:
        return self.rng.random() < rate

    def note(self, kind: str, **detail) -> None:
        self.log.append({"kind": kind, **detail})

    def count(self, kind: str) -> int:
        return sum(1 for entry in self.log if entry["kind"] == kind)


# ----------------------------------------------------------------------
# Phelps-structure faults (wrap-based).
# ----------------------------------------------------------------------
def corrupt_prediction_queues(engine, injector: FaultInjector,
                              rate: float = 0.25,
                              mode: str = "flip") -> None:
    """Flip (``mode="flip"``) or drop (``mode="drop"``) queue deposits.

    A flipped deposit is consumed as a wrong prediction: the retire unit
    detects the disagreement and the controller terminates the helper
    (desync).  A dropped deposit leaves the column empty: the consumer
    falls back to the default predictor (not timely).
    """
    if mode not in ("flip", "drop"):
        raise ValueError(f"unknown queue fault mode {mode!r}")
    queues = engine.queues
    orig_deposit = queues.deposit

    def deposit(pc, outcome):
        if injector.fire(rate):
            if mode == "drop":
                injector.note("queue_drop", pc=pc)
                return
            outcome = not outcome
            injector.note("queue_flip", pc=pc)
        orig_deposit(pc, outcome)

    queues.deposit = deposit


def corrupt_dbt(engine, injector: FaultInjector, rate: float = 0.2) -> None:
    """Flip the taken/mispredicted bits feeding DBT training."""
    dbt = engine.dbt
    orig_note = dbt.note_retired

    def note_retired(pc, taken, target, mispredicted):
        if injector.fire(rate):
            injector.note("dbt_flip", pc=pc)
            taken = not taken
            mispredicted = not mispredicted
        orig_note(pc, taken, target, mispredicted)

    dbt.note_retired = note_retired


def corrupt_loop_table(engine, injector: FaultInjector,
                       drop_rate: float = 0.5) -> None:
    """Drop Loop Table entries and flatten nesting after every populate."""
    lt = engine.lt
    orig_populate = lt.populate

    def populate(dbt, threshold):
        orig_populate(dbt, threshold)
        for key in list(lt.entries):
            if injector.fire(drop_rate):
                injector.note("loop_table_drop", loop_branch=key[0])
                del lt.entries[key]
            elif lt.entries[key].is_nested and injector.fire(drop_rate):
                injector.note("loop_table_flatten", loop_branch=key[0])
                lt.entries[key].is_nested = False

    lt.populate = populate


# ----------------------------------------------------------------------
# Storage faults.
# ----------------------------------------------------------------------
def truncate_file(path, injector: Optional[FaultInjector] = None,
                  keep_fraction: float = 0.5) -> int:
    """Cut ``path`` down to a prefix, as a writer killed mid-write would.

    Returns the number of bytes removed.  (The stores write via temp-file
    + rename, so this models pre-rename kill *plus* filesystem damage —
    the read path must treat either as an unreadable shard.)
    """
    data = open(path, "rb").read()
    keep = max(1, int(len(data) * keep_fraction))
    with open(path, "wb") as fh:
        fh.write(data[:keep])
    if injector is not None:
        injector.note("shard_truncate", path=str(path),
                      removed=len(data) - keep)
    return len(data) - keep


# ----------------------------------------------------------------------
# Worker faults (consumed by repro.harness.parallel._worker).
# ----------------------------------------------------------------------
@contextmanager
def worker_fault_env(mode: str, indices, max_attempt: int = 0,
                     exit_code: int = 23, hang_seconds: float = 3600.0):
    """Arm worker processes at the given run ``indices`` to fail.

    ``mode="kill"`` makes the worker exit with ``exit_code`` before
    simulating; ``mode="hang"`` makes it sleep ``hang_seconds`` (so the
    parent's per-run ``timeout`` must reap it).  Attempts numbered above
    ``max_attempt`` run clean — that is what lets the retry succeed.
    """
    if mode not in ("kill", "hang"):
        raise ValueError(f"unknown worker fault mode {mode!r}")
    spec = json.dumps({"mode": mode, "indices": list(indices),
                       "max_attempt": max_attempt, "exit_code": exit_code,
                       "hang_seconds": hang_seconds})
    prior = os.environ.get(WORKER_FAULT_ENV)
    os.environ[WORKER_FAULT_ENV] = spec
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(WORKER_FAULT_ENV, None)
        else:
            os.environ[WORKER_FAULT_ENV] = prior
