"""Forward-progress watchdog support.

The watchdog itself is two integer compares inside :meth:`Core.run` (so
the hot loop pays nothing measurable); when it trips, the pipeline calls
:func:`raise_hang` to assemble the diagnostic bundle and raise the typed
:class:`~repro.guard.errors.SimulationHang`.  Because the run loop checks
the *cycle counter* — which the event-driven idle fast path advances in
jumps — a livelock is caught even when every stalled cycle was skipped
rather than ticked (the skip-to-``max_cycles`` failure mode).
"""

from repro.guard.errors import (HangReport, SimulationHang,
                                pipeline_snapshot, recent_events)

__all__ = ["build_hang_report", "raise_hang"]


def build_hang_report(core, last_commit_cycle: int) -> HangReport:
    return HangReport(
        cycle=core.cycle,
        last_commit_cycle=last_commit_cycle,
        stalled_for=core.cycle - last_commit_cycle,
        retired=core.main.retired,
        idle_cycles_skipped=core.stats.idle_cycles_skipped,
        engine=type(core.engine).__name__,
        events=recent_events(core),
        threads=pipeline_snapshot(core),
    )


def raise_hang(core, last_commit_cycle: int) -> None:
    report = build_hang_report(core, last_commit_cycle)
    if core.obs is not None:
        core.obs.events.hang(core.cycle, report.stalled_for, last_commit_cycle)
    raise SimulationHang(report)
