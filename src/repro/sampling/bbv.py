"""Basic-block-vector (BBV) profiling over the functional executor.

SimPoint's front half: the program is executed architecturally (no
timing), instruction counts are attributed to basic blocks, and every
``interval_instructions`` retired instructions a per-interval vector of
block execution counts is emitted.  A basic block is the run of
instructions from a leader PC up to and including the next control
transfer (conditional branch — taken or not — JAL, JALR, or HALT), the
standard SimPoint definition.

Profiles are pure architectural artifacts: deterministic for a given
(workload, interval size) and independent of every timing knob, so one
profile serves every engine/memory configuration.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.executor import ArchState, StepResult
from repro.isa.opcodes import COND_BRANCH_OPS, Opcode
from repro.isa.program import Program
from repro.workloads import build_workload

__all__ = ["IntervalProfile", "BBVCollector", "profile_bbv"]

_BLOCK_ENDERS = frozenset(COND_BRANCH_OPS) | {Opcode.JAL, Opcode.JALR, Opcode.HALT}


@dataclass
class IntervalProfile:
    """Per-interval basic-block vectors for one workload."""

    workload: str
    interval_instructions: int
    intervals: List[Dict[int, int]] = field(default_factory=list)
    total_instructions: int = 0
    halted: bool = False

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "interval_instructions": self.interval_instructions,
            "total_instructions": self.total_instructions,
            "halted": self.halted,
            "intervals": [{str(pc): n for pc, n in iv.items()}
                          for iv in self.intervals],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "IntervalProfile":
        return cls(
            workload=doc["workload"],
            interval_instructions=int(doc["interval_instructions"]),
            total_instructions=int(doc["total_instructions"]),
            halted=bool(doc["halted"]),
            intervals=[{int(pc): int(n) for pc, n in iv.items()}
                       for iv in doc["intervals"]],
        )


class BBVCollector:
    """Incremental BBV accumulator fed one :class:`StepResult` at a time."""

    def __init__(self, interval_instructions: int):
        if interval_instructions <= 0:
            raise ValueError("interval_instructions must be positive")
        self.interval_instructions = interval_instructions
        self.intervals: List[Dict[int, int]] = []
        self._current: Dict[int, int] = {}
        self._block_start: Optional[int] = None
        self._block_len = 0
        self._in_interval = 0

    def observe(self, step: StepResult) -> None:
        if self._block_start is None:
            self._block_start = step.pc
        self._block_len += 1
        self._in_interval += 1
        if step.inst.opcode in _BLOCK_ENDERS:
            self._flush_block()
        if self._in_interval >= self.interval_instructions:
            self._flush_block()
            self.intervals.append(self._current)
            self._current = {}
            self._in_interval = 0

    def _flush_block(self) -> None:
        if self._block_start is not None and self._block_len:
            self._current[self._block_start] = (
                self._current.get(self._block_start, 0) + self._block_len)
        self._block_start = None
        self._block_len = 0

    def finish(self) -> None:
        """Emit the trailing partial interval (if any)."""
        self._flush_block()
        if self._current:
            self.intervals.append(self._current)
            self._current = {}
            self._in_interval = 0


def profile_bbv(workload: str, max_instructions: int,
                interval_instructions: int,
                program: Optional[Program] = None) -> IntervalProfile:
    """Architecturally execute ``workload`` and emit its interval BBVs."""
    program = program or build_workload(workload)
    state = ArchState(program)
    collector = BBVCollector(interval_instructions)
    executed = 0
    while executed < max_instructions and not state.halted:
        collector.observe(state.step())
        executed += 1
    collector.finish()
    return IntervalProfile(
        workload=workload,
        interval_instructions=interval_instructions,
        intervals=collector.intervals,
        total_instructions=executed,
        halted=state.halted,
    )
