"""Lightweight warmup for checkpointed simulation.

A cold checkpoint boot starts the region with empty caches and an
untrained branch predictor, which biases short regions pessimistic.
During the functional fast-forward the last ``warmup_instructions`` steps
are distilled into a :class:`WarmupLog` — conditional-branch outcomes,
load/store footprints, and the instruction-fetch line stream — which is
replayed into the core's predictor/BTB and memory hierarchy at boot
through their ``warm`` interfaces (no cycles simulated, no demand-miss
stats polluted).
"""

from collections import deque
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.isa.executor import StepResult
from repro.isa.opcodes import Opcode

__all__ = ["WarmupLog", "WarmupCollector", "apply_warmup"]


@dataclass
class WarmupLog:
    """Replayable footprint of the instructions just before a region."""

    # (pc, taken, target) per conditional branch, in execution order.
    branches: List[Tuple[int, int, int]] = field(default_factory=list)
    # (pc, addr, is_store) per memory access, in execution order.
    mem: List[Tuple[int, int, int]] = field(default_factory=list)
    # PC per fetched cache line (consecutive duplicates elided).
    iblocks: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"branches": [list(b) for b in self.branches],
                "mem": [list(m) for m in self.mem],
                "iblocks": list(self.iblocks)}

    @classmethod
    def from_dict(cls, doc: dict) -> "WarmupLog":
        return cls(branches=[tuple(b) for b in doc.get("branches", [])],
                   mem=[tuple(m) for m in doc.get("mem", [])],
                   iblocks=list(doc.get("iblocks", [])))


class WarmupCollector:
    """Keeps the warmup footprint of the most recent ``window`` steps.

    Bounded deques make collection O(1) per step regardless of how far
    the fast-forward travels; ``window=0`` collects nothing.
    """

    def __init__(self, window: int, line_bytes: int = 64):
        self.window = max(0, window)
        self._branches = deque(maxlen=self.window or 1)
        self._mem = deque(maxlen=self.window or 1)
        self._iblocks = deque(maxlen=self.window or 1)
        self._line_shift = line_bytes.bit_length() - 1
        self._last_line = None

    def observe(self, step: StepResult) -> None:
        if not self.window:
            return
        line = step.pc >> self._line_shift
        if line != self._last_line:
            self._iblocks.append(step.pc)
            self._last_line = line
        if step.taken is not None:
            self._branches.append((step.pc, int(step.taken), step.inst.imm))
        if step.mem_addr is not None:
            self._mem.append((step.pc, step.mem_addr,
                              int(step.inst.opcode is Opcode.SD)))

    def log(self) -> WarmupLog:
        return WarmupLog(branches=list(self._branches),
                         mem=list(self._mem),
                         iblocks=list(self._iblocks))


def apply_warmup(core, log: WarmupLog) -> None:
    """Replay a warmup log into a freshly booted core.

    Caches and prefetchers are warmed through the hierarchy's ``warm_*``
    interface; the direction predictor gets full predict/update rounds via
    :meth:`BranchPredictor.warm`, and taken branches seed the BTB.
    """
    hierarchy = core.hierarchy
    for pc in log.iblocks:
        hierarchy.warm_ifetch(pc)
    for pc, addr, is_store in log.mem:
        if is_store:
            hierarchy.warm_store(pc, addr)
        else:
            hierarchy.warm_load(pc, addr)
    for pc, taken, target in log.branches:
        core.predictor.warm(pc, bool(taken))
        if taken:
            core.btb.insert(pc, target)
