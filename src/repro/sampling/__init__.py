"""Sampled simulation (the paper's SimPoint methodology, end to end).

The paper evaluates 100 M-instruction SimPoint regions; this package is
the machinery that makes such regions first-class here:

* :mod:`repro.sampling.bbv` — basic-block-vector profiling over the
  functional executor (fixed-size instruction intervals);
* :mod:`repro.sampling.cluster` — deterministic, dependency-free
  k-means (seeded random projection + k-means++) that picks
  representative intervals and weights;
* :mod:`repro.sampling.checkpoint` — architectural checkpoints at region
  starts, cached as atomic JSON shards alongside the run cache;
* :mod:`repro.sampling.warmup` — branch/cache warmup collected during
  the fast-forward and replayed at checkpoint boot;
* :mod:`repro.sampling.validate` — the profile -> cluster -> sampled-run
  pipeline plus the sampled-vs-full error report.

Entry points: the ``sample`` CLI verb, ``RunConfig.start_instruction``
for a single mid-program run, and ``regions_for(..., profile=...)`` for
profile-derived region sets.
"""

from repro.sampling.bbv import BBVCollector, IntervalProfile, profile_bbv
from repro.sampling.checkpoint import (ArchCheckpoint, CheckpointStore,
                                       capture_checkpoint, checkpoint_key)
from repro.sampling.cluster import (ClusterResult, RepresentativeInterval,
                                    cluster_profile, kmeans, project_bbvs)
from repro.sampling.validate import (regions_from_profile, sampled_run,
                                     sampled_vs_full)
from repro.sampling.warmup import WarmupCollector, WarmupLog, apply_warmup

__all__ = [
    "BBVCollector",
    "IntervalProfile",
    "profile_bbv",
    "ArchCheckpoint",
    "CheckpointStore",
    "capture_checkpoint",
    "checkpoint_key",
    "ClusterResult",
    "RepresentativeInterval",
    "cluster_profile",
    "kmeans",
    "project_bbvs",
    "regions_from_profile",
    "sampled_run",
    "sampled_vs_full",
    "WarmupCollector",
    "WarmupLog",
    "apply_warmup",
]
