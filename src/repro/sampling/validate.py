"""End-to-end sampled simulation and sampled-vs-full validation.

``sampled_run`` is the whole pipeline: BBV profile -> cluster -> one
checkpointed cycle-accurate run per representative region -> weighted
combination (the same weighted harmonic mean the paper applies to its
SimPoints).  ``sampled_vs_full`` additionally runs the full program
cycle-accurately and reports the IPC error, the fraction of instructions
simulated in detail, and the wall-clock speedup — the report the CI
sampling smoke job uploads as an artifact.
"""

import dataclasses
import time
from typing import Dict, List, Optional

from repro.sampling.bbv import IntervalProfile, profile_bbv
from repro.sampling.checkpoint import CheckpointStore
from repro.sampling.cluster import ClusterResult, cluster_profile

__all__ = ["regions_from_profile", "sampled_run", "sampled_vs_full"]


def regions_from_profile(profile: IntervalProfile, k: int = 4,
                         seed: int = 42,
                         warmup_instructions: int = 2000,
                         clusters: Optional[ClusterResult] = None) -> List:
    """Representative :class:`~repro.harness.regions.Region` set for a
    profile: one region per cluster, starting at the representative
    interval's offset, weighted by the cluster's instruction share."""
    from repro.harness.regions import Region

    clusters = clusters or cluster_profile(profile, k, seed)
    interval = profile.interval_instructions
    regions = []
    for rep in clusters.representatives:
        start = rep.interval_index * interval
        length = sum(profile.intervals[rep.interval_index].values())
        regions.append(Region(
            workload=profile.workload,
            max_instructions=length,
            weight=rep.weight,
            label=f"cluster{rep.cluster}@{start}",
            start_instruction=start,
            warmup_instructions=min(warmup_instructions, start),
        ))
    return regions


def sampled_run(workload: str, engine: str, full_instructions: int,
                interval_instructions: int, k: int = 4, seed: int = 42,
                warmup_instructions: int = 2000,
                checkpoint_dir=None, base_config=None,
                profile: Optional[IntervalProfile] = None) -> Dict:
    """Profile -> cluster -> checkpointed sampled simulation."""
    from repro.harness.regions import evaluate_regions

    t0 = time.time()
    if profile is None:
        profile = profile_bbv(workload, full_instructions,
                              interval_instructions)
    clusters = cluster_profile(profile, k, seed)
    regions = regions_from_profile(profile, k, seed, warmup_instructions,
                                   clusters=clusters)
    # How many of this region set's checkpoints already exist as shards:
    # 0 on the first invocation, all of them on a re-run (checkpoint
    # reuse).  A region starting at instruction 0 boots cold and never
    # materializes a checkpoint, so it is excluded from the ratio.
    reused = None
    need_ckpt = [r for r in regions if r.start_instruction > 0]
    if checkpoint_dir:
        store = CheckpointStore(checkpoint_dir)
        reused = sum(
            1 for r in need_ckpt
            if store.get(profile.workload, r.start_instruction,
                         r.warmup_instructions) is not None)
    combined = evaluate_regions(regions, engine, base_config=base_config,
                                checkpoint_dir=checkpoint_dir)
    wall = time.time() - t0
    simulated = sum(r.max_instructions for r in regions)
    return {
        "workload": workload,
        "engine": engine,
        "ipc": combined["ipc"],
        "mpki": combined["mpki"],
        "regions": [
            {"start": r.start_instruction, "instructions": r.max_instructions,
             "weight": round(r.weight, 6), "label": r.label}
            for r in regions
        ],
        "intervals_profiled": len(profile.intervals),
        "instructions_profiled": profile.total_instructions,
        "instructions_simulated": simulated,
        "simulated_fraction": (simulated / profile.total_instructions
                               if profile.total_instructions else 0.0),
        "checkpoints_total": len(need_ckpt),
        "checkpoints_reused": reused,
        "wall_seconds": wall,
    }


def sampled_vs_full(workload: str, engine: str, full_instructions: int,
                    interval_instructions: int, k: int = 4, seed: int = 42,
                    warmup_instructions: int = 2000,
                    checkpoint_dir=None, base_config=None) -> Dict:
    """The validation report: sampled pipeline vs the full-length run."""
    from repro.harness.simulator import RunConfig, simulate

    if base_config is not None:
        full_cfg = dataclasses.replace(base_config, workload=workload,
                                       engine=engine,
                                       max_instructions=full_instructions,
                                       start_instruction=0,
                                       warmup_instructions=0)
    else:
        full_cfg = RunConfig(workload=workload, engine=engine,
                             max_instructions=full_instructions)
    t0 = time.time()
    full = simulate(full_cfg)
    full_wall = time.time() - t0

    sampled = sampled_run(workload, engine, full_instructions,
                          interval_instructions, k=k, seed=seed,
                          warmup_instructions=warmup_instructions,
                          checkpoint_dir=checkpoint_dir,
                          base_config=base_config)
    full_ipc = full.ipc
    error = (abs(sampled["ipc"] - full_ipc) / full_ipc if full_ipc else None)
    return {
        "workload": workload,
        "engine": engine,
        "full_instructions": full.stats.retired,
        "full_ipc": full_ipc,
        "full_mpki": full.mpki,
        "full_wall_seconds": full_wall,
        "sampled": sampled,
        "ipc_error": error,
        "ipc_error_pct": round(error * 100, 2) if error is not None else None,
        "wall_speedup": (round(full_wall / sampled["wall_seconds"], 3)
                         if sampled["wall_seconds"] else None),
    }
