"""Architectural checkpoints with a sharded, concurrency-safe store.

A checkpoint is the functional executor's state (regs/mem/pc) at a region
start, plus the warmup footprint of the instructions leading into it.
Checkpoints are deterministic — the same (workload, start, warmup window)
always snapshots identical state — so they are cached exactly like run
results: one JSON file per key, written via temp-file + ``os.replace``
(the same atomic-shard discipline as :class:`repro.harness.runcache.RunCache`),
living by default next to the run cache under ``benchmarks/results``.
Unreadable or corrupt shards are quarantined to ``*.corrupt`` (the bytes
survive for post-mortem) and treated as misses to be recomputed.
"""

import json
import pathlib
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.executor import ArchState, fast_forward
from repro.isa.program import Program
from repro.sampling.warmup import WarmupCollector, WarmupLog
from repro.utils.shards import atomic_write_json, quarantine_shard
from repro.workloads import build_workload

__all__ = ["ArchCheckpoint", "CheckpointStore", "capture_checkpoint",
           "checkpoint_key"]

_SCHEMA = 1


@dataclass
class ArchCheckpoint:
    """Serializable resume point for cycle-accurate simulation."""

    workload: str
    start_instruction: int          # instructions retired before the region
    pc: int
    regs: list
    mem: dict                       # addr -> 64-bit word
    halted: bool = False            # program ended before the region start
    warmup_instructions: int = 0
    warmup: WarmupLog = field(default_factory=WarmupLog)

    def to_dict(self) -> dict:
        return {
            "schema": _SCHEMA,
            "workload": self.workload,
            "start_instruction": self.start_instruction,
            "pc": self.pc,
            "regs": list(self.regs),
            "mem": {str(a): v for a, v in self.mem.items()},
            "halted": self.halted,
            "warmup_instructions": self.warmup_instructions,
            "warmup": self.warmup.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ArchCheckpoint":
        return cls(
            workload=doc["workload"],
            start_instruction=int(doc["start_instruction"]),
            pc=int(doc["pc"]),
            regs=[int(r) for r in doc["regs"]],
            mem={int(a): int(v) for a, v in doc["mem"].items()},
            halted=bool(doc["halted"]),
            warmup_instructions=int(doc.get("warmup_instructions", 0)),
            warmup=WarmupLog.from_dict(doc.get("warmup", {})),
        )


def checkpoint_key(workload: str, start_instruction: int,
                   warmup_instructions: int) -> str:
    """Filename-safe shard key; every determinant of the content is in it."""
    return f"{workload}-ff{start_instruction}-w{warmup_instructions}"


class CheckpointStore:
    """Directory of one-file-per-checkpoint shards (atomic writers)."""

    def __init__(self, root, events=None):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.events = events        # optional EventTrace for quarantines
        self.quarantined = 0

    def path_for(self, workload: str, start_instruction: int,
                 warmup_instructions: int) -> pathlib.Path:
        return self.root / (checkpoint_key(workload, start_instruction,
                                           warmup_instructions) + ".json")

    def get(self, workload: str, start_instruction: int,
            warmup_instructions: int) -> Optional[ArchCheckpoint]:
        path = self.path_for(workload, start_instruction, warmup_instructions)
        try:
            doc = json.loads(path.read_text())
            if doc.get("schema") != _SCHEMA:
                raise ValueError("schema mismatch")
            ckpt = ArchCheckpoint.from_dict(doc)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                ValueError, OSError):
            # The shard exists but cannot be trusted: keep the bytes for
            # post-mortem, recompute into a fresh shard.
            if quarantine_shard(path, self.events, "checkpoint") is not None:
                self.quarantined += 1
            self.misses += 1
            return None
        self.hits += 1
        return ckpt

    def put(self, ckpt: ArchCheckpoint) -> pathlib.Path:
        path = self.path_for(ckpt.workload, ckpt.start_instruction,
                             ckpt.warmup_instructions)
        return atomic_write_json(path, ckpt.to_dict(), indent=None,
                                 sort_keys=True)


def capture_checkpoint(workload: str, start_instruction: int,
                       warmup_instructions: int = 0,
                       store: Optional[CheckpointStore] = None,
                       program: Optional[Program] = None) -> ArchCheckpoint:
    """Fast-forward to ``start_instruction`` and snapshot (store-cached).

    On a store hit the fast-forward is skipped entirely — that is the
    wall-clock win of checkpoint reuse across engines and sweeps.
    """
    if start_instruction < 0:
        raise ValueError("start_instruction must be >= 0")
    if store is not None:
        ckpt = store.get(workload, start_instruction, warmup_instructions)
        if ckpt is not None:
            return ckpt
    program = program or build_workload(workload)
    state = ArchState(program)
    collector = WarmupCollector(warmup_instructions)
    fast_forward(state, start_instruction, observer=collector.observe)
    ckpt = ArchCheckpoint(
        workload=workload,
        start_instruction=state.retired,
        pc=state.pc,
        regs=list(state.regs),
        mem=dict(state.mem),
        halted=state.halted,
        warmup_instructions=warmup_instructions,
        warmup=collector.log(),
    )
    if store is not None:
        store.put(ckpt)
    return ckpt
