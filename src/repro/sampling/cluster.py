"""Deterministic, dependency-free SimPoint-style clustering.

Interval BBVs are L1-normalized, reduced with a seeded random projection
(SimPoint's own trick for taming the block-count dimensionality), and
clustered with seeded k-means++ / Lloyd iterations.  Everything is driven
by ``random.Random(seed)`` and plain floats, so the same profile, k, and
seed always produce the same clusters, representatives, and weights — on
any host, with no numpy dependency.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sampling.bbv import IntervalProfile

__all__ = ["ClusterResult", "RepresentativeInterval", "project_bbvs",
           "kmeans", "cluster_profile"]


@dataclass(frozen=True)
class RepresentativeInterval:
    """One selected interval: its index, its cluster, and the cluster's
    share of all profiled instructions."""

    interval_index: int
    cluster: int
    weight: float
    cluster_size: int


@dataclass
class ClusterResult:
    assignments: List[int]          # interval index -> cluster id
    representatives: List[RepresentativeInterval]  # sorted by interval_index
    k: int
    seed: int
    projected_dims: int


def _projection_row(pc: int, dims: int, seed: int) -> List[float]:
    """The (deterministic) random unit row for one BBV dimension."""
    rng = random.Random((seed << 32) ^ pc)
    return [rng.gauss(0.0, 1.0) for _ in range(dims)]


def project_bbvs(intervals: Sequence[Dict[int, int]], dims: int,
                 seed: int) -> List[List[float]]:
    """L1-normalize each BBV and project it to ``dims`` dimensions."""
    rows: Dict[int, List[float]] = {}
    points = []
    for bbv in intervals:
        total = float(sum(bbv.values())) or 1.0
        point = [0.0] * dims
        for pc, count in bbv.items():
            row = rows.get(pc)
            if row is None:
                row = rows[pc] = _projection_row(pc, dims, seed)
            w = count / total
            for d in range(dims):
                point[d] += w * row[d]
        points.append(point)
    return points


def _dist2(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def kmeans(points: Sequence[Sequence[float]], k: int, seed: int,
           max_iters: int = 100) -> List[int]:
    """Seeded k-means++ initialization + Lloyd iterations to convergence.

    Returns per-point cluster assignments.  Empty clusters are reseeded
    from the point farthest from its centroid, so exactly ``k`` clusters
    survive whenever there are at least ``k`` distinct points.
    """
    n = len(points)
    if n == 0:
        return []
    k = min(k, n)
    rng = random.Random(seed)

    # k-means++ seeding.
    centroids = [list(points[rng.randrange(n)])]
    d2 = [_dist2(p, centroids[0]) for p in points]
    while len(centroids) < k:
        total = sum(d2)
        if total <= 0.0:
            centroids.append(list(points[rng.randrange(n)]))
            continue
        r = rng.random() * total
        acc = 0.0
        pick = n - 1
        for i, d in enumerate(d2):
            acc += d
            if acc >= r:
                pick = i
                break
        centroids.append(list(points[pick]))
        d2 = [min(old, _dist2(p, centroids[-1])) for old, p in zip(d2, points)]

    assignments = [0] * n
    for _ in range(max_iters):
        changed = False
        for i, p in enumerate(points):
            best, best_d = 0, _dist2(p, centroids[0])
            for c in range(1, len(centroids)):
                d = _dist2(p, centroids[c])
                if d < best_d:
                    best, best_d = c, d
            if assignments[i] != best:
                assignments[i] = best
                changed = True
        # Recompute centroids; reseed any empty cluster deterministically.
        counts = [0] * len(centroids)
        sums = [[0.0] * len(points[0]) for _ in centroids]
        for i, p in enumerate(points):
            c = assignments[i]
            counts[c] += 1
            for d in range(len(p)):
                sums[c][d] += p[d]
        for c in range(len(centroids)):
            if counts[c]:
                centroids[c] = [s / counts[c] for s in sums[c]]
            else:
                far = max(range(n),
                          key=lambda i: _dist2(points[i],
                                               centroids[assignments[i]]))
                centroids[c] = list(points[far])
                changed = True
        if not changed:
            break
    return assignments


def cluster_profile(profile: IntervalProfile, k: int, seed: int = 42,
                    dims: int = 16) -> ClusterResult:
    """Cluster a profile's intervals and pick one representative each.

    The representative of a cluster is the member interval closest to the
    cluster centroid (in projected space); its weight is the cluster's
    share of the total profiled instructions, so weights stay correct even
    when the trailing interval is short.
    """
    points = project_bbvs(profile.intervals, dims, seed)
    assignments = kmeans(points, k, seed)
    if not assignments:
        return ClusterResult([], [], k=k, seed=seed, projected_dims=dims)

    clusters: Dict[int, List[int]] = {}
    for i, c in enumerate(assignments):
        clusters.setdefault(c, []).append(i)

    inst_counts = [sum(bbv.values()) for bbv in profile.intervals]
    total_insts = float(sum(inst_counts)) or 1.0

    reps = []
    for c, members in sorted(clusters.items()):
        centroid = [sum(points[i][d] for i in members) / len(members)
                    for d in range(len(points[0]))]
        rep = min(members, key=lambda i: (_dist2(points[i], centroid), i))
        weight = sum(inst_counts[i] for i in members) / total_insts
        reps.append(RepresentativeInterval(
            interval_index=rep, cluster=c, weight=weight,
            cluster_size=len(members)))
    reps.sort(key=lambda r: r.interval_index)
    return ClusterResult(assignments=assignments, representatives=reps,
                         k=k, seed=seed, projected_dims=dims)
