"""Three-level memory hierarchy with MSHRs and prefetchers (Table III).

The hierarchy answers one question for the core: *at which cycle is this
access's data available?*  Values themselves come from the simulator's
committed-memory image (or the helper thread's speculative cache).
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cache import Cache
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import DeltaPrefetcher, StridePrefetcher


@dataclass
class MemoryConfig:
    """Cache/memory parameters; defaults follow the paper's Table III."""

    line_bytes: int = 64
    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 3  # 1 agen + 2 hit
    l2_size: int = 1280 * 1024
    l2_ways: int = 20
    l2_latency: int = 15
    l3_size: int = 3 * 1024 * 1024
    l3_ways: int = 12
    l3_latency: int = 40
    dram_latency: int = 100
    mshr_entries: int = 16
    enable_l1_prefetcher: bool = True  # IPCP-lite
    enable_l2_prefetcher: bool = True  # VLDP-lite

    def scaled(self, factor: int = 8) -> "MemoryConfig":
        """A smaller hierarchy matched to scaled (short-run) workloads."""
        return MemoryConfig(
            line_bytes=self.line_bytes,
            l1i_size=self.l1i_size // factor,
            l1i_ways=self.l1i_ways,
            l1d_size=self.l1d_size // factor * 2,
            l1d_ways=self.l1d_ways,
            l1d_latency=self.l1d_latency,
            l2_size=self.l2_size // factor,
            l2_ways=self.l2_ways,
            l2_latency=self.l2_latency,
            l3_size=self.l3_size // factor,
            l3_ways=self.l3_ways,
            l3_latency=self.l3_latency,
            dram_latency=self.dram_latency,
            mshr_entries=self.mshr_entries,
            enable_l1_prefetcher=self.enable_l1_prefetcher,
            enable_l2_prefetcher=self.enable_l2_prefetcher,
        )


def _pow2_floor(n: int) -> int:
    return 1 << (n.bit_length() - 1)


def _legal_size(size: int, ways: int, line: int) -> int:
    """Round a size down so sets is a power of two."""
    sets = _pow2_floor(max(1, size // (ways * line)))
    return sets * ways * line


class MemoryHierarchy:
    """L1I + L1D + shared L2 + shared L3 + DRAM, with MSHRs and prefetchers.

    ``columnar`` selects the packed-int-column cache tag store (default) or
    the pre-refactor per-line-object store from :mod:`repro.core.legacy`
    (for the A/B equivalence harness); both are observationally identical.
    """

    def __init__(self, config: Optional[MemoryConfig] = None, columnar: bool = True):
        cfg = config or MemoryConfig()
        self.config = cfg
        if columnar:
            cache_cls = Cache
        else:
            from repro.core.legacy import LegacyCache as cache_cls
        line = cfg.line_bytes
        self.l1i = cache_cls(_legal_size(cfg.l1i_size, cfg.l1i_ways, line), cfg.l1i_ways, line, "L1I")
        self.l1d = cache_cls(_legal_size(cfg.l1d_size, cfg.l1d_ways, line), cfg.l1d_ways, line, "L1D")
        self.l2 = cache_cls(_legal_size(cfg.l2_size, cfg.l2_ways, line), cfg.l2_ways, line, "L2")
        self.l3 = cache_cls(_legal_size(cfg.l3_size, cfg.l3_ways, line), cfg.l3_ways, line, "L3")
        self.mshrs = MSHRFile(cfg.mshr_entries)
        self.l1_prefetcher = StridePrefetcher(line_bytes=line) if cfg.enable_l1_prefetcher else None
        self.l2_prefetcher = DeltaPrefetcher(line_bytes=line) if cfg.enable_l2_prefetcher else None
        # block -> cycle its (prefetch or demand) fill completes.
        self._inflight: Dict[int, int] = {}
        # Same-block ifetch memo (see :meth:`ifetch`): -1 = invalid.  The
        # exactness argument needs the three next-line fills to land in
        # other sets, so tiny (test-sized) L1Is never arm it.
        self._ifetch_block = -1
        self._ifetch_memo_ok = self.l1i.num_sets >= 4

    # ------------------------------------------------------------------
    def _miss_latency(self, addr: int, is_write: bool) -> int:
        """Latency beyond L1 for a block absent from L1."""
        hit2, _ = self.l2.access(addr, is_write)
        if hit2:
            return self.config.l2_latency
        hit3, _ = self.l3.access(addr, is_write)
        if hit3:
            return self.config.l3_latency
        return self.config.l3_latency + self.config.dram_latency

    def _inflight_ready(self, block: int, now: int) -> Optional[int]:
        ready = self._inflight.get(block)
        if ready is None:
            return None
        if ready <= now:
            del self._inflight[block]
            return None
        return ready

    def load(self, pc: int, addr: int, now: int) -> int:
        """Demand load; returns the cycle the value is available."""
        cfg = self.config
        block = self.l1d.block_addr(addr)
        pending = self._inflight_ready(block, now)
        hit, _ = self.l1d.access(addr, is_write=False)
        if hit:
            ready = now + cfg.l1d_latency
            if pending is not None:  # fill still in flight (late prefetch)
                ready = max(ready, pending)
        else:
            latency = cfg.l1d_latency + self._miss_latency(addr, is_write=False)
            ready = self.mshrs.request(block, now, latency)
            self._inflight[block] = ready
        self._train_prefetchers(pc, addr, now)
        return ready

    def store(self, pc: int, addr: int, now: int) -> int:
        """Committed store (write-allocate, write-back); off the critical path."""
        hit, _ = self.l1d.access(addr, is_write=True)
        if not hit:
            self._miss_latency(addr, is_write=True)
        return now + self.config.l1d_latency

    def ifetch(self, pc: int, now: int) -> int:
        """Instruction fetch; returns the cycle the line is available.

        A simple next-line prefetcher (standard in any L1I) runs ahead so
        sequential code does not pay a full miss per line.

        Same-block memo: the fetch stage probes the I-cache every cycle it
        fetches, and consecutive probes overwhelmingly land in the same
        line.  Re-running the full path for the same block is provably a
        pure L1I hit with no other state change — the block is already
        present and MRU *within its own set* (the next-line fills land in
        the three following sets, which are distinct whenever the L1I has
        at least 8 sets), and the three next lines are already installed,
        so the prefetch loop finds them and does nothing.  The memo
        replicates the only observable effect (one L1I hit) and returns
        ``now + 1``; any ifetch to a different block re-runs the full path
        and re-arms it.  Only ``ifetch``/``warm_ifetch`` touch the L1I, so
        no other access can invalidate the memoised facts.
        """
        cfg = self.config
        block = self.l1i.block_addr(pc)
        if block == self._ifetch_block:
            self.l1i.stats.hits += 1
            return now + 1
        hit, _ = self.l1i.access(pc, is_write=False)
        if hit:
            ready = now + 1
        else:
            ready = now + 1 + self._miss_latency(pc, is_write=False)
        # Next-line prefetch: pull the following lines toward L1I.
        line = cfg.line_bytes
        base = pc & ~(line - 1)
        for d in range(1, 4):
            nxt = base + d * line
            if not self.l1i.lookup(nxt):
                self._miss_latency(nxt, is_write=False)  # install in L2/L3
                self.l1i.fill(nxt, prefetched=True)
        if self._ifetch_memo_ok:
            self._ifetch_block = block
        return ready

    # ------------------------------------------------------------------
    # Warmup interface (sampled simulation).  ``fill`` installs a block
    # without demand hit/miss accounting, so warming a checkpoint's memory
    # footprint does not pollute the region's cache statistics; prefetcher
    # state machines are trained so they start the region mid-stride.
    # ------------------------------------------------------------------
    def warm_load(self, pc: int, addr: int) -> None:
        self.l3.fill(addr)
        self.l2.fill(addr)
        self.l1d.fill(addr)
        targets = []
        if self.l1_prefetcher is not None:
            targets.extend(self.l1_prefetcher.train_and_predict(pc, addr))
        if self.l2_prefetcher is not None:
            targets.extend(self.l2_prefetcher.train_and_predict(addr))
        for t in targets:
            if not self.l1d.lookup(t):
                self.l1d.fill(t, prefetched=True)

    def warm_store(self, pc: int, addr: int) -> None:
        self.l3.fill(addr)
        self.l2.fill(addr)
        self.l1d.fill(addr)

    def warm_ifetch(self, pc: int) -> None:
        self._ifetch_block = -1
        self.l3.fill(pc)
        self.l2.fill(pc)
        self.l1i.fill(pc)

    # ------------------------------------------------------------------
    def _train_prefetchers(self, pc: int, addr: int, now: int) -> None:
        cfg = self.config
        targets = []
        if self.l1_prefetcher is not None:
            targets.extend(self.l1_prefetcher.train_and_predict(pc, addr))
        if self.l2_prefetcher is not None:
            targets.extend(self.l2_prefetcher.train_and_predict(addr))
        for t in targets:
            block = self.l1d.block_addr(t)
            if self.l1d.lookup(t) or block in self._inflight:
                continue
            latency = cfg.l1d_latency + self._miss_latency(t, is_write=False)
            self._inflight[block] = now + latency
            self.l1d.fill(t, prefetched=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "l1i": self.l1i.stats,
            "l1d": self.l1d.stats,
            "l2": self.l2.stats,
            "l3": self.l3.stats,
            "mshr_merges": self.mshrs.merges,
            "mshr_full_stalls": self.mshrs.full_stalls,
            "l1_prefetches": self.l1_prefetcher.issued if self.l1_prefetcher else 0,
            "l2_prefetches": self.l2_prefetcher.issued if self.l2_prefetcher else 0,
        }
