"""Miss Status Holding Registers.

Tracks outstanding cache misses by block address.  Secondary misses to an
outstanding block merge (they inherit the primary miss's ready cycle); when
all MSHRs are busy, a new miss must wait for the earliest one to free.

The paper notes that Phelps' decoupled outer thread "increas[es] utilization
of miss status holding registers" — modelling a finite MSHR file is what
makes that observable.
"""

from typing import Dict


class MSHRFile:
    def __init__(self, entries: int = 16):
        self.entries = entries
        self._outstanding: Dict[int, int] = {}  # block -> ready cycle
        self.merges = 0
        self.full_stalls = 0
        self.allocations = 0

    def _expire(self, now: int) -> None:
        if self._outstanding:
            done = [b for b, t in self._outstanding.items() if t <= now]
            for b in done:
                del self._outstanding[b]

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._outstanding)

    def request(self, block: int, now: int, latency: int) -> int:
        """Register a miss for ``block``; returns the cycle its data arrives.

        Merging and full-file stalls are handled internally.
        """
        self._expire(now)
        if block in self._outstanding:
            self.merges += 1
            return self._outstanding[block]
        start = now
        if len(self._outstanding) >= self.entries:
            self.full_stalls += 1
            start = min(self._outstanding.values())
            self._expire(start)
            if len(self._outstanding) >= self.entries:
                # Defensive: several entries share the min; drop the oldest.
                victim = min(self._outstanding, key=self._outstanding.get)
                del self._outstanding[victim]
        ready = start + latency
        self._outstanding[block] = ready
        self.allocations += 1
        return ready
