"""Hardware prefetchers.

The paper's core uses IPCP at L1D and VLDP at L2 (Table III).  We implement
structurally-similar stand-ins (see DESIGN.md §3):

* :class:`StridePrefetcher` ("IPCP-lite") — per-instruction-pointer stride
  classification with confidence and degree, trained on demand accesses.
* :class:`DeltaPrefetcher` ("VLDP-lite") — per-page delta-history matching,
  predicting the next deltas from recently observed delta sequences.
"""

from typing import Dict, List, Tuple


class StridePrefetcher:
    """Per-PC stride prefetcher with confidence and configurable degree."""

    def __init__(self, entries: int = 256, degree: int = 4, line_bytes: int = 64):
        self._entries = entries
        self.degree = degree
        self._line = line_bytes
        # pc -> [last_addr, stride, confidence]
        self._table: Dict[int, List[int]] = {}
        self.issued = 0

    def train_and_predict(self, pc: int, addr: int) -> List[int]:
        """Observe a demand access; return block-aligned prefetch addresses."""
        entry = self._table.get(pc)
        prefetches: List[int] = []
        if entry is None:
            if len(self._table) >= self._entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [addr, 0, 0]
            return prefetches
        last_addr, stride, conf = entry
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            conf = min(conf + 1, 3)
        else:
            conf = max(conf - 1, 0)
            if conf == 0:
                stride = new_stride
        entry[0], entry[1], entry[2] = addr, stride, conf
        if conf >= 2 and stride != 0:
            for d in range(1, self.degree + 1):
                prefetches.append((addr + d * stride) & ~(self._line - 1))
            self.issued += len(prefetches)
        return prefetches


class DeltaPrefetcher:
    """Per-page delta-history prefetcher (VLDP-lite).

    Keeps the last few block deltas per 4 KB page; when the most recent
    delta pair has been seen before, prefetches the block the recorded
    successor delta points at.
    """

    def __init__(self, pages: int = 64, line_bytes: int = 64, degree: int = 2):
        self._pages = pages
        self._line = line_bytes
        self.degree = degree
        # page -> (last_block, last_delta)
        self._page_state: Dict[int, Tuple[int, int]] = {}
        # (page-agnostic) delta -> next delta, with 2-bit confidence
        self._delta_table: Dict[int, List[int]] = {}
        self.issued = 0

    def train_and_predict(self, addr: int) -> List[int]:
        block = addr // self._line
        page = addr >> 12
        prefetches: List[int] = []
        state = self._page_state.get(page)
        if state is not None:
            last_block, last_delta = state
            delta = block - last_block
            if delta != 0:
                if last_delta != 0:
                    entry = self._delta_table.get(last_delta)
                    if entry is None:
                        if len(self._delta_table) >= 256:
                            self._delta_table.pop(next(iter(self._delta_table)))
                        self._delta_table[last_delta] = [delta, 1]
                    elif entry[0] == delta:
                        entry[1] = min(entry[1] + 1, 3)
                    else:
                        entry[1] -= 1
                        if entry[1] <= 0:
                            self._delta_table[last_delta] = [delta, 1]
                self._page_state[page] = (block, delta)
                # Predict forward using the chained deltas.
                cur_block, cur_delta = block, delta
                for _ in range(self.degree):
                    nxt = self._delta_table.get(cur_delta)
                    if nxt is None or nxt[1] < 2:
                        break
                    cur_block += nxt[0]
                    prefetches.append(cur_block * self._line)
                    cur_delta = nxt[0]
                self.issued += len(prefetches)
        else:
            if len(self._page_state) >= self._pages:
                self._page_state.pop(next(iter(self._page_state)))
            self._page_state[page] = (block, 0)
        return prefetches
