"""Memory hierarchy: set-associative caches, MSHRs, prefetchers, DRAM.

Timing-only model (Table III): data values live in the simulator's flat
committed-memory image; the hierarchy decides *when* a load's value is
available.  Stores are write-back/write-allocate and commit off the
critical path at retire.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import StridePrefetcher, DeltaPrefetcher
from repro.memory.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = [
    "Cache",
    "CacheStats",
    "MSHRFile",
    "StridePrefetcher",
    "DeltaPrefetcher",
    "MemoryHierarchy",
    "MemoryConfig",
]
