"""Set-associative, write-back, write-allocate cache tag store with LRU."""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "prefetched")

    def __init__(self, tag: int, dirty: bool = False, prefetched: bool = False):
        self.tag = tag
        self.dirty = dirty
        self.prefetched = prefetched


class Cache:
    """A single cache level (tags only; data stays in the flat memory image).

    ``lookup`` probes without side effects; ``access`` performs the
    hit/miss state change and returns whether it hit plus the writeback
    block address if a dirty line was evicted.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = "cache"):
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways*line")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets ({self.num_sets}) must be a power of two")
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Per set: list of lines, MRU first.
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _set_index(self, block: int) -> int:
        return block & self._set_mask

    def _tag(self, block: int) -> int:
        return block >> (self.num_sets.bit_length() - 1)

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> bool:
        """Probe without updating LRU or stats."""
        block = self.block_addr(addr)
        s = self._sets[self._set_index(block)]
        tag = self._tag(block)
        return any(line.tag == tag for line in s)

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Demand access.  Returns (hit, writeback_block_addr_or_None).

        On a miss the block is allocated (fill is assumed to complete;
        timing is the hierarchy's job) and the LRU victim, if dirty, is
        reported for writeback accounting.
        """
        block = self.block_addr(addr)
        set_idx = self._set_index(block)
        s = self._sets[set_idx]
        tag = self._tag(block)
        for i, line in enumerate(s):
            if line.tag == tag:
                self.stats.hits += 1
                if is_write:
                    line.dirty = True
                if i:
                    s.insert(0, s.pop(i))
                return True, None
        self.stats.misses += 1
        writeback = self._fill(set_idx, tag, dirty=is_write, prefetched=False)
        return False, writeback

    def fill(self, addr: int, prefetched: bool = False) -> Optional[int]:
        """Install a block (e.g. a prefetch fill); returns writeback block."""
        block = self.block_addr(addr)
        set_idx = self._set_index(block)
        tag = self._tag(block)
        s = self._sets[set_idx]
        for i, line in enumerate(s):
            if line.tag == tag:
                return None  # already present
        if prefetched:
            self.stats.prefetch_fills += 1
        return self._fill(set_idx, tag, dirty=False, prefetched=prefetched)

    def _fill(self, set_idx: int, tag: int, dirty: bool, prefetched: bool) -> Optional[int]:
        s = self._sets[set_idx]
        s.insert(0, _Line(tag, dirty=dirty, prefetched=prefetched))
        if len(s) > self.ways:
            victim = s.pop()
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                return (victim.tag << (self.num_sets.bit_length() - 1)) | set_idx
        return None

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
