"""Set-associative, write-back, write-allocate cache tag store with LRU.

Columnar layout: each set is one flat list of packed int words, MRU first.
A word is ``(tag << 2) | (dirty << 1) | prefetched`` — probing a set is a
scan over small ints (no per-line objects, no attribute loads), and a fill
is a single int insert.  The pre-refactor per-line-object implementation
lives in :mod:`repro.core.legacy` (``LegacyCache``) for the A/B
equivalence harness; both keep identical LRU order and stats.
"""

from array import array
from dataclasses import dataclass
from typing import List, Optional, Tuple

_DIRTY = 0b10
_PREFETCHED = 0b01


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A single cache level (tags only; data stays in the flat memory image).

    ``lookup`` probes without side effects; ``access`` performs the
    hit/miss state change and returns whether it hit plus the writeback
    block address if a dirty line was evicted.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = "cache"):
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways*line")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets ({self.num_sets}) must be a power of two")
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        # Per set: packed line words ((tag << 2) | flags), MRU first.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _set_index(self, block: int) -> int:
        return block & self._set_mask

    def _tag(self, block: int) -> int:
        return block >> self._tag_shift

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> bool:
        """Probe without updating LRU or stats."""
        block = addr >> self._offset_bits
        s = self._sets[block & self._set_mask]
        tag = block >> self._tag_shift
        for word in s:
            if word >> 2 == tag:
                return True
        return False

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Demand access.  Returns (hit, writeback_block_addr_or_None).

        On a miss the block is allocated (fill is assumed to complete;
        timing is the hierarchy's job) and the LRU victim, if dirty, is
        reported for writeback accounting.
        """
        block = addr >> self._offset_bits
        set_idx = block & self._set_mask
        s = self._sets[set_idx]
        tag = block >> self._tag_shift
        for i in range(len(s)):
            word = s[i]
            if word >> 2 == tag:
                self.stats.hits += 1
                if is_write:
                    word |= _DIRTY
                if i:
                    del s[i]
                    s.insert(0, word)
                else:
                    s[0] = word
                return True, None
        self.stats.misses += 1
        writeback = self._fill(set_idx, tag, _DIRTY if is_write else 0)
        return False, writeback

    def fill(self, addr: int, prefetched: bool = False) -> Optional[int]:
        """Install a block (e.g. a prefetch fill); returns writeback block."""
        block = addr >> self._offset_bits
        set_idx = block & self._set_mask
        tag = block >> self._tag_shift
        for word in self._sets[set_idx]:
            if word >> 2 == tag:
                return None  # already present
        if prefetched:
            self.stats.prefetch_fills += 1
        return self._fill(set_idx, tag, _PREFETCHED if prefetched else 0)

    def _fill(self, set_idx: int, tag: int, flags: int) -> Optional[int]:
        s = self._sets[set_idx]
        s.insert(0, (tag << 2) | flags)
        if len(s) > self.ways:
            victim = s.pop()
            self.stats.evictions += 1
            if victim & _DIRTY:
                self.stats.writebacks += 1
                return ((victim >> 2) << self._tag_shift) | set_idx
        return None

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    # Compact serialization: the packed set columns concatenate into one
    # int64 buffer plus a per-set occupancy byte string.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        sets = state.pop("_sets")
        lengths = bytes(len(s) for s in sets)
        words = array("q")
        for s in sets:
            words.extend(s)
        state["_packed_sets"] = (lengths, words.tobytes())
        return state

    def __setstate__(self, state):
        lengths, blob = state.pop("_packed_sets")
        words = array("q")
        words.frombytes(blob)
        flat = words.tolist()
        sets = []
        pos = 0
        for n in lengths:
            sets.append(flat[pos:pos + n])
            pos += n
        state["_sets"] = sets
        self.__dict__.update(state)
