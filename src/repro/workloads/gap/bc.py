"""Betweenness-centrality forward pass (GAP ``bc``, Brandes).

The BFS-like forward sweep with shortest-path counting: the distance test
is delinquent; the ``sigma[v] += sigma[u]`` update is an influential store
that is control-dependent on the delinquent distance comparison and feeds
future sigma reads — the combination that makes predicated stores critical
for bc (paper Fig. 12b).
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program
from repro.workloads.gap.common import (
    embed_graph,
    init_prunable,
    make_walk_worklist,
    outer_loop_header,
    outer_loop_footer,
    prunable_block,
)
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def build_bc(adj: Optional[List[List[int]]] = None, worklist_len: int = 4096,
             seed: int = 31) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)

    a = Assembler("bc")
    off_base, nbr_base = embed_graph(a, adj)
    # Distances from a few BFS levels (small integers); 7 marks nodes the
    # sweep has not discovered yet.  Sigmas arbitrary.
    dist_init = [rng.randrange(0, 6) if rng.random() < 0.6 else 7
                 for _ in range(n)]
    sigma_init = [rng.randrange(1, 50) for _ in range(n)]
    dist = a.data("dist", dist_init)
    sigma = a.data("sigma", sigma_init)
    worklist = a.data("worklist", make_walk_worklist(adj, worklist_len, seed + 2))

    a.li("x6", dist)
    a.li("x7", sigma)
    a.li("x17", 7)                      # "undiscovered" sentinel
    init_prunable(a)
    outer_loop_header(a, worklist, worklist_len, off_base, nbr_base)
    a.bge("x10", "x11", "outer_inc")    # header
    a.slli("x12", "x9", 3)
    a.add("x13", "x12", "x6")
    a.ld("x8", "x13", 0)                # d_u = dist[u]
    a.add("x13", "x12", "x7")
    a.ld("x16", "x13", 0)               # sigma_u
    a.addi("x8", "x8", 1)               # d_u + 1
    prunable_block(a, "bc", 0, "x9", n_alu=5)

    a.label("inner")
    a.slli("x12", "x10", 3)
    a.add("x12", "x12", "x5")
    a.ld("x13", "x12", 0)               # v
    a.slli("x14", "x13", 3)
    a.add("x15", "x14", "x6")
    a.ld("x15", "x15", 0)               # dist[v]
    a.bne("x15", "x8", "skip_sigma")    # delinquent: on a shortest path?
    a.add("x14", "x14", "x7")           # &sigma[v]
    a.ld("x15", "x14", 0)
    a.add("x15", "x15", "x16")
    a.sd("x15", "x14", 0)               # sigma[v] += sigma_u (guarded)
    prunable_block(a, "bc_in", 0, "x13", n_alu=2)
    a.label("skip_sigma")
    # Discovery (Brandes' enqueue): the dist[v] store both influences the
    # delinquent distance tests of later iterations and is guarded by one.
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x6")
    a.ld("x15", "x14", 0)               # dist[v] again
    a.bne("x15", "x17", "skip_disc")    # delinquent: undiscovered?
    a.sd("x8", "x14", 0)                # influential guarded store dist[v]
    a.label("skip_disc")
    a.addi("x10", "x10", 1)
    a.blt("x10", "x11", "inner")

    outer_loop_footer(a)
    a.halt()
    return a.build()


@register("bc")
def _bc() -> Program:
    return build_bc()
