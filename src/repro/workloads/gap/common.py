"""Shared scaffolding for the GAP-like graph kernels.

Register conventions used by every kernel:

  x1  worklist/frontier base   x2  worklist length   x3  i (outer induction)
  x4  CSR offsets base         x5  CSR neighbors base
  x6..x8 kernel-specific arrays / counters
  x9  u (current node)         x10 j (inner induction) x11 end offset
  x12..x15 scratch
"""

import random
from typing import List, Tuple

from repro.isa import Assembler
from repro.workloads.graphs import to_csr


def embed_graph(a: Assembler, adj: List[List[int]]) -> Tuple[int, int]:
    """Embed a CSR representation; returns (offsets_base, neighbors_base)."""
    offsets, neighbors = to_csr(adj)
    off_base = a.data("csr_offsets", offsets)
    nbr_base = a.data("csr_neighbors", neighbors if neighbors else [0])
    return off_base, nbr_base


def make_worklist(n_nodes: int, length: int, seed: int) -> List[int]:
    """A frontier-like worklist (nodes may repeat, as across BFS levels)."""
    rng = random.Random(seed)
    return [rng.randrange(n_nodes) for _ in range(length)]


def make_walk_worklist(adj: List[List[int]], length: int, seed: int) -> List[int]:
    """A BFS-wavefront-like worklist: consecutive entries are adjacent
    nodes, so their neighbourhoods overlap and per-node updates (sigma,
    dist, ...) influence later iterations within the store-detect window."""
    rng = random.Random(seed)
    n = len(adj)
    u = rng.randrange(n)
    out = []
    for i in range(length):
        out.append(u)
        if adj[u] and i % 53 != 52:
            u = rng.choice(adj[u])
        else:
            u = rng.randrange(n)
    return out


def outer_loop_header(a: Assembler, worklist_base: int, worklist_len: int,
                      off_base: int, nbr_base: int) -> None:
    """Common prologue + outer-loop head: loads u and its CSR range.

    Leaves: x9 = u, x10 = offsets[u] (inner induction), x11 = offsets[u+1].
    The caller must emit the header branch, inner loop, outer increment,
    and the outer backward branch (label ``outer``).
    """
    a.li("x1", worklist_base)
    a.li("x2", worklist_len)
    a.li("x4", off_base)
    a.li("x5", nbr_base)
    a.li("x3", 0)
    a.label("outer")
    a.slli("x12", "x3", 3)
    a.add("x12", "x12", "x1")
    a.ld("x9", "x12", 0)        # u = worklist[i]
    a.slli("x12", "x9", 3)
    a.add("x12", "x12", "x4")
    a.ld("x10", "x12", 0)       # start = offsets[u]
    a.ld("x11", "x12", 8)       # end   = offsets[u+1]


def outer_loop_footer(a: Assembler) -> None:
    a.label("outer_inc")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "outer")


def prunable_block(a: Assembler, tag: str, stats_base: int, key_reg: str,
                   n_alu: int = 4) -> None:
    """Bookkeeping work that real kernels carry but pre-execution prunes:
    a short computation over ``key_reg`` stored into a stats array.  Uses
    only scratch registers (x23..x25) that feed no branch slices."""
    a.slli("x23", key_reg, 3)
    a.andi("x23", "x23", 2047 * 8)
    a.add("x23", "x23", "x25")
    a.mul("x24", key_reg, key_reg)
    for k in range(n_alu):
        a.xori("x24", "x24", 0x33 + k)
        a.addi("x24", "x24", 7)
    a.sd("x24", "x23", 0)


def init_prunable(a: Assembler) -> None:
    """Reserve the stats array used by :func:`prunable_block` (x25 = base)."""
    base = a.alloc("kernel_stats", 2048)
    a.li("x25", base)
