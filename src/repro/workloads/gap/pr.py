"""PageRank-like score propagation (GAP ``pr``).

Integer fixed-point variant: each outer iteration accumulates neighbour
contributions; a data-dependent *active* test per neighbour (delinquent)
and a guarded score update that influences future reads of ``score``.
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program
from repro.workloads.gap.common import (
    embed_graph,
    init_prunable,
    make_worklist,
    outer_loop_header,
    outer_loop_footer,
    prunable_block,
)
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def build_pr(adj: Optional[List[List[int]]] = None, worklist_len: int = 4096,
             seed: int = 17) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)

    a = Assembler("pr")
    off_base, nbr_base = embed_graph(a, adj)
    score_init = [rng.randrange(0, 200) for _ in range(n)]
    score = a.data("score", score_init)
    worklist = a.data("worklist", make_worklist(n, worklist_len, seed + 2))

    a.li("x6", score)
    init_prunable(a)
    a.li("x7", 100)             # activity threshold
    outer_loop_header(a, worklist, worklist_len, off_base, nbr_base)
    a.bge("x10", "x11", "outer_inc")   # header: dangling node
    a.li("x8", 0)               # sum
    prunable_block(a, "pr", 0, "x9", n_alu=5)

    a.label("inner")
    a.slli("x12", "x10", 3)
    a.add("x12", "x12", "x5")
    a.ld("x13", "x12", 0)       # v
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x6")
    a.ld("x15", "x14", 0)       # score[v]
    a.blt("x15", "x7", "skip_contrib")  # delinquent: contribution test
    a.srai("x15", "x15", 1)
    a.add("x8", "x8", "x15")
    a.label("skip_contrib")
    a.addi("x10", "x10", 1)
    a.blt("x10", "x11", "inner")

    # Guarded influential store: score[u] updated only when it changed.
    a.slli("x12", "x9", 3)
    a.add("x12", "x12", "x6")
    a.ld("x13", "x12", 0)       # old score[u]
    a.beq("x13", "x8", "outer_inc")     # delinquent: convergence test
    a.srai("x14", "x8", 1)
    a.addi("x14", "x14", 30)
    a.andi("x14", "x14", 255)
    a.sd("x14", "x12", 0)       # score[u] = damped sum (influential)
    outer_loop_footer(a)
    a.halt()
    return a.build()


@register("pr")
def _pr() -> Program:
    return build_pr()
