"""Single-source shortest paths, Bellman-Ford style (GAP ``sssp``).

Relaxation loop: the ``dist[u] + w < dist[v]`` test is delinquent (two
arbitrary values), and the guarded ``dist[v]`` update influences future
relaxations — the classic guarded influential store.
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program
from repro.workloads.gap.common import (
    embed_graph,
    init_prunable,
    make_worklist,
    outer_loop_header,
    outer_loop_footer,
    prunable_block,
)
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def build_sssp(adj: Optional[List[List[int]]] = None, worklist_len: int = 4096,
               seed: int = 37) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)

    a = Assembler("sssp")
    off_base, nbr_base = embed_graph(a, adj)
    dist_init = [rng.randrange(0, 1000) for _ in range(n)]
    dist = a.data("dist", dist_init)
    worklist = a.data("worklist", make_worklist(n, worklist_len, seed + 2))

    a.li("x6", dist)
    init_prunable(a)
    a.li("x7", 13)                      # uniform edge weight
    outer_loop_header(a, worklist, worklist_len, off_base, nbr_base)
    a.bge("x10", "x11", "outer_inc")    # header
    a.slli("x12", "x9", 3)
    a.add("x12", "x12", "x6")
    a.ld("x8", "x12", 0)                # dist[u]
    a.add("x8", "x8", "x7")             # candidate = dist[u] + w
    prunable_block(a, "sssp", 0, "x9", n_alu=5)

    a.label("inner")
    a.slli("x12", "x10", 3)
    a.add("x12", "x12", "x5")
    a.ld("x13", "x12", 0)               # v
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x6")
    a.ld("x15", "x14", 0)               # dist[v]
    a.bge("x8", "x15", "skip_relax")    # delinquent relaxation test
    a.sd("x8", "x14", 0)                # influential guarded store dist[v]
    prunable_block(a, "sssp_in", 0, "x13", n_alu=2)
    a.label("skip_relax")
    a.addi("x10", "x10", 1)
    a.blt("x10", "x11", "inner")

    outer_loop_footer(a)
    a.halt()
    return a.build()


@register("sssp")
def _sssp() -> Program:
    return build_sssp()
