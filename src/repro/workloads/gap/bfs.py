"""BFS frontier expansion (GAP ``bfs``) — the paper's Figure 2 idiom.

Outer loop over the current frontier; short, unpredictable inner loop over
each node's neighbours (brC); delinquent visited-test (brB) guarding the
influential ``visited[v] = 1`` store; header branch brA skipping nodes with
empty adjacency.
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program
from repro.workloads.gap.common import (
    embed_graph,
    init_prunable,
    make_worklist,
    outer_loop_header,
    outer_loop_footer,
    prunable_block,
)
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def build_bfs(adj: Optional[List[List[int]]] = None, frontier_len: int = 4096,
              visited_frac: float = 0.4, seed: int = 7) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)

    a = Assembler("bfs")
    off_base, nbr_base = embed_graph(a, adj)
    visited_init = [1 if rng.random() < visited_frac else 0 for _ in range(n)]
    visited = a.data("visited", visited_init)
    frontier = a.data("frontier", make_worklist(n, frontier_len, seed + 2))
    next_frontier = a.alloc("next_frontier", frontier_len * 4 + 8)

    a.li("x6", visited)
    a.li("x7", next_frontier)
    a.li("x8", 0)               # next frontier length
    a.li("x20", 1)              # the mark value
    init_prunable(a)
    outer_loop_header(a, frontier, frontier_len, off_base, nbr_base)
    prunable_block(a, "depth", 0, "x9", n_alu=5)  # per-node depth bookkeeping
    a.bge("x10", "x11", "outer_inc")   # brA: header (empty adjacency)

    a.label("inner")
    a.slli("x12", "x10", 3)
    a.add("x12", "x12", "x5")
    a.ld("x13", "x12", 0)       # v = neighbors[j]
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x6")
    a.ld("x15", "x14", 0)       # visited[v]
    a.bne("x15", "x0", "skip_visit")   # brB: delinquent visited test
    a.sd("x20", "x14", 0)       # influential store: visited[v] = 1
    prunable_block(a, "parent", 0, "x13", n_alu=3)  # parent/dist bookkeeping
    a.slli("x15", "x8", 3)
    a.add("x15", "x15", "x7")
    a.sd("x13", "x15", 0)       # next_frontier append
    a.addi("x8", "x8", 1)
    a.label("skip_visit")
    a.addi("x10", "x10", 1)
    a.blt("x10", "x11", "inner")       # brC: short unpredictable trip count

    outer_loop_footer(a)
    a.halt()
    return a.build()


@register("bfs")
def _bfs() -> Program:
    return build_bfs()


@register("bfs_web")
def _bfs_web() -> Program:
    from repro.workloads.graphs import web_graph
    return build_bfs(adj=web_graph(8192), seed=11)


@register("bfs_uniform")
def _bfs_uniform() -> Program:
    from repro.workloads.graphs import uniform_graph
    return build_bfs(adj=uniform_graph(8192), seed=13)
