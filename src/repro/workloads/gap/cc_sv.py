"""Shiloach-Vishkin connected components (GAP ``cc_sv``).

Two delinquent loops, mirroring the paper's Fig. 14 discussion: a hooking
pass over the edge list (dependent branch pair + guarded store) and a
pointer-jumping pass.  Both loop bodies consist almost entirely of the
delinquent branches' backward slices, so their helper threads exceed the
75 % size bound and are rejected as *too big* — reproducing cc_sv's
"del. but ht too big" / "del. but ht not const." segments.
"""

import random
from typing import List, Optional, Tuple

from repro.isa import Assembler, Program
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def _edge_list(adj: List[List[int]], seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    edges = [(u, v) if rng.random() < 0.5 else (v, u)
             for u, ns in enumerate(adj) for v in ns if u < v]
    rng.shuffle(edges)
    return edges


def build_cc_sv(adj: Optional[List[List[int]]] = None, rounds: int = 1,
                seed: int = 29) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)
    edges = _edge_list(adj, seed + 2)

    a = Assembler("cc_sv")
    # Real Shiloach-Vishkin: every node starts as its own root.  Hooking
    # then creates chains, making the b2 root test genuinely delinquent.
    comp = a.data("comp", list(range(n)))
    src = a.data("edge_src", [e[0] for e in edges])
    dst = a.data("edge_dst", [e[1] for e in edges])

    a.li("x1", src)
    a.li("x2", dst)
    a.li("x4", comp)
    a.li("x5", len(edges))
    a.li("x16", rounds)
    a.li("x17", 0)
    if rounds > 1:
        a.label("round")

    # ---- Hook phase: everything feeds the label comparisons. ----
    a.li("x3", 0)
    a.label("hook")
    a.slli("x6", "x3", 3)
    a.add("x7", "x6", "x1")
    a.ld("x8", "x7", 0)          # u
    a.add("x7", "x6", "x2")
    a.ld("x9", "x7", 0)          # v
    a.slli("x10", "x8", 3)
    a.add("x10", "x10", "x4")
    a.ld("x11", "x10", 0)        # comp[u]
    a.slli("x12", "x9", 3)
    a.add("x12", "x12", "x4")
    a.ld("x13", "x12", 0)        # comp[v]
    a.bge("x11", "x13", "no_hook")        # b1: comp[u] < comp[v]?
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x4")
    a.ld("x15", "x14", 0)        # comp[comp[v]]
    a.bne("x15", "x13", "no_hook")        # b2 (guarded): v's label is a root?
    a.sd("x11", "x14", 0)        # s1 (doubly guarded, influential)
    a.label("no_hook")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x5", "hook")

    # ---- Pointer-jumping phase: a second delinquent loop. ----
    a.li("x3", 0)
    a.li("x18", n)
    a.label("jump")
    a.slli("x6", "x3", 3)
    a.add("x6", "x6", "x4")
    a.ld("x7", "x6", 0)          # comp[i]
    a.slli("x8", "x7", 3)
    a.add("x8", "x8", "x4")
    a.ld("x9", "x8", 0)          # comp[comp[i]]
    a.beq("x9", "x7", "no_jump")          # delinquent: already a root?
    a.sd("x9", "x6", 0)          # influential guarded store
    a.label("no_jump")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x18", "jump")

    if rounds > 1:
        a.addi("x17", "x17", 1)
        a.blt("x17", "x16", "round")
    a.halt()
    return a.build()


@register("cc_sv")
def _cc_sv() -> Program:
    return build_cc_sv()
