"""GAP-suite-like graph kernels (registered into the workload registry)."""

from repro.workloads.gap import bfs, pr, cc, cc_sv, bc, sssp  # noqa: F401
