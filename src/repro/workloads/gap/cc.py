"""Connected components via label propagation (GAP ``cc``).

Nested loops: for each worklist node u, scan neighbours; whenever
``comp[v] < comp[u]`` (a comparison of two arbitrary labels — delinquent),
adopt the smaller label (an influential, guarded store to ``comp[u]``).
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program
from repro.workloads.gap.common import (
    embed_graph,
    init_prunable,
    make_worklist,
    outer_loop_header,
    outer_loop_footer,
    prunable_block,
)
from repro.workloads.graphs import road_network
from repro.workloads.registry import register


def build_cc(adj: Optional[List[List[int]]] = None, worklist_len: int = 4096,
             seed: int = 23) -> Program:
    if adj is None:
        adj = road_network(8192, seed=seed)
    rng = random.Random(seed + 1)
    n = len(adj)

    a = Assembler("cc")
    off_base, nbr_base = embed_graph(a, adj)
    labels = list(range(n))
    rng.shuffle(labels)
    comp = a.data("comp", labels)
    worklist = a.data("worklist", make_worklist(n, worklist_len, seed + 2))

    a.li("x6", comp)
    init_prunable(a)
    outer_loop_header(a, worklist, worklist_len, off_base, nbr_base)
    a.bge("x10", "x11", "outer_inc")    # header
    a.slli("x7", "x9", 3)
    a.add("x7", "x7", "x6")             # &comp[u]
    a.ld("x8", "x7", 0)                 # comp[u]
    prunable_block(a, "cc", 0, "x9", n_alu=5)

    a.label("inner")
    a.slli("x12", "x10", 3)
    a.add("x12", "x12", "x5")
    a.ld("x13", "x12", 0)               # v
    a.slli("x14", "x13", 3)
    a.add("x14", "x14", "x6")
    a.ld("x15", "x14", 0)               # comp[v]
    a.bge("x15", "x8", "skip_adopt")    # delinquent label comparison
    a.mv("x8", "x15")
    a.sd("x8", "x7", 0)                 # influential guarded store comp[u]
    prunable_block(a, "cc_in", 0, "x13", n_alu=2)
    a.label("skip_adopt")
    a.addi("x10", "x10", 1)
    a.blt("x10", "x11", "inner")

    outer_loop_footer(a)
    a.halt()
    return a.build()


@register("cc")
def _cc() -> Program:
    return build_cc()
