"""Synthetic graph generators and CSR conversion.

Substitutes for the paper's input datasets (DESIGN.md §3):

* :func:`road_network` — perturbed grid: planar-ish, mean degree ≈ 2.8,
  large diameter (stands in for roadNet-CA);
* :func:`web_graph` — preferential-attachment power law: heavy-tailed
  degrees, small diameter (stands in for web-google);
* :func:`uniform_graph` — Erdős–Rényi-style uniform random graph.

All return adjacency lists; :func:`to_csr` flattens to (offsets, neighbors)
arrays suitable for embedding in a workload's data segment.
"""

import random
from typing import Dict, List, Tuple


def _dedup_sorted(neighbors: List[int], self_node: int) -> List[int]:
    return sorted({n for n in neighbors if n != self_node})


def road_network(nodes: int = 1024, seed: int = 1) -> List[List[int]]:
    """Grid graph with random edge deletions and a few shortcuts.

    Matches road networks' signature properties: low, narrow degree
    distribution and long shortest paths.
    """
    rng = random.Random(seed)
    side = int(nodes ** 0.5)
    n = side * side
    adj: List[List[int]] = [[] for _ in range(n)]

    def add_edge(u, v):
        adj[u].append(v)
        adj[v].append(u)

    for r in range(side):
        for c in range(side):
            u = r * side + c
            if c + 1 < side and rng.random() < 0.7:
                add_edge(u, u + 1)
            if r + 1 < side and rng.random() < 0.7:
                add_edge(u, u + side)
    # A few long-range shortcuts (highways).
    for _ in range(max(1, n // 100)):
        add_edge(rng.randrange(n), rng.randrange(n))
    return [_dedup_sorted(ns, i) for i, ns in enumerate(adj)]


def web_graph(nodes: int = 1024, out_degree: int = 4, seed: int = 2) -> List[List[int]]:
    """Preferential attachment: heavy-tailed degree distribution."""
    rng = random.Random(seed)
    adj: List[List[int]] = [[] for _ in range(nodes)]
    targets: List[int] = [0]
    for u in range(1, nodes):
        picks = set()
        for _ in range(min(out_degree, u)):
            picks.add(targets[rng.randrange(len(targets))])
        for v in picks:
            adj[u].append(v)
            adj[v].append(u)
            targets.extend([u, v])
    return [_dedup_sorted(ns, i) for i, ns in enumerate(adj)]


def uniform_graph(nodes: int = 1024, avg_degree: float = 4.0, seed: int = 3) -> List[List[int]]:
    rng = random.Random(seed)
    adj: List[List[int]] = [[] for _ in range(nodes)]
    edges = int(nodes * avg_degree / 2)
    for _ in range(edges):
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            adj[u].append(v)
            adj[v].append(u)
    return [_dedup_sorted(ns, i) for i, ns in enumerate(adj)]


GRAPHS = {
    "road": road_network,
    "web": web_graph,
    "uniform": uniform_graph,
}


def to_csr(adj: List[List[int]]) -> Tuple[List[int], List[int]]:
    """(offsets, neighbors): offsets has len(adj)+1 entries."""
    offsets = [0]
    neighbors: List[int] = []
    for ns in adj:
        neighbors.extend(ns)
        offsets.append(len(neighbors))
    return offsets, neighbors


def graph_stats(adj: List[List[int]]) -> Dict[str, float]:
    degrees = [len(ns) for ns in adj]
    n = len(adj)
    return {
        "nodes": n,
        "edges": sum(degrees) // 2,
        "avg_degree": sum(degrees) / n if n else 0.0,
        "max_degree": max(degrees) if degrees else 0,
    }
