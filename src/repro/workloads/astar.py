"""The astar ``makebound2()`` kernel (paper Figure 3).

A grid wavefront expansion: for every cell on the current boundary
(worklist), test its 8 neighbours; an unfilled (b1) and passable (b2)
neighbour is filled (s1 — the influential, doubly-guarded store) and
appended to the next boundary.

This is a faithful transliteration of the paper's code fragment:

* 8 neighbour blocks, each with a dependent delinquent branch pair
  (b1: ``waymap[index1].fillnum != fillnum``, b2: ``maparp[index1]``
  passability) and a store ``s1`` to ``waymap[index1].fillnum`` that is
  control-dependent on both and feeds *future* b1 instances of any
  neighbour block (loop-carried store-load dependence through ``waymap``).
* pointer-like index arithmetic so branch outcomes depend on arbitrary
  data, defeating history-based prediction.

The grid wraps (power-of-two masking) so no bounds checks are needed,
keeping the loop body free of non-delinquent control flow apart from the
eight ``skip`` joins — exactly the shape Phelps targets.
"""

import random
from typing import List, Optional

from repro.isa import Assembler, Program

# Register allocation (fixed, documented for the tests):
#   x1  bound1l base        x2  bound1length    x3  i (induction)
#   x4  waymap base         x5  maparp base     x6  fillnum
#   x7  bound2l base        x8  bound2length    x9  index
#   x10..x15 scratch
NEIGHBOR_DELTAS_2D = [1, -1, None, None, None, None, None, None]  # filled per dim


def neighbor_deltas(dim: int) -> List[int]:
    return [1, -1, dim, -dim, dim + 1, dim - 1, -dim + 1, -dim - 1]


def build_astar(
    worklist_len: int = 768,
    grid_dim: int = 64,
    passable_frac: float = 0.5,
    fill_frac: float = 0.15,
    seed: int = 42,
    waves: int = 1,
) -> Program:
    """Assemble the makebound2 kernel.

    ``waves > 1`` wraps the boundary loop in an outer wave loop (fillnum
    increments each wave), exercising the nested-loop classification path.
    """
    if grid_dim & (grid_dim - 1):
        raise ValueError("grid_dim must be a power of two")
    rng = random.Random(seed)
    cells = grid_dim * grid_dim
    mask = cells - 1

    a = Assembler("astar")
    waymap_init = [1 if rng.random() < fill_frac else 0 for _ in range(cells)]
    maparp_init = [0 if rng.random() < passable_frac else 1 for _ in range(cells)]
    # The boundary worklist is a connected wavefront, not random cells:
    # consecutive entries are spatially adjacent, so neighbourhoods overlap
    # and a store s1 in iteration j influences b1 loads a few iterations
    # later (the loop-carried store-load dependence of Section III).
    walk_steps = [1, -1, grid_dim, -grid_dim, grid_dim + 1, -grid_dim - 1]
    cell = rng.randrange(cells)
    worklist = []
    for i in range(worklist_len):
        worklist.append(cell)
        if i % 97 == 96:  # occasionally jump to a new front
            cell = rng.randrange(cells)
        else:
            cell = (cell + rng.choice(walk_steps)) & mask

    waymap = a.data("waymap", waymap_init)
    maparp = a.data("maparp", maparp_init)
    bound1l = a.data("bound1l", worklist)
    bound2l = a.alloc("bound2l", worklist_len * 8 + 8)
    waynum = a.alloc("waynum", cells)    # waymap[].num field (paper line 14)
    waycost = a.alloc("waycost", cells)  # per-cell cost bookkeeping

    a.li("x1", bound1l)
    a.li("x2", worklist_len)
    a.li("x4", waymap)
    a.li("x5", maparp)
    a.li("x6", 1)            # fillnum
    a.li("x7", bound2l)
    a.li("x18", waynum)
    a.li("x19", waycost)
    a.li("x16", waves)
    a.li("x17", 0)           # wave counter
    if waves > 1:
        a.label("wave_loop")
    a.li("x3", 0)            # i
    a.li("x8", 0)            # bound2length

    a.label("boundary_loop")
    a.slli("x10", "x3", 3)
    a.add("x10", "x10", "x1")
    a.ld("x9", "x10", 0)     # index = bound1l[i]

    for m, delta in enumerate(neighbor_deltas(grid_dim)):
        skip = f"skip{m}"
        a.addi("x10", "x9", delta)      # index1 = index + movementdelta[m]
        a.andi("x10", "x10", mask)      # wrap (power-of-two grid)
        a.slli("x11", "x10", 3)
        a.add("x11", "x11", "x4")
        a.ld("x12", "x11", 0)           # waymap[index1].fillnum
        a.beq("x12", "x6", skip)        # b{2m+1}: already filled this wave?
        a.slli("x13", "x10", 3)
        a.add("x13", "x13", "x5")
        a.ld("x14", "x13", 0)           # maparp[index1]
        a.bne("x14", "x0", skip)        # b{2m+2}: impassable?
        a.sd("x6", "x11", 0)            # s{m+1}: waymap[index1].fillnum = fillnum
        # "Other statements" of the guarded region (paper Fig. 1/Fig. 3
        # lines 14-20): step/cost bookkeeping that pre-execution prunes.
        a.slli("x15", "x10", 3)
        a.add("x15", "x15", "x18")
        a.sd("x6", "x15", 0)            # waymap[index1].num = step
        a.mul("x15", "x10", "x6")
        a.xori("x15", "x15", 0x55)
        a.addi("x15", "x15", 3 + m)
        a.slli("x21", "x10", 3)
        a.add("x21", "x21", "x19")
        a.sd("x15", "x21", 0)           # waycost[index1] = heuristic cost
        a.slli("x15", "x8", 3)
        a.add("x15", "x15", "x7")
        a.sd("x10", "x15", 0)           # bound2l[bound2length] = index1
        a.addi("x8", "x8", 1)
        a.addi("x22", "x22", 1)         # fills-this-wave counter
        a.label(skip)

    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "boundary_loop")

    if waves > 1:
        a.addi("x6", "x6", 1)           # fillnum++ (next wave refills)
        a.addi("x17", "x17", 1)
        a.blt("x17", "x16", "wave_loop")
    a.halt()
    return a.build()


def reference_bound2_length(program: Program, worklist_len: int = 768,
                            grid_dim: int = 64) -> int:
    """Architectural result via the functional executor (for tests)."""
    from repro.isa import run_program

    state = run_program(program, max_steps=5_000_000)
    return state.regs[8]
