"""Synthetic workloads reproducing the paper's benchmarks.

All workloads are written in the mini ISA via the assembler DSL.  They are
synthetic equivalents of the paper's SPEC/GAP inputs (see DESIGN.md §3):
each preserves the branch/memory behaviour Phelps targets — delinquent
data-dependent branches, dependent-branch pairs with guarded influential
stores (astar), and the nested-loop idiom of graph kernels (Fig. 2).
"""

from repro.workloads.astar import build_astar
from repro.workloads.graphs import road_network, web_graph, uniform_graph, to_csr
from repro.workloads.registry import WORKLOADS, build_workload, workload_names

__all__ = [
    "build_astar",
    "road_network",
    "web_graph",
    "uniform_graph",
    "to_csr",
    "WORKLOADS",
    "build_workload",
    "workload_names",
]
