"""Workload registry: benchmark name -> program builder.

Sizes are tuned so each region runs a few hundred thousand instructions —
enough for Phelps' (scaled) epoch machinery to measure, construct, and
deploy, while staying tractable for a pure-Python cycle-level simulator.
"""

from typing import Callable, Dict, List

from repro.isa import Program
from repro.workloads.astar import build_astar


def _astar() -> Program:
    return build_astar(worklist_len=1024, grid_dim=64)


def _astar_waves() -> Program:
    """Nested variant: the boundary loop inside a 3-wave outer loop
    (exercises nested-loop classification on astar itself)."""
    return build_astar(worklist_len=512, grid_dim=64, waves=3)


# Populated incrementally; GAP and SPEC2017-like entries register below.
WORKLOADS: Dict[str, Callable[[], Program]] = {
    "astar": _astar,
    "astar_waves": _astar_waves,
}


def register(name: str):
    def deco(fn):
        WORKLOADS[name] = fn
        return fn
    return deco


def build_workload(name: str) -> Program:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


# Side-effect imports: registering GAP and SPEC2017-like kernels.
def _register_all() -> None:
    from repro.workloads import gap  # noqa: F401
    from repro.workloads import spec17  # noqa: F401


_register_all()
