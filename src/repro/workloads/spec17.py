"""SPEC CPU 2017-like synthetic kernels.

Each kernel is engineered to land in the misprediction-taxonomy bucket the
paper reports for its namesake (Fig. 14); see DESIGN.md §3.  They are not
the SPEC programs — they are the smallest programs whose branch/loop
structure drives Phelps down the same decision paths.
"""

import random

from repro.isa import Assembler, Program
from repro.workloads.registry import register


def _random_words(rng, n, lo=0, hi=2**16):
    return [rng.randrange(lo, hi) for _ in range(n)]


@register("mcf")
def build_mcf(iterations: int = 6000, seed: int = 41) -> Program:
    """Delinquent branch inside a *non-inlined function* called from the
    loop: its PC is outside the loop's contiguous bounds, so Phelps classes
    it "del. but not in loop"."""
    rng = random.Random(seed)
    a = Assembler("mcf")
    arr = a.data("arcs", _random_words(rng, 2048, 0, 2))
    a.li("x15", arr)  # x1 is the link register (clobbered by call)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 2047)
    a.li("x21", 2654435761)
    a.label("loop")
    a.mul("x5", "x3", "x21")
    a.srli("x5", "x5", 6)
    a.and_("x5", "x5", "x20")
    a.call("check_arc")              # the delinquent branch lives in here
    a.add("x8", "x8", "x10")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()

    a.label("check_arc")
    a.slli("x6", "x5", 3)
    a.add("x6", "x6", "x15")
    a.ld("x7", "x6", 0)
    a.li("x10", 0)
    a.bne("x7", "x0", "arc_done")    # delinquent, but not inside the loop's PCs
    a.li("x10", 1)
    a.label("arc_done")
    a.ret()
    return a.build()


@register("leela")
def build_leela(iterations: int = 4000, seed: int = 43) -> Program:
    """Many weakly-biased static branches, none individually delinquent
    enough; the one that qualifies drags a helper thread that is too big."""
    rng = random.Random(seed)
    a = Assembler("leela")
    board = a.data("board", _random_words(rng, 1024, 0, 16))
    a.li("x1", board)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 1023)
    a.label("loop")
    a.mul("x5", "x3", "x3")
    a.addi("x5", "x5", 7)
    a.and_("x5", "x5", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    # 12 mostly-biased pattern tests; each mispredicts occasionally.
    for k in range(12):
        a.andi("x7", "x6", (1 << (k % 4)))
        a.beq("x7", "x0", f"pat{k}")
        a.addi("x8", "x8", 1)
        a.xor("x6", "x6", "x8")
        a.label(f"pat{k}")
        a.addi("x6", "x6", 3)
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("deepsjeng")
def build_deepsjeng(iterations: int = 2200, seed: int = 47) -> Program:
    """Like leela: diffuse, weakly-biased branches over hashed state."""
    rng = random.Random(seed)
    a = Assembler("deepsjeng")
    tt = a.data("ttable", _random_words(rng, 2048, 0, 256))
    a.li("x1", tt)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 2047)
    a.li("x21", 2654435761)
    a.label("loop")
    a.mul("x5", "x3", "x21")
    a.srli("x5", "x5", 8)
    a.and_("x5", "x5", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    for k in range(8):
        # Each cut test depends on a long evaluation chain: the branch
        # slices cover nearly the whole body (helper thread too big).
        for j in range(5):
            a.xor("x6", "x6", "x3")
            a.addi("x6", "x6", 17 + j + k)
            a.andi("x6", "x6", 1023)
        a.slti("x7", "x6", 128 + 64 * (k % 3))
        a.beq("x7", "x0", f"cut{k}")
        a.addi("x8", "x8", 1)
        a.label(f"cut{k}")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("omnetpp")
def build_omnetpp(iterations: int = 2500, seed: int = 53) -> Program:
    """One genuinely delinquent branch whose backward slice is nearly the
    whole (large) loop body: helper thread rejected as too big."""
    rng = random.Random(seed)
    a = Assembler("omnetpp")
    q = a.data("events", _random_words(rng, 1024, 0, 2**20))
    a.li("x1", q)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 1023)
    a.label("loop")
    # A long computation chain that all feeds the branch.
    a.mul("x5", "x3", "x3")
    a.and_("x5", "x5", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    for k in range(20):  # the slice: 40 dependent ALU ops
        a.xor("x6", "x6", "x3")
        a.addi("x6", "x6", 1 + k)
    a.andi("x7", "x6", 1)
    a.beq("x7", "x0", "skip")        # delinquent; slice = everything above
    a.addi("x8", "x8", 1)
    a.label("skip")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("exchange2")
def build_exchange2(outer: int = 300, seed: int = 59) -> Program:
    """Fully predictable nested counting loops with high ILP (the paper's
    worst partitioning-slowdown case; Phelps never activates)."""
    a = Assembler("exchange2")
    a.li("x2", outer)
    a.li("x3", 0)
    a.label("outer")
    a.li("x4", 0)
    a.label("inner")
    a.addi("x5", "x4", 3)
    a.addi("x6", "x4", 5)
    a.mul("x7", "x5", "x6")
    a.add("x8", "x8", "x7")
    a.addi("x9", "x9", 2)
    a.addi("x10", "x10", 7)
    a.addi("x4", "x4", 1)
    a.slti("x11", "x4", 24)
    a.bne("x11", "x0", "inner")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "outer")
    a.halt()
    return a.build()


@register("perlbench")
def build_perlbench(iterations: int = 4000, seed: int = 61) -> Program:
    """String-scan-like loop with highly biased branches (~2% slowdown
    territory: predictable, Phelps idle)."""
    rng = random.Random(seed)
    a = Assembler("perlbench")
    # Mostly 'a' characters with rare delimiters: biased branch.
    text = a.data("text", [0 if rng.random() < 0.995 else rng.randrange(1, 4) for _ in range(2048)])
    a.li("x1", text)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 2047)
    a.label("loop")
    a.and_("x5", "x3", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    # Four rare character classes: each branch is individually far below
    # the delinquency threshold.
    for k in range(4):
        a.addi("x7", "x6", -k)
        a.bne("x7", "x0", f"noclass{k}")
        a.addi("x8", "x8", 1)
        a.label(f"noclass{k}")
    # Character transformation work (prunable, predictable).
    for j in range(8):
        a.xori("x10", "x6", 0x20 + j)
        a.add("x11", "x11", "x10")
        a.srli("x10", "x10", 1)
    a.addi("x9", "x9", 1)
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("xz")
def build_xz(blocks: int = 5000, seed: int = 67) -> Program:
    """Match-finder idiom: the delinquent branch lives in a short-trip
    loop inside a non-inlined helper function, so the only loop Phelps can
    target does not iterate enough per visit ("ot/ito not iterating
    enough"); the outer block loop contributes non-delinquent
    mispredictions."""
    rng = random.Random(seed)
    a = Assembler("xz")
    data = a.data("stream", _random_words(rng, 2048, 0, 4))
    lens = a.data("match_lens", [rng.randrange(1, 5) for _ in range(512)])
    a.li("x15", data)
    a.li("x2", blocks)
    a.li("x3", 0)
    a.li("x20", 2047)
    a.li("x21", lens)
    a.li("x22", 511)
    a.label("outer")
    a.and_("x5", "x3", "x22")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x21")
    a.ld("x6", "x5", 0)              # trip count for this visit (1..4)
    a.call("match")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "outer")
    a.halt()

    a.label("match")
    a.li("x7", 0)
    a.label("inner")                  # short delinquent loop, not PC-nested
    a.add("x8", "x3", "x7")           # in the block loop (function call)
    a.and_("x8", "x8", "x20")
    a.slli("x8", "x8", 3)
    a.add("x8", "x8", "x15")
    a.ld("x9", "x8", 0)
    a.beq("x9", "x0", "miss")        # delinquent match test
    a.addi("x10", "x10", 1)
    a.label("miss")
    a.addi("x7", "x7", 1)
    a.blt("x7", "x6", "inner")
    a.ret()
    return a.build()


@register("x264")
def build_x264(iterations: int = 5000, seed: int = 71) -> Program:
    """Memory-bound motion-search-like loop: branches are predictable, so a
    helper thread (if any) cannot help — BP is not the bottleneck."""
    rng = random.Random(seed)
    a = Assembler("x264")
    frame = a.data("frame", _random_words(rng, 65536, 0, 65536))
    a.li("x1", frame)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 65535)
    a.li("x21", 2654435761)
    a.label("loop")
    # Pointer-chase-flavoured accesses over a 512 KB frame: dependent
    # cache misses dominate -> branch prediction is not the bottleneck.
    a.mul("x5", "x3", "x21")
    a.srli("x5", "x5", 7)
    a.and_("x5", "x5", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    a.and_("x6", "x6", "x20")
    a.slli("x6", "x6", 3)
    a.add("x6", "x6", "x1")
    a.ld("x7", "x6", 0)
    a.and_("x22", "x7", "x20")
    a.slli("x22", "x22", 3)
    a.add("x22", "x22", "x1")
    a.ld("x7", "x22", 0)
    a.add("x8", "x8", "x7")
    a.sub("x10", "x7", "x6")
    a.sra("x11", "x10", 5)
    a.xor("x10", "x10", "x11")
    a.sub("x10", "x10", "x11")       # abs() of the pixel difference
    a.add("x12", "x12", "x10")       # SAD accumulation (prunable)
    a.addi("x13", "x13", 1)
    a.max_("x14", "x14", "x10")
    a.andi("x9", "x7", 15)
    a.bne("x9", "x0", "sad_ok")      # delinquent-ish (~6% taken), but the
    a.addi("x8", "x8", 100)          # loop is memory-bound, not BP-bound
    a.label("sad_ok")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("gcc")
def build_gcc(iterations: int = 60, seed: int = 73) -> Program:
    """Hundreds of static branches spread over a huge code footprint: DBT
    eviction thrash keeps everything in the "gathering" bucket."""
    rng = random.Random(seed)
    a = Assembler("gcc")
    flags = a.data("flags", _random_words(rng, 1024, 0, 2))
    a.li("x1", flags)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 1023)
    a.label("loop")
    # 300 distinct static branches touched per iteration.
    for k in range(300):
        a.addi("x5", "x3", k * 7)
        a.and_("x5", "x5", "x20")
        a.slli("x5", "x5", 3)
        a.add("x5", "x5", "x1")
        a.ld("x6", "x5", 0)
        a.beq("x6", "x0", f"pass{k}")
        a.addi("x8", "x8", 1)
        a.label(f"pass{k}")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


@register("xalanc")
def build_xalanc(iterations: int = 4000, seed: int = 79) -> Program:
    """Tree-walk flavour: many moderately-biased branches, none clearing
    the delinquency threshold ("not delinquent")."""
    rng = random.Random(seed)
    a = Assembler("xalanc")
    nodes = a.data("nodes", [7 if rng.random() < 0.93 else rng.randrange(0, 3) for _ in range(2048)])
    a.li("x1", nodes)
    a.li("x2", iterations)
    a.li("x3", 0)
    a.li("x20", 2047)
    a.label("loop")
    a.and_("x5", "x3", "x20")
    a.slli("x5", "x5", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    for k in range(12):
        a.addi("x7", "x6", -(k % 3))
        a.bne("x7", "x0", f"elem{k}")    # heavily biased per site
        a.addi("x8", "x8", 1)
        a.label(f"elem{k}")
        a.addi("x5", "x5", 8)
        a.and_("x7", "x5", "x20")
        a.add("x7", "x7", "x1")
        a.ld("x6", "x7", 0)
        a.andi("x6", "x6", 7)
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()
