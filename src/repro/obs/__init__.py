"""Unified observability layer.

One opt-in hub (:class:`Observability`) bundles four concerns:

* :mod:`repro.obs.metrics` — a hierarchical counter/gauge/histogram
  registry with dotted names and lazy providers;
* :mod:`repro.obs.timeseries` — per-epoch sampling of selected counters
  (MPKI / IPC / queue-timeliness trajectories, not just totals);
* :mod:`repro.obs.events` — a typed event ring buffer with a Chrome
  trace-event exporter (open the JSON in Perfetto);
* :mod:`repro.obs.profile` — wall-clock attribution per pipeline stage,
  for optimizing the simulator itself.

Enable via ``RunConfig(observe=True)`` (or any CLI flag that implies it:
``--metrics-json``, ``--trace-out``, the ``stats`` verb).  Disabled runs
pay one ``is None`` test per cycle and nothing else.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.events import (EventTrace, Event, pipeline_trace_events,
                              to_chrome_trace, write_chrome_trace)
from repro.obs.live import (HeartbeatTicker, LiveStatus, live_view,
                            read_campaign, read_live, render_watch)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NullRegistry, flatten)
from repro.obs.profile import StageProfiler
from repro.obs.promtext import render_prometheus
from repro.obs.timeseries import DEFAULT_WATCHES, EpochSampler

__all__ = [
    "ObserveConfig",
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "flatten",
    "EventTrace",
    "Event",
    "EpochSampler",
    "StageProfiler",
    "to_chrome_trace",
    "write_chrome_trace",
    "pipeline_trace_events",
    "DEFAULT_WATCHES",
    "HeartbeatTicker",
    "LiveStatus",
    "TelemetryServer",
    "live_view",
    "read_live",
    "read_campaign",
    "render_watch",
    "render_prometheus",
]


def __getattr__(name):
    # TelemetryServer drags in http.server; load it on first use so plain
    # simulation runs never pay for the HTTP stack.
    if name == "TelemetryServer":
        from repro.obs.serve import TelemetryServer
        return TelemetryServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ObserveConfig:
    """Knobs for one run's observability.

    ``epoch_instructions=None`` means "align with the engine's epoch
    length" (resolved by ``simulate``; 20 000 for engines without epochs).
    """

    epoch_instructions: Optional[int] = None
    event_capacity: int = 65_536
    watches: Optional[Sequence[str]] = None
    profile: bool = False
    pipeline_trace: bool = False
    pipeline_trace_limit: int = 20_000


class Observability:
    """Per-run telemetry hub handed to :class:`~repro.core.pipeline.Core`."""

    def __init__(self, config: Optional[ObserveConfig] = None):
        self.config = config or ObserveConfig()
        cfg = self.config
        self.registry = MetricsRegistry()
        self.events = EventTrace(cfg.event_capacity)
        self.sampler = EpochSampler(
            self.registry,
            epoch_instructions=cfg.epoch_instructions or 20_000,
            watches=cfg.watches)
        self.profiler: Optional[StageProfiler] = None
        self.tracer = None  # PipelineTracer when pipeline_trace is on
        self._finalized = False

    # ------------------------------------------------------------------
    def attach_core(self, core) -> None:
        """Register core-level providers and install opt-in wrappers.

        Called once at the end of ``Core.__init__`` (after the engine has
        attached, so the profiler wraps the engine's final ``on_cycle``).
        """
        self.registry.register_provider("core", lambda: {
            "cycles": core.cycle,
            "retired": core.main.retired,
            "retired_branches": core.main.retired_branches,
            "mispredicts": core.main.mispredicts,
            "load_violations": core.main.load_violations,
            "helper_retired": core.stats.helper_retired,
            "helper_stores_suppressed": core.stats.helper_stores_suppressed,
            "full_squashes": core.stats.full_squashes,
            "idle_cycles_skipped": core.stats.idle_cycles_skipped,
            "threads": len(core.threads),
            # Idle-skip self-diagnosis (flattens to core.skip.*): walks
            # run, engine vetoes, and successful clock jumps — the data
            # behind ``perf --explain-skip``.
            "skip": {
                "walk_cycles": core.stats.skip_walk_cycles,
                "vetoes": core.stats.skip_vetoes,
                "bulk_advances": core.stats.skip_bulk_advances,
            },
        })
        self.registry.register_provider(
            "memory", core.hierarchy.stats)
        if self.config.pipeline_trace:
            from repro.core.trace import PipelineTracer
            self.tracer = PipelineTracer(core,
                                         limit=self.config.pipeline_trace_limit)
        if self.config.profile:
            self.profiler = StageProfiler(core)

    # ------------------------------------------------------------------
    def on_cycle(self, core) -> None:
        """Cheap per-cycle hook: epoch-boundary sampling."""
        sampler = self.sampler
        if core.main.retired >= sampler._next_boundary:
            sampler.sample(core)
            self.events.epoch(core.cycle, len(sampler.samples) - 1)

    def finalize(self, core) -> None:
        """End-of-run bookkeeping: close the partial epoch, fold profiler
        results into the registry."""
        self.sampler.sample(core, final=True)
        if self._finalized:
            return
        self._finalized = True
        if self.profiler is not None:
            self.registry.register_provider("profile", self.profiler.to_dict)
        self.registry.register_provider("obs.events", self.events.stats)

    # ------------------------------------------------------------------
    def chrome_trace(self, pid: int = 0) -> List[Dict]:
        return to_chrome_trace(self.events.events(), pid=pid,
                               tracer=self.tracer)
