"""Simulator self-profiling: wall-clock attribution per pipeline stage.

The pure-Python simulator's throughput is the binding constraint on how
much of the paper we can sweep, so "what should we optimize next?" needs
data, not vibes.  :class:`StageProfiler` wraps a core's stage methods
(the same seam :class:`~repro.core.trace.PipelineTracer` uses) and
accumulates ``time.perf_counter`` deltas per stage.

Opt-in only: wrapping adds a few hundred nanoseconds per stage call, so
it is never installed on the default path.
"""

import time
from typing import Dict, List

__all__ = ["StageProfiler"]

_STAGES = ("writeback", "retire", "issue", "dispatch", "fetch", "engine")


class StageProfiler:
    """Accumulates seconds and call counts per pipeline stage."""

    def __init__(self, core):
        self.core = core
        self.seconds: Dict[str, float] = {s: 0.0 for s in _STAGES}
        self.calls: Dict[str, int] = {s: 0 for s in _STAGES}
        self._install(core)

    # ------------------------------------------------------------------
    def _install(self, core) -> None:
        perf = time.perf_counter
        seconds, calls = self.seconds, self.calls

        def timed0(name, fn):
            def wrapper():
                t0 = perf()
                fn()
                seconds[name] += perf() - t0
                calls[name] += 1
            return wrapper

        def timed1(name, fn):
            def wrapper(arg):
                t0 = perf()
                result = fn(arg)
                seconds[name] += perf() - t0
                calls[name] += 1
                return result
            return wrapper

        core._writeback = timed0("writeback", core._writeback)
        core._retire = timed0("retire", core._retire)
        core._issue = timed0("issue", core._issue)
        core._dispatch_thread = timed1("dispatch", core._dispatch_thread)
        core._fetch_thread = timed1("fetch", core._fetch_thread)
        core.engine.on_cycle = timed1("engine", core.engine.on_cycle)

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: {"seconds": self.seconds[name], "calls": self.calls[name]}
                for name in _STAGES}

    def rows(self) -> List[List]:
        """(stage, seconds, share, calls) rows, costliest first."""
        total = self.total_seconds or 1.0
        ranked = sorted(_STAGES, key=lambda s: -self.seconds[s])
        return [[name, self.seconds[name], self.seconds[name] / total,
                 self.calls[name]] for name in ranked]

    def report(self) -> str:
        from repro.harness.reporting import ascii_table
        rows = [[name, f"{secs:.3f}s", f"{share:5.1%}", calls]
                for name, secs, share, calls in self.rows()]
        return ascii_table(["stage", "wall", "share", "calls"], rows)
