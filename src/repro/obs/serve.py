"""Stdlib-only HTTP telemetry endpoint for live campaigns.

:class:`TelemetryServer` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread and serves a running (or finished) campaign directory:

* ``/metrics``  — Prometheus text exposition: the optional metric
  registry's snapshot plus campaign point-state gauges
  (``repro_campaign_points{status="done"}``) and heartbeat staleness;
* ``/campaign`` — the journal's view as JSON (manifest + per-point
  status shards, read-only — matches ``sweep --resume``'s notion of
  state exactly because it reads the same shards);
* ``/live``     — the derived :func:`~repro.obs.live.live_view` of
  ``live.json`` (heartbeat ages and stalled flags computed per request);
* ``/stream``   — Server-Sent Events: one ``data:`` frame of the live
  view every ``interval`` seconds, for dashboards that want push;
* ``/``         — a plain-text index of the above.

The server only ever *reads* the campaign directory (no quarantining, no
repair — see :func:`~repro.obs.live.read_campaign`), so it is safe to
point at a directory another process is actively sweeping, which is the
whole point: ``repro sweep --manifest DIR --serve PORT`` runs it beside
the sweep, and ``repro serve DIR`` tails any campaign after the fact.

Port 0 binds an ephemeral port (the bound port is on ``.port`` after
:meth:`start`), which is how tests avoid collisions.
"""

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.obs.live import live_view, read_campaign, read_live
from repro.obs.promtext import CONTENT_TYPE, prom_line, render_prometheus

__all__ = ["TelemetryServer"]

_INDEX = """repro telemetry endpoint
  /metrics   Prometheus text exposition
  /campaign  campaign journal as JSON
  /live      live heartbeat view as JSON
  /stream    Server-Sent Events progress stream
"""


class TelemetryServer:
    """Serve one campaign directory's telemetry over HTTP.

    ``registry`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    (or anything with ``.snapshot()``): when the server runs inside the
    sweep process, passing the process-wide registry puts simulator
    internals on ``/metrics`` next to the campaign gauges.  All state is
    re-read per request — the server holds no cache to go stale.
    """

    def __init__(self, campaign_dir, registry=None, host: str = "127.0.0.1",
                 port: int = 0, interval: float = 1.0):
        self.campaign_dir = campaign_dir
        self.registry = registry
        self.interval = float(interval)
        try:
            self._httpd = ThreadingHTTPServer((host, port),
                                              self._handler_class())
        except OSError as exc:
            # A busy (or otherwise unbindable) port must not kill the
            # sweep the telemetry rides along with: degrade to an
            # ephemeral port with a clear log line instead of raising.
            print(f"telemetry: cannot bind {host}:{port} ({exc}); "
                  f"retrying on an ephemeral port", file=sys.stderr)
            self._httpd = ThreadingHTTPServer((host, 0),
                                              self._handler_class())
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ control
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "TelemetryServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-telemetry", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- views
    def _live_doc(self) -> Optional[Dict]:
        doc = read_live(self.campaign_dir)
        return live_view(doc) if doc is not None else None

    def _campaign_doc(self) -> Optional[Dict]:
        return read_campaign(self.campaign_dir)

    def _metrics_text(self) -> str:
        snapshot = self.registry.snapshot() if self.registry is not None else {}
        extra = []
        camp = self._campaign_doc()
        if camp is not None:
            for status in ("pending", "running", "done", "failed"):
                extra.append(prom_line(
                    "repro_campaign_points",
                    camp["counts"].get(status, 0), {"status": status}))
        live = self._live_doc()
        if live is not None:
            extra.append(prom_line("repro_campaign_stalled_points",
                                   live.get("stalled", 0)))
            extra.append(prom_line("repro_campaign_live_updated_unix",
                                   live.get("updated_unix", 0)))
            ages = [p["heartbeat_age"] for p in live["points"].values()
                    if p.get("status") == "running"
                    and p.get("heartbeat_age") is not None]
            if ages:
                extra.append(prom_line("repro_campaign_heartbeat_age_max",
                                       max(ages)))
        return render_prometheus(snapshot, extra_lines=extra)

    # ----------------------------------------------------------- handler
    def _handler_class(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Observability must not spam the sweep's stderr.
            def log_message(self, fmt, *args):
                pass

            def _send(self, code: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                # Live views: a proxy caching /metrics, /live, or
                # /campaign would serve stale campaign state.
                self.send_header("Cache-Control", "no-store")
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, doc) -> None:
                if doc is None:
                    self._send(404, "application/json",
                               b'{"error": "no such campaign data"}\n')
                else:
                    body = json.dumps(doc, indent=1, sort_keys=True)
                    self._send(200, "application/json",
                               body.encode() + b"\n")

            def do_GET(self):
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/":
                        self._send(200, "text/plain; charset=utf-8",
                                   _INDEX.encode())
                    elif path == "/metrics":
                        self._send(200, CONTENT_TYPE,
                                   server._metrics_text().encode())
                    elif path == "/campaign":
                        self._send_json(server._campaign_doc())
                    elif path == "/live":
                        self._send_json(server._live_doc())
                    elif path == "/stream":
                        self._stream()
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   b"not found\n")
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away; nothing to clean up

            def _stream(self) -> None:
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                self.end_headers()
                while True:
                    doc = server._live_doc()
                    if doc is None:
                        camp = server._campaign_doc()
                        doc = {"counts": camp["counts"],
                               "total": camp["total"]} if camp else {}
                    frame = ("data: " + json.dumps(doc, sort_keys=True)
                             + "\n\n")
                    self.wfile.write(frame.encode())
                    self.wfile.flush()
                    counts = doc.get("counts") or {}
                    finished = (counts.get("done", 0)
                                + counts.get("failed", 0))
                    if doc.get("total") and finished >= doc["total"]:
                        return  # campaign over: end the stream cleanly
                    time.sleep(server.interval)

        return Handler
