"""Live campaign telemetry: heartbeats, ``live.json``, and the watch view.

A long campaign is opaque from the outside: the journal says which points
are pending/running/done, but nothing about whether a "running" worker is
actually making progress or wedged in a pathological config.  This module
adds the out-of-band layer:

* :class:`HeartbeatTicker` — builds successive heartbeat payloads from a
  live core (retired, cycles, cycles/sec, phase, guard level).  It only
  *reads* core state, so heartbeat-enabled runs stay bit-identical to
  silent ones; nothing here ever enters ``RunConfig.cache_key()``.
* :class:`LiveStatus` — the campaign-side aggregator.  Workers' heartbeats
  and status transitions fold into one document that is atomically
  published to ``live.json`` beside the campaign journal (throttled, so a
  chatty sweep does not grind on fsyncs).
* :func:`live_view` — derives the operator-facing quantities at *read*
  time: heartbeat ages, stalled-worker flags, overall ETA.  Storing raw
  ``last`` timestamps and deriving ages on read is what lets a watcher
  notice a SIGKILLed worker within a heartbeat interval — the dead worker
  obviously cannot write its own obituary.
* :func:`render_watch` — the refreshing ASCII dashboard behind
  ``repro watch DIR``.
* :func:`read_campaign` — a read-only journal loader for watchers and the
  HTTP endpoint.  Unlike :class:`~repro.harness.campaign.CampaignJournal`
  it never quarantines an unreadable shard: observers must not mutate the
  store they observe.

Everything here is stdlib-only and deliberately independent of the
harness package (watchers duck-type the journal) so ``repro.obs`` keeps
its import graph acyclic.
"""

import json
import pathlib
import time
from typing import Dict, List, Optional

from repro.utils.shards import atomic_write_json

__all__ = ["HeartbeatTicker", "LiveStatus", "live_view", "read_live",
           "read_campaign", "render_watch", "LIVE_NAME"]

_SCHEMA = 1
LIVE_NAME = "live.json"

# A point whose last heartbeat (or start) is older than this many
# heartbeat intervals is flagged as stalled.  2x tolerates scheduling
# jitter on a loaded machine while still surfacing a killed worker within
# one interval of its first missed beat.
STALL_INTERVALS = 2.0


class HeartbeatTicker:
    """Builds one run's heartbeat payloads from its live core.

    Instantiated by ``simulate`` per run and invoked from ``Core.run``'s
    ``on_heartbeat`` hook; tracks the previous sample so it can derive
    simulation speed (cycles/sec) between beats.  Strictly read-only with
    respect to the core.
    """

    def __init__(self, total_instructions: Optional[int] = None):
        self.total = total_instructions
        self.phase = "run"
        self._last_mono: Optional[float] = None
        self._last_cycles = 0
        self._last_retired = 0

    def payload(self, core) -> Dict:
        mono = time.monotonic()
        cycles = core.cycle
        retired = core.main.retired
        cps = rps = None
        if self._last_mono is not None and mono > self._last_mono:
            dt = mono - self._last_mono
            cps = round((cycles - self._last_cycles) / dt, 1)
            rps = round((retired - self._last_retired) / dt, 1)
        self._last_mono = mono
        self._last_cycles = cycles
        self._last_retired = retired
        return {
            "unix": round(time.time(), 3),
            "phase": self.phase,
            "cycles": cycles,
            "retired": retired,
            "instructions": self.total,
            "cycles_per_sec": cps,
            "retired_per_sec": rps,
            "guard": core.config.guard_level,
            "halted": core.halted,
        }


class LiveStatus:
    """Aggregates per-point status + heartbeats into ``live.json``.

    Owned by ``run_campaign`` (one instance per campaign); every worker
    event — spawn, heartbeat, completion, failure — funnels through
    :meth:`mark` / :meth:`beat`, and :meth:`write` publishes the document
    atomically, throttled to at most one write per ``write_interval``
    seconds (status *transitions* force a write so the file never lags a
    state change by more than the in-flight heartbeats).
    """

    def __init__(self, path, interval: float = 1.0,
                 write_interval: Optional[float] = None):
        self.path = pathlib.Path(path)
        self.interval = float(interval)
        # Heartbeats from N workers arrive at ~N/interval Hz; publishing
        # at the heartbeat cadence (not per event) keeps disk traffic flat
        # in the worker count.
        self.write_interval = (self.interval / 2.0 if write_interval is None
                               else float(write_interval))
        self.points: Dict[str, Dict] = {}
        self._last_write = 0.0

    # ---------------------------------------------------------- building
    def point(self, key: str, workload: str, engine: str,
              status: str = "pending") -> None:
        """Register one campaign point (idempotent)."""
        self.points.setdefault(key, {
            "workload": workload, "engine": engine, "status": status,
            "attempts": 0, "started_unix": None, "finished_unix": None,
            "wall_seconds": None, "error": None, "hb": None,
        })

    def mark(self, key: str, status: str, error: Optional[str] = None,
             wall_seconds: Optional[float] = None) -> None:
        """Status transition; forces the next :meth:`write` through."""
        doc = self.points.get(key)
        if doc is None:
            self.point(key, "?", "?")
            doc = self.points[key]
        doc["status"] = status
        now = round(time.time(), 3)
        if status == "running":
            doc["attempts"] += 1
            doc["started_unix"] = now
            doc["error"] = None
        elif status in ("done", "failed"):
            doc["finished_unix"] = now
            doc["error"] = error
            if wall_seconds is not None:
                doc["wall_seconds"] = round(wall_seconds, 3)
        self._last_write = 0.0  # transitions are never throttled away

    def beat(self, key: str, payload: Dict) -> None:
        """Fold one worker heartbeat into its point."""
        doc = self.points.get(key)
        if doc is None:
            return
        doc["hb"] = payload

    # --------------------------------------------------------- publishing
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for doc in self.points.values():
            out[doc["status"]] = out.get(doc["status"], 0) + 1
        return out

    def snapshot(self) -> Dict:
        return {
            "schema": _SCHEMA,
            "updated_unix": round(time.time(), 3),
            "heartbeat_interval": self.interval,
            "total": len(self.points),
            "counts": self.counts(),
            "points": self.points,
        }

    def write(self, force: bool = False) -> bool:
        """Publish ``live.json`` atomically; returns True if written."""
        now = time.monotonic()
        if not force and now - self._last_write < self.write_interval:
            return False
        self._last_write = now
        atomic_write_json(self.path, self.snapshot(), indent=1,
                          sort_keys=True)
        return True


# ----------------------------------------------------------------------
# Read side: watchers, the HTTP endpoint, anything outside the sweep.
# ----------------------------------------------------------------------
def read_live(campaign_dir) -> Optional[Dict]:
    """The campaign's ``live.json``, or None (absent/torn — writes are
    atomic, so "torn" means a foreign file; either way: no live data)."""
    path = pathlib.Path(campaign_dir)
    if path.is_dir():
        path = path / LIVE_NAME
    try:
        doc = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
            OSError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != _SCHEMA:
        return None
    return doc


def read_campaign(campaign_dir) -> Optional[Dict]:
    """Read-only view of a campaign journal: manifest + per-point shards.

    Returns ``{"manifest": .., "points": {key: shard}, "counts": ..}`` or
    None when no manifest exists.  Never writes, never quarantines — a
    watcher that repaired the store it was watching would race the sweep
    that owns it; unreadable shards simply count as ``pending``.
    """
    root = pathlib.Path(campaign_dir)
    try:
        manifest = json.loads((root / "campaign.json").read_text())
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
            OSError):
        return None
    now = time.time()
    points: Dict[str, Dict] = {}
    counts: Dict[str, int] = {}
    lease_expired = 0
    for meta in manifest.get("points", ()):
        key = meta.get("key")
        if not key:
            continue
        try:
            shard = json.loads((root / f"{key}.json").read_text())
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
                OSError):
            shard = {}
        status = shard.get("status", "pending")
        # Lease health is derived at read time from the shard's expiry —
        # a dead worker cannot write its own obituary, so "running with a
        # lapsed lease" is precisely how its corpse is distinguishable
        # from a healthy (merely quiet) worker.
        expires = shard.get("lease_expires_unix")
        expired = bool(status == "running"
                       and expires is not None and expires < now)
        if expired:
            lease_expired += 1
        points[key] = {
            "workload": meta.get("workload"),
            "engine": meta.get("engine"),
            "status": status,
            "attempts": shard.get("attempts", 0),
            "error": shard.get("error"),
            "wall_seconds": (shard.get("entry") or {}).get("wall_seconds"),
            "worker": shard.get("worker"),
            "requeued": shard.get("requeued"),
            "hb": shard.get("hb"),
            "lease_expires_unix": expires,
            "lease_expired": expired,
            "audit": shard.get("audit"),
            "failed_workers": shard.get("failed_workers"),
        }
        counts[status] = counts.get(status, 0) + 1
    return {"manifest": manifest, "points": points, "counts": counts,
            "total": len(points), "lease_expired": lease_expired}


def live_view(doc: Dict, now: Optional[float] = None,
              stall_after: Optional[float] = None) -> Dict:
    """Derive the operator-facing view from a raw ``live.json`` document.

    Adds, per point: ``heartbeat_age`` (seconds since the last beat, or
    since start when no beat arrived yet), ``stalled`` (running and silent
    past ``stall_after``, default ``2 x heartbeat_interval``), and
    ``progress`` (retired / instruction budget).  Adds, campaign-wide:
    ``stalled`` count and ``eta_seconds`` — mean done-point wall time
    scaled by the remaining work and divided by the observed concurrency.
    All derivation happens at read time from stored timestamps, so a
    killed worker's silence is visible the moment its age crosses the
    threshold, not when something next writes the file.
    """
    now = time.time() if now is None else now
    interval = float(doc.get("heartbeat_interval") or 1.0)
    if stall_after is None:
        stall_after = STALL_INTERVALS * interval
    view = {k: v for k, v in doc.items() if k != "points"}
    points: Dict[str, Dict] = {}
    stalled = 0
    lease_expired = 0
    audits = 0
    poisoned = 0
    walls: List[float] = []
    remaining = 0.0
    n_running = 0
    for key, src in (doc.get("points") or {}).items():
        p = dict(src)
        hb = p.get("hb") or {}
        last = hb.get("unix") or p.get("started_unix")
        age = round(now - last, 3) if last is not None else None
        p["heartbeat_age"] = age
        # A lapsed lease (journal-derived docs carry the expiry) is a
        # *diagnosed* dead worker awaiting the reaper — report it as its
        # own state, distinct from the mere silence of "stalled".
        expires = p.get("lease_expires_unix")
        p["lease_expired"] = bool(p.get("status") == "running"
                                  and expires is not None and expires < now)
        if p["lease_expired"]:
            lease_expired += 1
        p["stalled"] = bool(p.get("status") == "running"
                            and not p["lease_expired"]
                            and age is not None and age > stall_after)
        total = hb.get("instructions")
        p["progress"] = (min(1.0, hb.get("retired", 0) / total)
                         if total else None)
        # Audit sub-docs live *outside* the entry (fingerprint-neutral);
        # surface the in-flight ones so a watcher can tell "done but
        # still under audit" from plain "done".
        audit = p.get("audit") or {}
        p["audit_active"] = bool(
            isinstance(audit, dict) and
            audit.get("status") in ("pending", "running", "arbitrating"))
        if p["audit_active"]:
            audits += 1
        if p["stalled"]:
            stalled += 1
        if p.get("status") == "done" and p.get("wall_seconds"):
            walls.append(float(p["wall_seconds"]))
        if p.get("status") == "pending":
            remaining += 1.0
        elif p.get("status") == "running":
            n_running += 1
            remaining += 1.0 - (p["progress"] or 0.0)
        elif p.get("status") == "poisoned":
            # Terminal: the breaker gave up on it, so it contributes
            # nothing to remaining work or the ETA.
            poisoned += 1
        points[key] = p
    view["points"] = points
    view["stalled"] = stalled
    view["lease_expired"] = lease_expired
    view["audits"] = audits
    view["poisoned"] = poisoned
    view["stall_after"] = stall_after
    if walls and remaining:
        lanes = max(1, n_running)
        view["eta_seconds"] = round(sum(walls) / len(walls)
                                    * remaining / lanes, 1)
    else:
        view["eta_seconds"] = None
    return view


# ----------------------------------------------------------------------
# ASCII dashboard (``repro watch``).
# ----------------------------------------------------------------------
_STATUS_ORDER = {"poisoned": 0, "failed": 0, "running": 1, "pending": 2,
                 "done": 3}


def _fmt_rate(value) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{seconds % 3600 // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_watch(view: Dict, limit: int = 0) -> str:
    """One frame of the watch dashboard, as plain text.

    ``view`` is a :func:`live_view` result (or a journal-derived document
    with the same shape minus heartbeats).  Rows sort failures and
    running points to the top; ``limit`` truncates long campaigns (0 =
    all rows).
    """
    counts = view.get("counts") or {}
    total = view.get("total", 0)
    done = (counts.get("done", 0) + counts.get("failed", 0)
            + counts.get("poisoned", 0))
    head = (f"campaign: {done}/{total} finished  "
            + "  ".join(f"{s}={counts[s]}" for s in
                        ("pending", "running", "done", "failed",
                         "poisoned")
                        if counts.get(s)))
    if view.get("stalled"):
        head += f"  STALLED={view['stalled']}"
    if view.get("lease_expired"):
        head += f"  LEASE-EXPIRED={view['lease_expired']}"
    if view.get("audits"):
        head += f"  AUDIT={view['audits']}"
    if view.get("poisoned"):
        head += f"  POISONED={view['poisoned']}"
    head += f"  eta={_fmt_eta(view.get('eta_seconds'))}"

    rows = []
    for key, p in view.get("points", {}).items():
        status = p.get("status", "pending")
        flag = (" LEASE-EXPIRED" if p.get("lease_expired")
                else " STALLED" if p.get("stalled")
                else " AUDIT" if p.get("audit_active") else "")
        progress = p.get("progress")
        hb = p.get("hb") or {}
        rows.append((
            _STATUS_ORDER.get(status, 9), key,
            [f"{p.get('workload')}/{p.get('engine')}",
             status + flag,
             f"{progress * 100:.0f}%" if progress is not None else "-",
             _fmt_rate(hb.get("cycles_per_sec")),
             (f"{p['heartbeat_age']:.1f}s"
              if p.get("heartbeat_age") is not None else "-"),
             str(p.get("attempts", 0)),
             p.get("error") or ""],
        ))
    rows.sort(key=lambda r: (r[0], r[1]))
    cells = [r[2] for r in rows]
    if limit and len(cells) > limit:
        dropped = len(cells) - limit
        cells = cells[:limit]
        cells.append([f"... {dropped} more", "", "", "", "", "", ""])

    headers = ["point", "status", "prog", "cyc/s", "hb age", "att", "error"]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [head, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def journal_view(campaign_dir) -> Optional[Dict]:
    """A :func:`live_view`-shaped document straight from the journal —
    no ``live.json`` needed.  Lets ``repro watch`` tail finished or
    foreign campaigns, and is the primary view for service campaigns,
    whose leased workers fold heartbeats into their *point shards* (each
    point has exactly one owner) rather than a shared live.json."""
    camp = read_campaign(campaign_dir)
    if camp is None:
        return None
    return live_view({
        "schema": _SCHEMA,
        "source": "journal",
        "total": camp["total"],
        "counts": camp["counts"],
        "points": camp["points"],
    })
