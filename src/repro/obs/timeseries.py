"""Per-epoch timeseries sampling.

End-of-run totals hide *when* a pathology happened: a loop that deploys
late, a queue that goes not-timely under one input phase, MPKI collapsing
only after the third epoch.  :class:`EpochSampler` snapshots a small set
of counters every epoch (a fixed number of retired main-thread
instructions) so trajectories are inspectable.

Each sample records both cumulative values and per-epoch deltas for the
core rates (IPC / MPKI), plus the watched registry counters.
"""

from typing import Dict, List, Optional, Sequence

__all__ = ["EpochSampler", "DEFAULT_WATCHES"]

# Registry counters sampled each epoch when present.
DEFAULT_WATCHES = (
    "engine.queue.consumed",
    "engine.queue.consumed_wrong",
    "engine.queue.not_timely",
    "engine.activations",
    "engine.terminations",
    "core.helper_retired",
)


class EpochSampler:
    """Samples a registry every ``epoch_instructions`` retired instructions.

    Driven by the observability hub from the core's cycle loop; engines
    with their own epoch machinery share the same boundary definition by
    construction (``simulate`` aligns ``epoch_instructions`` with the
    engine's ``epoch_length``).
    """

    def __init__(self, registry, epoch_instructions: int = 20_000,
                 watches: Optional[Sequence[str]] = None):
        self.registry = registry
        self.epoch_instructions = max(1, int(epoch_instructions))
        self.watches: List[str] = list(DEFAULT_WATCHES if watches is None
                                       else watches)
        self.samples: List[Dict[str, object]] = []
        self._next_boundary = self.epoch_instructions
        self._last = {"cycles": 0, "retired": 0, "mispredicts": 0}

    # ------------------------------------------------------------------
    def due(self, retired: int) -> bool:
        return retired >= self._next_boundary

    def sample(self, core, final: bool = False) -> Optional[Dict[str, object]]:
        """Record one sample from ``core``'s current state.

        ``final`` forces a partial-epoch sample at end of run (skipped when
        nothing retired since the last boundary).
        """
        retired = core.main.retired
        if final and retired == self._last["retired"]:
            return None
        cycles = core.cycle
        mispredicts = core.main.mispredicts
        d_retired = retired - self._last["retired"]
        d_cycles = cycles - self._last["cycles"]
        d_misp = mispredicts - self._last["mispredicts"]
        snap = self.registry.snapshot()
        sample: Dict[str, object] = {
            "epoch": len(self.samples),
            "cycles": cycles,
            "retired": retired,
            "mispredicts": mispredicts,
            "ipc": d_retired / d_cycles if d_cycles else 0.0,
            "mpki": 1000.0 * d_misp / d_retired if d_retired else 0.0,
            "cum_mpki": 1000.0 * mispredicts / retired if retired else 0.0,
        }
        for name in self.watches:
            if name in snap:
                sample[name] = snap[name]
        self.samples.append(sample)
        self._last = {"cycles": cycles, "retired": retired,
                      "mispredicts": mispredicts}
        self._next_boundary = retired + self.epoch_instructions
        return sample

    # ------------------------------------------------------------------
    def series(self, key: str) -> List:
        """One column across all samples (missing values -> None)."""
        return [s.get(key) for s in self.samples]

    def to_list(self) -> List[Dict[str, object]]:
        return list(self.samples)
