"""Hierarchical metric registry (counters, gauges, histograms, providers).

Components register metrics under dotted names (``phelps.queues.0x118.
consumed``) instead of stuffing ad-hoc dicts into :class:`SimStats`.  Two
registration styles:

* **owned instruments** — ``registry.counter("core.full_squashes")``
  returns a :class:`Counter` the component holds and increments on its hot
  path;
* **providers** — ``registry.register_provider("memory", fn)`` pulls a flat
  ``{suffix: value}`` dict lazily at snapshot time.  This is the preferred
  style for counters that already live on a component as plain attributes:
  the simulation hot path stays untouched and the registry only pays at
  epoch boundaries / end of run.

The disabled path is a :class:`NullRegistry` whose instruments are shared
no-op singletons, so guarded call sites cost one attribute test.
"""

from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "flatten",
]


def flatten(obj, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts into dotted names; ints used as keys (branch
    PCs) are rendered as hex so names stay greppable across runs."""
    out: Dict[str, object] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = f"{key:#x}" if isinstance(key, int) else str(key)
            path = f"{prefix}.{name}" if prefix else name
            out.update(flatten(value, path))
        return out
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        out[prefix] = obj
        return out
    if isinstance(obj, (list, tuple)):
        out[prefix] = list(obj)
        return out
    # Stats dataclasses (e.g. CacheStats) flatten via their public fields.
    public = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    if public:
        return flatten(public, prefix)
    out[prefix] = str(obj)
    return out


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def get(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue occupancy, active helper count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def dec(self, n: int = 1) -> None:
        self.value -= n

    def get(self):
        return self.value


class Histogram:
    """Summary statistics over observed values (count/sum/min/max).

    Keeps no per-sample storage — cheap enough to leave on in sampling
    paths, rich enough for latency-style metrics.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def get(self) -> Dict[str, float]:
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "min": self.min if self.min is not None else 0,
                "max": self.max if self.max is not None else 0}


class MetricsRegistry:
    """Name -> instrument map plus lazily-pulled providers."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[str, object] = {}
        self._providers: List = []  # (prefix, callable)

    # ------------------------------------------------------------ create
    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(name, Histogram)

    def _instrument(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif type(inst) is not cls:
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(inst).__name__}")
        return inst

    def register_provider(self, prefix: str,
                          fn: Callable[[], Dict[str, object]]) -> None:
        """``fn`` returns a (possibly nested) dict pulled at snapshot time
        and flattened under ``prefix``."""
        self._providers.append((prefix, fn))

    # ------------------------------------------------------------- query
    def value(self, name: str, default=0):
        """Current value of one metric, searching owned instruments first,
        then providers (snapshot-priced — meant for sampling, not hot
        paths)."""
        inst = self._instruments.get(name)
        if inst is not None:
            return inst.get()
        return self.snapshot().get(name, default)

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{dotted.name: value}`` of every instrument and provider."""
        out: Dict[str, object] = {}
        for name, inst in self._instruments.items():
            out[name] = inst.get()
        for prefix, fn in self._providers:
            out.update(flatten(fn(), prefix))
        return out

    def tree(self) -> Dict[str, object]:
        """The snapshot re-nested by dotted-name segments (for pretty
        printing)."""
        root: Dict[str, object] = {}
        for name, value in sorted(self.snapshot().items()):
            node = root
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):  # leaf/name collision
                    nxt = node[part] = {"": nxt}
                node = nxt
            node[parts[-1]] = value
        return root


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def get(self):
        return 0


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Fast path for observability-off runs: every instrument is the same
    inert singleton and snapshots are empty."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL  # type: ignore[return-value]

    gauge = counter  # type: ignore[assignment]
    histogram = counter  # type: ignore[assignment]

    def register_provider(self, prefix, fn) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}
