"""Prometheus text exposition for the metric registry.

Renders a flat ``{dotted.name: value}`` snapshot (the shape produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) as Prometheus
`text exposition format`__ — the lingua franca any scraper, ``curl`` or
Grafana agent already speaks.  Mapping rules:

* dotted names become underscore names under a ``repro_`` namespace
  (``core.skip.walk_cycles`` -> ``repro_core_skip_walk_cycles``); any
  character outside ``[a-zA-Z0-9_]`` is folded to ``_``;
* histogram snapshots (the ``{count, sum, mean, min, max}`` dicts the
  registry's :class:`~repro.obs.metrics.Histogram` emits) expand into one
  sample per statistic (``<name>_count``, ``<name>_sum``, ...);
* booleans render as 0/1, non-numeric values (strings, lists) are
  skipped — exposition format carries numbers only;
* two dotted names that fold to the same exposition name keep only the
  first (duplicate sample names are invalid exposition).

Everything is typed ``gauge``: the registry cannot promise monotonicity
across snapshots of different runs, and untyped metrics scrape fine.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

import re
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["prom_name", "prom_line", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def prom_name(dotted: str, prefix: str = "repro_") -> str:
    """Exposition-safe metric name for a dotted registry name."""
    name = _SANITIZE.sub("_", dotted)
    name = re.sub(r"__+", "_", name).strip("_")
    if _LEADING_DIGIT.match(name):
        name = "_" + name
    return prefix + name


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def prom_line(name: str, value, labels: Optional[Dict[str, str]] = None
              ) -> str:
    """One exposition sample line; ``name`` must already be sanitized."""
    label_part = ""
    if labels:
        inner = ",".join(f'{k}="{_escape_label(v)}"'
                         for k, v in sorted(labels.items()))
        label_part = "{" + inner + "}"
    if isinstance(value, bool):
        value = int(value)
    return f"{name}{label_part} {value}"


def _numeric_samples(dotted: str, value) -> Iterable[Tuple[str, object]]:
    """Expand one snapshot entry into (suffix, number) samples."""
    if isinstance(value, bool):
        yield "", int(value)
    elif isinstance(value, (int, float)):
        yield "", value
    elif isinstance(value, dict):
        # Histogram.get() shape — and any other numeric sub-dict a
        # provider slipped past flatten() renders the same way.
        for stat, sub in value.items():
            if isinstance(sub, bool):
                yield f"_{stat}", int(sub)
            elif isinstance(sub, (int, float)):
                yield f"_{stat}", sub


def render_prometheus(snapshot: Dict[str, object], prefix: str = "repro_",
                      extra_lines: Optional[Iterable[str]] = None) -> str:
    """The full exposition document for one registry snapshot.

    ``extra_lines`` appends pre-rendered sample lines (e.g. the campaign
    point-state gauges the server adds with labels) after the snapshot's
    metrics.  The result ends with a newline, as the format requires.
    """
    lines = []
    seen = set()
    for dotted in sorted(snapshot):
        for suffix, number in _numeric_samples(dotted, snapshot[dotted]):
            name = prom_name(dotted, prefix) + suffix
            if name in seen:
                continue
            seen.add(name)
            lines.append(f"# TYPE {name} gauge")
            lines.append(prom_line(name, number))
    for line in extra_lines or ():
        lines.append(line)
    return "\n".join(lines) + "\n"
