"""Structured event tracing and Chrome trace-event export.

:class:`EventTrace` is a bounded ring buffer of typed simulation events —
helper-thread lifecycle (construct / trigger / terminate), desyncs, DBT
evictions, queue not-timely fetches, full squashes.  Events carry the
simulated cycle as their timestamp.

:func:`to_chrome_trace` renders events (optionally merged with a
:class:`~repro.core.trace.PipelineTracer`'s per-uop stage timelines) as
Chrome trace-event JSON — the ``[{name, ph, ts, pid, tid, ...}, ...]``
array format that ``chrome://tracing`` and Perfetto load directly.  One
simulated cycle maps to one trace microsecond.
"""

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Event", "EventTrace", "to_chrome_trace", "write_chrome_trace",
           "pipeline_trace_events", "ENGINE_TID"]

# Synthetic trace "thread" for controller-level events, clear of real
# thread-context ids (which start at 0 and grow monotonically).
ENGINE_TID = 1000


@dataclass
class Event:
    """One simulation event.

    ``phase`` follows the Chrome trace-event phase letters: ``"i"``
    (instant), ``"B"``/``"E"`` (duration begin/end).
    """

    cycle: int
    name: str
    category: str = "engine"
    tid: int = ENGINE_TID
    phase: str = "i"
    args: Dict = field(default_factory=dict)


class EventTrace:
    """Fixed-capacity ring buffer of :class:`Event` objects.

    Old events are dropped FIFO; ``dropped`` counts them so exported
    traces are honest about truncation.
    """

    def __init__(self, capacity: int = 65_536):
        self.capacity = capacity
        self.buffer: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, cycle: int, name: str, category: str = "engine",
             tid: int = ENGINE_TID, phase: str = "i", **args) -> None:
        if len(self.buffer) == self.capacity:
            self.dropped += 1
        self.buffer.append(Event(cycle, name, category, tid, phase, args))
        self.emitted += 1

    # Typed emitters — one per event family, so call sites read like the
    # paper's vocabulary and grep finds every producer.
    def helper_construct(self, cycle: int, start_pc: int, status: str) -> None:
        self.emit(cycle, "helper_construct", "lifecycle",
                  start_pc=f"{start_pc:#x}", status=status)

    def helper_trigger(self, cycle: int, start_pc: int, nested: bool) -> None:
        self.emit(cycle, f"helper@{start_pc:#x}", "lifecycle", phase="B",
                  start_pc=f"{start_pc:#x}", nested=nested)

    def helper_terminate(self, cycle: int, start_pc: int, reason: str) -> None:
        self.emit(cycle, f"helper@{start_pc:#x}", "lifecycle", phase="E",
                  start_pc=f"{start_pc:#x}", reason=reason)

    def desync(self, cycle: int, pc: int) -> None:
        self.emit(cycle, "desync", "anomaly", pc=f"{pc:#x}")

    def dbt_evict(self, cycle: int, pc: int) -> None:
        self.emit(cycle, "dbt_evict", "training", pc=f"{pc:#x}")

    def queue_not_timely(self, cycle: int, pc: int) -> None:
        self.emit(cycle, "queue_not_timely", "queues", pc=f"{pc:#x}")

    def full_squash(self, cycle: int) -> None:
        self.emit(cycle, "full_squash", "pipeline", tid=0)

    # Guard subsystem (repro.guard): health failures and injected faults.
    def divergence(self, cycle: int, kind: str, pc: int) -> None:
        self.emit(cycle, "divergence", "guard", kind=kind, pc=f"{pc:#x}")

    def invariant_violation(self, cycle: int, violations) -> None:
        self.emit(cycle, "invariant_violation", "guard",
                  violations=list(violations))

    def hang(self, cycle: int, stalled_for: int, last_commit_cycle: int) -> None:
        self.emit(cycle, "hang", "guard", stalled_for=stalled_for,
                  last_commit_cycle=last_commit_cycle)

    def fault_injected(self, cycle: int, kind: str, **detail) -> None:
        self.emit(cycle, "fault_injected", "chaos", kind=kind, **detail)

    def shard_quarantined(self, path: str, kind: str) -> None:
        self.emit(0, "shard_quarantined", "guard", path=str(path), kind=kind)

    def campaign_interrupted(self, done: int, total: int) -> None:
        """A sweep stopped on SIGINT/SIGTERM with ``done``/``total`` points
        flushed; host-level, so the cycle timestamp is meaningless (0)."""
        self.emit(0, "campaign_interrupted", "campaign", done=done,
                  total=total)

    # Campaign service (repro.service): daemon lifecycle.  All host-level
    # (cycle 0), like campaign_interrupted above.
    def campaign_submitted(self, campaign: str, tenant: str,
                           points: int) -> None:
        self.emit(0, "campaign_submitted", "campaign", campaign=campaign,
                  tenant=tenant, points=points)

    def campaign_activated(self, campaign: str, points: int,
                           deduped: int) -> None:
        self.emit(0, "campaign_activated", "campaign", campaign=campaign,
                  points=points, deduped=deduped)

    def campaign_completed(self, campaign: str, status: str) -> None:
        self.emit(0, "campaign_completed", "campaign", campaign=campaign,
                  status=status)

    def campaign_cancelled(self, campaign: str) -> None:
        self.emit(0, "campaign_cancelled", "campaign", campaign=campaign)

    def point_claimed(self, campaign: str, key: str, worker: str) -> None:
        """A remote worker won one point over the HTTP lease protocol."""
        self.emit(0, "point_claimed", "campaign", campaign=campaign,
                  key=key, worker=worker)

    def lease_reaped(self, campaign: str, key: str, reason: str) -> None:
        """The service reaper requeued one point (dead worker, stale
        claim, or a failed-point retry)."""
        self.emit(0, "lease_reaped", "campaign", campaign=campaign,
                  key=key, reason=reason)

    # Result-integrity subsystem (repro.service.integrity).
    def audit_mismatch(self, campaign: str, key: str, original_worker: str,
                       audit_worker: str) -> None:
        """A sampled audit re-execution fingerprint-diverged from the
        originally published entry; arbitration follows."""
        self.emit(0, "audit_mismatch", "campaign", campaign=campaign,
                  key=key, original_worker=original_worker,
                  audit_worker=audit_worker)

    def worker_quarantined(self, worker: str, score: float,
                           reason: str) -> None:
        """A worker's reputation score crossed the quarantine threshold;
        the scheduler stops offering it work."""
        self.emit(0, "worker_quarantined", "campaign", worker=worker,
                  score=score, reason=reason)

    def point_poisoned(self, campaign: str, key: str, workers) -> None:
        """A point failed under enough *distinct* workers that the
        breaker declared it terminally poisoned instead of retrying."""
        self.emit(0, "point_poisoned", "campaign", campaign=campaign,
                  key=key, workers=list(workers))

    def epoch(self, cycle: int, index: int) -> None:
        self.emit(cycle, f"epoch_{index}", "epochs", index=index)

    # ------------------------------------------------------------------
    def events(self) -> List[Event]:
        return list(self.buffer)

    def by_name(self, name: str) -> List[Event]:
        return [e for e in self.buffer if e.name == name]

    def stats(self) -> Dict[str, int]:
        return {"emitted": self.emitted, "dropped": self.dropped,
                "buffered": len(self.buffer)}


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------
def to_chrome_trace(events: Iterable[Event], pid: int = 0,
                    tracer=None) -> List[Dict]:
    """Render events (plus an optional PipelineTracer) as trace-event dicts.

    Every entry carries the ``name/ph/ts/pid/tid`` quintet; durations use
    complete ("X") or begin/end ("B"/"E") phases, instants use "i".
    Unbalanced "B" events at end of trace are closed implicitly by the
    viewer, so no fixup pass is needed.
    """
    out: List[Dict] = [
        {"name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
         "args": {"name": "repro simulated core"}},
        {"name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
         "tid": ENGINE_TID, "args": {"name": "pre-execution engine"}},
    ]
    for ev in events:
        entry = {"name": ev.name, "ph": ev.phase, "ts": ev.cycle,
                 "pid": pid, "tid": ev.tid, "cat": ev.category,
                 "args": dict(ev.args)}
        if ev.phase == "i":
            entry["s"] = "t"  # thread-scoped instant
        out.append(entry)
    if tracer is not None:
        out.extend(pipeline_trace_events(tracer, pid=pid))
    return out


def pipeline_trace_events(tracer, pid: int = 0) -> List[Dict]:
    """Per-uop slices from a :class:`~repro.core.trace.PipelineTracer`.

    Each traced uop becomes one complete ("X") slice from fetch to
    retire/squash on its thread-context row, with the stage timestamps in
    ``args`` — the same data the tracer's text ``render`` shows, loadable
    in Perfetto next to the engine's lifecycle events.
    """
    out: List[Dict] = []
    seen_tids = set()
    for key in list(tracer.order):
        t = tracer.traces.get(key)
        if t is None:
            continue
        end = t.retire if t.retire >= 0 else t.squashed
        if t.fetch < 0 or end < 0:
            continue  # still in flight (or evicted mid-flight)
        if t.thread_id not in seen_tids:
            seen_tids.add(t.thread_id)
            role = "main thread" if t.thread_id == 0 else f"helper ctx {t.thread_id}"
            out.append({"name": "thread_name", "ph": "M", "ts": 0,
                        "pid": pid, "tid": t.thread_id,
                        "args": {"name": role}})
        out.append({
            "name": f"{t.opcode}@{t.pc:#x}",
            "ph": "X",
            "ts": t.fetch,
            "dur": max(1, end - t.fetch),
            "pid": pid,
            "tid": t.thread_id,
            "cat": "uop",
            "args": {"seq": t.seq, "fetch": t.fetch, "dispatch": t.dispatch,
                     "issue": t.issue, "writeback": t.writeback,
                     "retire": t.retire, "squashed": t.squashed},
        })
    return out


def write_chrome_trace(path: str, events: Iterable[Event], pid: int = 0,
                       tracer=None) -> int:
    """Write the trace-event array to ``path``; returns the entry count."""
    entries = to_chrome_trace(events, pid=pid, tracer=tracer)
    with open(path, "w") as fh:
        json.dump(entries, fh)
    return len(entries)
