"""Saturating counters used throughout predictors and training tables."""


class SaturatingCounter:
    """An n-bit saturating counter.

    The counter ranges over ``[0, 2**bits - 1]``.  ``taken`` is true in the
    upper half of the range, which makes a freshly ``weakly_taken``
    initialized counter behave like the hardware idiom.
    """

    __slots__ = ("bits", "value", "_max")

    def __init__(self, bits: int = 2, value: int = None):
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.bits = bits
        self._max = (1 << bits) - 1
        if value is None:
            value = 1 << (bits - 1)  # weakly taken
        if not 0 <= value <= self._max:
            raise ValueError(f"value {value} out of range for {bits}-bit counter")
        self.value = value

    @property
    def taken(self) -> bool:
        """Predicted direction: true in the upper half of the range."""
        return self.value >= (1 << (self.bits - 1))

    @property
    def max(self) -> int:
        return self._max

    def increment(self) -> None:
        if self.value < self._max:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def update(self, taken: bool) -> None:
        """Train toward ``taken``."""
        if taken:
            self.increment()
        else:
            self.decrement()

    @property
    def is_saturated(self) -> bool:
        return self.value == 0 or self.value == self._max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"
