"""Fixed-width integer helpers.

The ISA is 64-bit; Python integers are unbounded, so every arithmetic
result is normalized through :func:`to_i64` (two's-complement signed) or
:func:`to_u64` (unsigned) before being written back to a register.
"""

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def to_u64(value: int) -> int:
    """Truncate ``value`` to an unsigned 64-bit integer."""
    return value & _MASK64


def to_i64(value: int) -> int:
    """Truncate ``value`` to a signed (two's complement) 64-bit integer."""
    value &= _MASK64
    if value & _SIGN64:
        value -= 1 << 64
    return value


def fold_bits(value: int, out_bits: int) -> int:
    """XOR-fold an arbitrary-width non-negative integer down to ``out_bits``.

    Used by predictors and cache index functions to hash PCs and history
    registers into table indices without biasing low bits.
    """
    if out_bits <= 0:
        raise ValueError("out_bits must be positive")
    mask = (1 << out_bits) - 1
    folded = 0
    value &= _MASK64
    while value:
        folded ^= value & mask
        value >>= out_bits
    return folded
