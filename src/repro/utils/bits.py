"""Fixed-width integer helpers.

The ISA is 64-bit; Python integers are unbounded, so every arithmetic
result is normalized through :func:`to_i64` (two's-complement signed) or
:func:`to_u64` (unsigned) before being written back to a register.
"""

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def to_u64(value: int) -> int:
    """Truncate ``value`` to an unsigned 64-bit integer."""
    return value & _MASK64


def to_i64(value: int) -> int:
    """Truncate ``value`` to a signed (two's complement) 64-bit integer."""
    value &= _MASK64
    if value & _SIGN64:
        value -= 1 << 64
    return value


def fold_bits(value: int, out_bits: int) -> int:
    """XOR-fold an arbitrary-width non-negative integer down to ``out_bits``.

    Used by predictors and cache index functions to hash PCs and history
    registers into table indices without biasing low bits.

    The fold halves the working width each step instead of consuming one
    ``out_bits`` chunk per iteration: XOR-folding is associative, so
    folding by any multiple of ``out_bits`` first and then folding the
    remainder produces the same result as the chunk-at-a-time loop (the
    pre-refactor implementation, kept as the oracle in the bits tests).
    """
    if out_bits <= 0:
        raise ValueError("out_bits must be positive")
    mask = (1 << out_bits) - 1
    value &= _MASK64
    if value <= mask:
        return value
    steps = _FOLD_STEPS.get(out_bits)
    if steps is None:
        seq = []
        width = 64
        while width > out_bits:
            # Smallest multiple of out_bits covering at least half the width.
            half = (width // 2 + out_bits - 1) // out_bits * out_bits
            seq.append((half, (1 << half) - 1))
            width = half
        steps = _FOLD_STEPS[out_bits] = tuple(seq)
    for half, m in steps:
        value = (value ^ (value >> half)) & m
    return value


# Per-out_bits shift/mask schedules for the halving fold, built on demand.
_FOLD_STEPS: dict = {}
