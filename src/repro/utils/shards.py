"""Shared shard-store hygiene: atomic writes and quarantine-not-delete.

All durable artifacts in the repo (run-cache shards, checkpoint shards,
campaign-journal shards, snapshot blobs, report JSONs) follow the same
two disciplines:

* **Atomic writes** — content lands in a temp file in the destination
  directory and is published with ``os.replace``, so a reader (or a
  crash) can never observe a torn file.  :func:`atomic_write_json` and
  :func:`atomic_write_bytes` are the shared writers.
* **Quarantine, not delete** — a shard that exists yet cannot be parsed
  is evidence of a killed writer or filesystem damage, and silently
  recomputing over it destroys the post-mortem.  :func:`quarantine_shard`
  renames the damaged file to ``<name>.corrupt`` (atomic, keeps the
  bytes) so the store treats the key as a miss while the evidence
  survives next to the fresh shard.
"""

import json
import os
import pathlib
import tempfile
from typing import Optional

__all__ = ["atomic_write_bytes", "atomic_write_json", "quarantine_shard"]


def _atomic_publish(path: pathlib.Path, mode: str, write) -> pathlib.Path:
    """Write via mkstemp in the target directory, then ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            write(fh)
        os.replace(tmp, path)  # atomic on POSIX: readers never see partials
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path, doc, *, indent: Optional[int] = 1,
                      sort_keys: bool = False, default=None) -> pathlib.Path:
    """Serialize ``doc`` as JSON to ``path`` atomically; returns the path.

    A crash mid-write leaves only a ``*.tmp`` turd, never a truncated
    report — every ``json.dump`` that produces a durable artifact (CLI
    reports, diagnostic bundles, perf records, cache shards) routes
    through here.
    """
    def _write(fh):
        json.dump(doc, fh, indent=indent, sort_keys=sort_keys,
                  default=default)
        fh.write("\n")

    return _atomic_publish(pathlib.Path(path), "w", _write)


def atomic_write_bytes(path, blob: bytes) -> pathlib.Path:
    """Write raw bytes (e.g. a pickled core snapshot) atomically."""
    return _atomic_publish(pathlib.Path(path), "wb",
                           lambda fh: fh.write(blob))


def quarantine_shard(path, events=None, kind: str = "shard"):
    """Rename an unreadable shard to ``*.corrupt``; returns the new path.

    Returns None when the rename itself fails (e.g. the file vanished —
    another process may have quarantined it first); the caller treats the
    key as a miss either way.  ``events`` (an optional
    :class:`~repro.obs.events.EventTrace`) gets a ``shard_quarantined``
    event so long sweeps surface storage damage in their traces.
    """
    path = pathlib.Path(path)
    corrupt = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, corrupt)
    except OSError:
        return None
    if events is not None:
        events.shard_quarantined(str(corrupt), kind)
    return corrupt
