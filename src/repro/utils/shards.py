"""Shared shard-store hygiene: quarantine instead of delete.

Both shard stores (:class:`repro.harness.runcache.RunCache` and
:class:`repro.sampling.checkpoint.CheckpointStore`) write atomically but
read defensively: a shard that exists yet cannot be parsed is evidence of
a killed writer or filesystem damage, and silently recomputing over it
destroys the post-mortem.  :func:`quarantine_shard` renames the damaged
file to ``<name>.corrupt`` (atomic, keeps the bytes) so the store treats
the key as a miss while the evidence survives next to the fresh shard.
"""

import os
import pathlib
from typing import Optional

__all__ = ["quarantine_shard"]


def quarantine_shard(path, events=None, kind: str = "shard"):
    """Rename an unreadable shard to ``*.corrupt``; returns the new path.

    Returns None when the rename itself fails (e.g. the file vanished —
    another process may have quarantined it first); the caller treats the
    key as a miss either way.  ``events`` (an optional
    :class:`~repro.obs.events.EventTrace`) gets a ``shard_quarantined``
    event so long sweeps surface storage damage in their traces.
    """
    path = pathlib.Path(path)
    corrupt = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, corrupt)
    except OSError:
        return None
    if events is not None:
        events.shard_quarantined(str(corrupt), kind)
    return corrupt
