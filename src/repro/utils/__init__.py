"""Small shared utilities: saturating counters, 64-bit integer helpers."""

from repro.utils.bits import to_i64, to_u64, fold_bits
from repro.utils.counters import SaturatingCounter

__all__ = ["to_i64", "to_u64", "fold_bits", "SaturatingCounter"]
