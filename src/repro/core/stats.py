"""Simulation statistics.

:class:`SimStats` is the stable, backward-compatible façade over one
run's numbers.  The legacy flat counters and the ``memory`` / ``engine``
dicts are kept as-is for existing callers; runs with observability
enabled (``RunConfig(observe=True)``) additionally carry:

* ``metrics`` — the flat dotted-name snapshot of the metric registry
  (``repro.obs.metrics``), e.g. ``phelps.queues.0x118.consumed_wrong``;
* ``epochs``  — the per-epoch timeseries samples (``repro.obs.timeseries``),
  each a dict with ``epoch/cycles/retired/ipc/mpki/...`` keys.

Both are empty on observability-off runs.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimStats:
    """Counters collected over one simulation run.

    ``retired`` / ``mispredicts`` are main-thread architectural counts;
    helper-thread overheads are reported separately (Fig. 13b).
    """

    cycles: int = 0
    retired: int = 0
    retired_branches: int = 0
    mispredicts: int = 0
    load_violations: int = 0
    helper_retired: int = 0
    helper_stores_suppressed: int = 0
    queue_consumed: int = 0
    queue_consumed_wrong: int = 0
    queue_not_timely: int = 0
    full_squashes: int = 0
    # Cycles elided by the event-driven idle fast path (Core.run).  The
    # skipped cycles are still *counted* in ``cycles`` — this records how
    # much simulator work the fast path avoided, not a timing change.
    idle_cycles_skipped: int = 0
    # Idle-skip self-diagnosis (``perf --explain-skip``): how many
    # quiescence walks ran (each costs about one naive tick of wall
    # work), how many ended in an engine veto, and how many actually
    # jumped the clock.  ``skip_walk_cycles`` rivaling
    # ``idle_cycles_skipped`` means the fast path costs more than it
    # saves on that workload.
    skip_walk_cycles: int = 0
    skip_vetoes: int = 0
    skip_bulk_advances: int = 0
    halted: bool = False
    memory: Dict = field(default_factory=dict)
    engine: Dict = field(default_factory=dict)
    # Observability (populated only when a run observes; see module doc).
    metrics: Dict = field(default_factory=dict)
    epochs: List[Dict] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        return 1000.0 * self.mispredicts / self.retired if self.retired else 0.0

    def metric(self, name: str, default=0):
        """One dotted-name metric from the observability snapshot."""
        return self.metrics.get(name, default)

    def metrics_with_prefix(self, prefix: str) -> Dict[str, object]:
        """All metrics under ``prefix.`` (prefix stripped from the keys)."""
        cut = len(prefix) + 1
        return {k[cut:]: v for k, v in self.metrics.items()
                if k.startswith(prefix + ".")}

    def epoch_series(self, key: str) -> List:
        """One per-epoch column, e.g. ``epoch_series("mpki")``."""
        return [s.get(key) for s in self.epochs]

    def summary(self) -> str:
        return (
            f"cycles={self.cycles} retired={self.retired} IPC={self.ipc:.3f} "
            f"MPKI={self.mpki:.2f} misp={self.mispredicts} "
            f"ht_retired={self.helper_retired} viol={self.load_violations}"
        )
