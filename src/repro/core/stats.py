"""Simulation statistics."""

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimStats:
    """Counters collected over one simulation run.

    ``retired`` / ``mispredicts`` are main-thread architectural counts;
    helper-thread overheads are reported separately (Fig. 13b).
    """

    cycles: int = 0
    retired: int = 0
    retired_branches: int = 0
    mispredicts: int = 0
    load_violations: int = 0
    helper_retired: int = 0
    helper_stores_suppressed: int = 0
    queue_consumed: int = 0
    queue_consumed_wrong: int = 0
    queue_not_timely: int = 0
    full_squashes: int = 0
    halted: bool = False
    memory: Dict = field(default_factory=dict)
    engine: Dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        return 1000.0 * self.mispredicts / self.retired if self.retired else 0.0

    def summary(self) -> str:
        return (
            f"cycles={self.cycles} retired={self.retired} IPC={self.ipc:.3f} "
            f"MPKI={self.mpki:.2f} misp={self.mispredicts} "
            f"ht_retired={self.helper_retired} viol={self.load_violations}"
        )
