"""Thread contexts and fetch units.

The core is SMT-like: the main thread plus up to two helper threads, each
with its own frontend queue, rename tables, ROB partition, and LQ/SQ
partition (paper Section IV-A).  The issue queue and execution lanes are
flexibly shared.
"""

import enum
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.core.config import PartitionShare
from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.rename import RenameMapTable
from repro.core.uop import Uop


class ThreadKind(enum.Enum):
    MAIN = "MT"
    INNER_ONLY = "ITO"
    OUTER = "OT"
    INNER = "IT"


class FetchUnit:
    """Instruction supply for one thread.

    ``peek`` returns the instruction at the current fetch position (or None
    if the thread has nothing to fetch this cycle); ``advance`` moves the
    position given the predicted direction of the instruction just fetched.
    """

    def peek(self) -> Optional[Instruction]:
        raise NotImplementedError

    def advance(self, taken: bool, target: Optional[int]) -> None:
        raise NotImplementedError

    def redirect(self, pc: int) -> None:
        """Squash recovery: restart the stream (PC for main, engine-defined
        position for helpers)."""
        raise NotImplementedError

    def annotate_uop(self, uop) -> None:
        """Optional hook to attach fetch-unit state to the uop just created
        (helper threads attach Visit Queue live-in values here)."""

    def predict_branch(self, inst) -> bool:
        """Helper threads only: fetch-time direction for a conditional
        branch (the main thread uses the core's predictor stack instead)."""
        return True


class MainFetchUnit(FetchUnit):
    """PC-driven fetch from the architectural program."""

    def __init__(self, program: Program):
        self.program = program
        self.pc = program.entry

    def peek(self) -> Optional[Instruction]:
        return self.program.fetch(self.pc)

    def advance(self, taken: bool, target: Optional[int]) -> None:
        if taken and target is not None:
            self.pc = target
        else:
            self.pc += 4

    def redirect(self, pc: int) -> None:
        self.pc = pc


class ThreadContext:
    """All per-thread microarchitectural state.

    ``__slots__`` keeps the per-thread record flat — every attribute is
    declared here, and the per-cycle stage loops touch them without a
    ``__dict__`` indirection.  ``rename_cls`` selects the rename-table
    implementation (columnar by default; the legacy twin under
    ``CoreConfig(columnar=False)``).
    """

    __slots__ = (
        "id", "kind", "fetch", "share", "rmt", "amt", "pred_rmt", "rob",
        "frontend_q", "lq", "sq", "next_seq", "fetch_halted",
        "fetch_stalled_until", "wait_for_moves", "resume_pc", "spec_cache",
        "blocked_loads", "retired", "retired_stores", "retired_branches",
        "mispredicts", "load_violations", "read_value", "commit_store",
    )

    def __init__(
        self,
        thread_id: int,
        kind: ThreadKind,
        fetch_unit: FetchUnit,
        share: PartitionShare,
        num_pred_logical: int = 32,
        rename_cls=RenameMapTable,
    ):
        self.id = thread_id
        self.kind = kind
        self.fetch = fetch_unit
        self.share = share
        self.rmt = rename_cls()
        self.amt = rename_cls()  # committed map (value capture at retire)
        self.pred_rmt = rename_cls(num_logical=num_pred_logical)
        self.rob: Deque[Uop] = deque()
        self.frontend_q: Deque[tuple] = deque()  # (ready_cycle, uop)
        self.lq = LoadQueue(share.lq)
        self.sq = StoreQueue(share.sq)
        self.next_seq = 0
        self.fetch_halted = False       # saw HALT (main) / terminated (helper)
        self.fetch_stalled_until = 0    # e.g. I-cache miss
        self.wait_for_moves = False     # MT stalls until live-in moves retire
        self.resume_pc = 0              # next correct-path PC after last retire
        self.spec_cache = None          # helper threads: speculative store D$
        self.blocked_loads: List[Uop] = []  # helper loads awaiting store addrs
        self.retired = 0
        self.retired_stores = 0
        self.retired_branches = 0
        self.mispredicts = 0
        self.load_violations = 0
        # Memory hooks, installed by the pipeline/engine:
        #   read_value(addr) -> int            (value visible to this thread)
        #   commit_store(addr, value) -> None  (retire-time store side)
        self.read_value: Optional[Callable[[int], int]] = None
        self.commit_store: Optional[Callable[[int, int], None]] = None

    # ------------------------------------------------------------------
    def alloc_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def rob_full(self) -> bool:
        return len(self.rob) >= self.share.rob

    def in_flight(self) -> int:
        return len(self.rob) + len(self.frontend_q)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<thread {self.id} {self.kind.value}: rob={len(self.rob)}>"
