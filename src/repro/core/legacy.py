"""Pre-columnar reference implementations of the core's storage structures.

These are the object-graph versions the columnar refactor replaced,
preserved verbatim so the A/B cycle-exactness harness
(:mod:`repro.harness.abcompare`) can run a genuine pre-refactor engine at
runtime and so the unit equivalence tests can drive old and new
implementations side by side.  ``CoreConfig(columnar=False)`` makes
:class:`~repro.core.pipeline.Core` (and the memory hierarchy) instantiate
these instead of the columnar versions.

Behavioural contract: every class here is observationally identical to its
columnar twin — same allocation order, same LRU behaviour, same stats —
so the two engines produce bit-identical cycle counts, SimStats, and
commit streams.  Do not "improve" these; they are the baseline.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.registers import NUM_REGS
from repro.memory.cache import CacheStats

ZERO_REG = 0  # physical register 0 is the architected constant zero
PRED_ALWAYS = 0  # predicate physical register 0 = pred0 = unconditional


class LegacyPhysRegFile:
    """Integer physical registers with values, ready bits, and wakeup lists."""

    def __init__(self, size: int):
        self.size = size
        self.value: List[int] = [0] * size
        self.ready: List[bool] = [False] * size
        self._waiters: Dict[int, List] = {}
        # Register 0 is the constant zero, always ready.
        self.ready[ZERO_REG] = True

    def mark_not_ready(self, reg: int) -> None:
        if reg != ZERO_REG:
            self.ready[reg] = False

    def write(self, reg: int, value: int) -> List:
        """Write back a result; returns the wakeup list of waiting uops."""
        if reg == ZERO_REG:
            return []
        self.value[reg] = value
        self.ready[reg] = True
        return self._waiters.pop(reg, [])

    def subscribe(self, reg: int, waiter) -> bool:
        """Register a waiter; returns False if the reg was already ready."""
        if self.ready[reg]:
            return False
        self._waiters.setdefault(reg, []).append(waiter)
        return True

    def read(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.value[reg]

    def drop_waiters(self, predicate: Callable) -> None:
        """Remove waiters matching ``predicate`` (used on squash)."""
        for reg in list(self._waiters):
            kept = [w for w in self._waiters[reg] if not predicate(w)]
            if kept:
                self._waiters[reg] = kept
            else:
                del self._waiters[reg]


class LegacyPredRegFile(LegacyPhysRegFile):
    """Predicate physical registers (paper Section V-H)."""

    def __init__(self, size: int = 128):
        super().__init__(size)
        self.value[PRED_ALWAYS] = 0b10  # enabled, direction unused

    @staticmethod
    def pack(enabled: bool, taken: bool) -> int:
        return (int(enabled) << 1) | int(taken)

    def consumer_enabled(self, reg: int, enabling_direction: bool) -> bool:
        if reg == PRED_ALWAYS:
            return True
        v = self.value[reg]
        return bool(v & 0b10) and bool(v & 0b01) == enabling_direction

    def write_pred(self, reg: int, enabled: bool, taken: bool) -> List:
        if reg == PRED_ALWAYS:
            raise ValueError("pred0 is constant")
        return super().write(reg, self.pack(enabled, taken))


class LegacySharedPhysPool:
    """Quota-based physical register allocation (shared pool, list-backed)."""

    def __init__(self, size: int, reserved: int = 1):
        self.size = size
        self.reserved = reserved
        self._free: List[int] = list(range(reserved, size))
        self._held = {}  # thread_id -> count

    def free_count(self) -> int:
        return len(self._free)

    def free_list(self) -> List[int]:
        return list(self._free)

    def held_by(self, thread_id: int) -> int:
        return self._held.get(thread_id, 0)

    def held_total(self) -> int:
        return sum(self._held.values())

    def can_allocate(self, thread_id: int, quota: int) -> bool:
        return bool(self._free) and self.held_by(thread_id) < quota

    def allocate(self, thread_id: int, quota: int) -> Optional[int]:
        if not self.can_allocate(thread_id, quota):
            return None
        reg = self._free.pop()
        self._held[thread_id] = self.held_by(thread_id) + 1
        return reg

    def release(self, thread_id: int, reg: int) -> None:
        self._free.append(reg)
        count = self.held_by(thread_id) - 1
        if count < 0:
            raise RuntimeError(f"thread {thread_id} released more registers than held")
        self._held[thread_id] = count

    def release_all_for(self, thread_id: int, regs) -> None:
        for reg in regs:
            self.release(thread_id, reg)


class LegacyRenameMapTable:
    """Logical -> physical mapping for one thread (plain-list version)."""

    def __init__(self, num_logical: int = NUM_REGS, zero_phys: int = ZERO_REG):
        self.num_logical = num_logical
        self._zero = zero_phys
        self.map: List[int] = [zero_phys] * num_logical

    def lookup(self, logical: int) -> int:
        return self.map[logical]

    def set(self, logical: int, phys: int) -> int:
        if logical == 0:
            raise ValueError("logical register 0 is constant")
        old = self.map[logical]
        self.map[logical] = phys
        return old

    def snapshot(self) -> List[int]:
        return list(self.map)

    def restore(self, snap: List[int]) -> None:
        self.map = list(snap)

    def mapped_physical(self) -> List[int]:
        return [p for p in self.map if p != self._zero]


class LegacyBranchTargetBuffer:
    """Set-associative PC -> target cache (list-of-entry-objects version)."""

    def __init__(self, sets: int = 1024, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self._sets = sets
        self._ways = ways
        # Per set: list of [tag, target], most-recently-used first.
        self._table: List[List[List[int]]] = [[] for _ in range(sets)]

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self._sets - 1)

    def lookup(self, pc: int) -> Optional[int]:
        s = self._table[self._set_index(pc)]
        for i, (tag, target) in enumerate(s):
            if tag == pc:
                if i:
                    s.insert(0, s.pop(i))
                return target
        return None

    def insert(self, pc: int, target: int) -> None:
        s = self._table[self._set_index(pc)]
        for i, entry in enumerate(s):
            if entry[0] == pc:
                entry[1] = target
                if i:
                    s.insert(0, s.pop(i))
                return
        s.insert(0, [pc, target])
        if len(s) > self._ways:
            s.pop()


class _Line:
    __slots__ = ("tag", "dirty", "prefetched")

    def __init__(self, tag: int, dirty: bool = False, prefetched: bool = False):
        self.tag = tag
        self.dirty = dirty
        self.prefetched = prefetched


class LegacyCache:
    """A single cache level with per-line ``_Line`` objects (tags only)."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = "cache"):
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways*line")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets ({self.num_sets}) must be a power of two")
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Per set: list of lines, MRU first.
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _set_index(self, block: int) -> int:
        return block & self._set_mask

    def _tag(self, block: int) -> int:
        return block >> (self.num_sets.bit_length() - 1)

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> bool:
        block = self.block_addr(addr)
        s = self._sets[self._set_index(block)]
        tag = self._tag(block)
        return any(line.tag == tag for line in s)

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        block = self.block_addr(addr)
        set_idx = self._set_index(block)
        s = self._sets[set_idx]
        tag = self._tag(block)
        for i, line in enumerate(s):
            if line.tag == tag:
                self.stats.hits += 1
                if is_write:
                    line.dirty = True
                if i:
                    s.insert(0, s.pop(i))
                return True, None
        self.stats.misses += 1
        writeback = self._fill(set_idx, tag, dirty=is_write, prefetched=False)
        return False, writeback

    def fill(self, addr: int, prefetched: bool = False) -> Optional[int]:
        block = self.block_addr(addr)
        set_idx = self._set_index(block)
        tag = self._tag(block)
        s = self._sets[set_idx]
        for i, line in enumerate(s):
            if line.tag == tag:
                return None  # already present
        if prefetched:
            self.stats.prefetch_fills += 1
        return self._fill(set_idx, tag, dirty=False, prefetched=prefetched)

    def _fill(self, set_idx: int, tag: int, dirty: bool, prefetched: bool) -> Optional[int]:
        s = self._sets[set_idx]
        s.insert(0, _Line(tag, dirty=dirty, prefetched=prefetched))
        if len(s) > self.ways:
            victim = s.pop()
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                return (victim.tag << (self.num_sets.bit_length() - 1)) | set_idx
        return None

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]


__all__ = [
    "LegacyPhysRegFile", "LegacyPredRegFile", "LegacySharedPhysPool",
    "LegacyRenameMapTable", "LegacyBranchTargetBuffer", "LegacyCache",
]
