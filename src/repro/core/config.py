"""Core configuration (paper Table III) and partition plans (Table I)."""

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict


@dataclass
class CoreConfig:
    """Superscalar core parameters.

    Defaults are the paper's principal configuration: an A14-class machine
    with an 8-wide frontend, 11-stage pipeline, and a 632-entry ROB
    (divisible by 8 for partitioning).
    """

    fetch_width: int = 8
    retire_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    pipeline_stages: int = 11  # fetch to retire
    rob_size: int = 632
    prf_size: int = 696
    lq_size: int = 144
    sq_size: int = 144
    iq_size: int = 128
    lanes_simple: int = 4
    lanes_mem: int = 2
    lanes_complex: int = 2
    store_forward_latency: int = 2
    # Predicate machinery (Section V-H).
    pred_prf_size: int = 128
    pred_fl_size: int = 97
    # TAGE-SC-L / BTB handled by frontend objects; oracle mode for perfBP.
    perfect_branch_prediction: bool = False
    # Event-driven idle-cycle skipping in :meth:`Core.run`: when the whole
    # machine is provably quiescent (no issue/dispatch/retire/fetch work
    # possible) the clock jumps to the next scheduled writeback/ifetch-ready
    # event instead of ticking idle cycles one by one.  Cycle-exact with the
    # naive loop (see docs/simulator-internals.md "Performance"); disable to
    # cross-check.
    enable_cycle_skip: bool = True
    # Simulation health (repro.guard).  ``guard_level`` selects the
    # checking depth: "off" (default, ~0% overhead), "commit" (golden-model
    # co-simulation at every main-thread retire), or "full" (commit checks
    # plus a structural invariant sweep every ``guard_check_interval``
    # cycles).  ``watchdog_cycles`` is the no-commit livelock threshold:
    # if that many cycles pass without a main-thread retire the run raises
    # ``SimulationHang`` instead of spinning to ``max_cycles``; 0 disables.
    guard_level: str = "off"
    guard_check_interval: int = 1
    watchdog_cycles: int = 1_000_000
    # Storage-engine selector: True (default) uses the columnar
    # structure-of-arrays core state; False instantiates the pre-refactor
    # object-graph twins from :mod:`repro.core.legacy`.  The two engines
    # are observationally identical (same cycles, SimStats, commit stream)
    # — enforced by the A/B harness (:mod:`repro.harness.abcompare`).
    columnar: bool = True

    def __post_init__(self):
        if self.rob_size % 8:
            raise ValueError("rob_size must be divisible by 8 for partitioning")
        if self.guard_level not in ("off", "commit", "full"):
            raise ValueError(f"guard_level must be off/commit/full, "
                             f"got {self.guard_level!r}")
        if self.guard_check_interval < 1:
            raise ValueError("guard_check_interval must be >= 1")
        if self.watchdog_cycles < 0:
            raise ValueError("watchdog_cycles must be >= 0 (0 disables)")

    @property
    def frontend_latency(self) -> int:
        """Cycles from fetch to rename/dispatch (pipeline depth minus the
        dispatch/issue/execute/writeback/retire backend stages)."""
        return max(1, self.pipeline_stages - 5)

    def scaled(self) -> "CoreConfig":
        """A smaller core for fast unit/integration tests."""
        return replace(self, rob_size=64, prf_size=96, lq_size=24, sq_size=24, iq_size=32)

    def with_window(self, rob: int) -> "CoreConfig":
        """Commensurately resize PRF/LQ/SQ/IQ with the ROB (Fig. 15a sweeps)."""
        scale = Fraction(rob, self.rob_size)
        return replace(
            self,
            rob_size=rob,
            prf_size=int(self.prf_size * scale) // 8 * 8,
            lq_size=max(8, int(self.lq_size * scale) // 8 * 8),
            sq_size=max(8, int(self.sq_size * scale) // 8 * 8),
            iq_size=max(8, int(self.iq_size * scale) // 8 * 8),
        )


# Fractions from Table I.  Keys are thread roles.
_PARTITIONS: Dict[str, Dict[str, Fraction]] = {
    "MT_ONLY": {"MT": Fraction(1)},
    "MT_ITO": {"MT": Fraction(1, 2), "ITO": Fraction(1, 2)},
    "MT_OT_IT": {"MT": Fraction(1, 2), "OT": Fraction(1, 8), "IT": Fraction(3, 8)},
}


@dataclass
class PartitionShare:
    """Resolved per-thread resource allocation."""

    fetch_width: int
    dispatch_width: int
    retire_width: int
    rob: int
    prf_quota: int
    lq: int
    sq: int


class PartitionPlan:
    """Resolves Table I fractions against a :class:`CoreConfig`.

    ``mode`` is one of ``MT_ONLY``, ``MT_ITO``, ``MT_OT_IT``.  Width shares
    are rounded to at least 1; capacity shares use exact fractions (the
    paper sizes the ROB divisible by 8 precisely so these are integral).
    """

    def __init__(self, config: CoreConfig, mode: str = "MT_ONLY"):
        if mode not in _PARTITIONS:
            raise ValueError(f"unknown partition mode {mode!r}")
        self.config = config
        self.mode = mode
        self.fractions = _PARTITIONS[mode]

    def share(self, role: str) -> PartitionShare:
        frac = self.fractions.get(role)
        if frac is None:
            raise ValueError(f"role {role!r} not active in mode {self.mode}")
        cfg = self.config

        def width(total: int) -> int:
            return max(1, int(total * frac))

        def capacity(total: int) -> int:
            return max(1, int(total * frac))

        return PartitionShare(
            fetch_width=width(cfg.fetch_width),
            dispatch_width=width(cfg.dispatch_width),
            retire_width=width(cfg.retire_width),
            rob=capacity(cfg.rob_size),
            prf_quota=capacity(cfg.prf_size),
            lq=capacity(cfg.lq_size),
            sq=capacity(cfg.sq_size),
        )

    def roles(self):
        return list(self.fractions)
