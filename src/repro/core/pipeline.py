"""The out-of-order pipeline.

Stage order within :meth:`Core.tick` is writeback -> retire -> issue ->
dispatch -> fetch, which lets a dependent instruction issue the cycle its
producer writes back while keeping each stage's inputs one cycle old.

Recovery model: branch mispredictions squash younger same-thread uops and
restore the rename map by walking the ROB from the tail (per-uop previous
mappings).  Load-order violations squash from the offending load inclusive.
Predictor global history, the return-address stack, and the pre-execution
engine's speculative pointers (Phelps ``spec_head``) are restored from
per-uop checkpoints taken at fetch (paper Section IV-B).
"""

import time
from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

from operator import attrgetter

from repro.frontend import (
    BranchTargetBuffer,
    IndirectTargetPredictor,
    ReturnAddressStack,
    TageSCL,
)
from repro.isa.executor import ArchState
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.semantics import mem_effective_address
from repro.memory import MemoryConfig, MemoryHierarchy
from repro.utils.bits import to_i64

from repro.core.config import CoreConfig, PartitionPlan
from repro.core.engine_api import NullEngine, PreExecutionEngine
from repro.core.freelist import SharedPhysPool
from repro.core.regfile import PhysRegFile, PredRegFile, PRED_ALWAYS, ZERO_REG
from repro.core.rename import RenameMapTable
from repro.core.stats import SimStats
from repro.core.thread import MainFetchUnit, ThreadContext, ThreadKind
from repro.core.uop import Uop, UopState

# Age-ordered issue priority: oldest fetch, then thread id, then sequence.
_ISSUE_ORDER = attrgetter("fetch_cycle", "thread_id", "seq")

# Heartbeat cadence: consult the wall clock once per this many simulated
# cycles (the pure-Python core sustains ~5-20k cycles/sec, so 256 cycles
# is tens of milliseconds — far finer than any sane heartbeat interval).
_HB_STRIDE = 256


class Core:
    """One simulated superscalar core plus its memory hierarchy."""

    def __init__(
        self,
        program: Program,
        config: Optional[CoreConfig] = None,
        mem_config: Optional[MemoryConfig] = None,
        predictor=None,
        engine: Optional[PreExecutionEngine] = None,
        obs=None,
    ):
        self.program = program
        self.config = config or CoreConfig()
        cfg = self.config
        self.cycle = 0
        self.halted = False
        # Frontend depth is a config @property; cache it as a plain int for
        # the per-cycle fetch/dispatch paths (pipeline_stages never changes
        # after construction).
        self._fe_depth = cfg.frontend_latency

        # Storage engine: columnar structure-of-arrays state (default) or
        # the pre-refactor object-graph twins (A/B equivalence baseline).
        if cfg.columnar:
            prf_cls, pred_prf_cls = PhysRegFile, PredRegFile
            pool_cls, btb_cls = SharedPhysPool, BranchTargetBuffer
            self._rename_cls = RenameMapTable
        else:
            from repro.core.legacy import (
                LegacyBranchTargetBuffer,
                LegacyPhysRegFile,
                LegacyPredRegFile,
                LegacyRenameMapTable,
                LegacySharedPhysPool,
            )

            prf_cls, pred_prf_cls = LegacyPhysRegFile, LegacyPredRegFile
            pool_cls, btb_cls = LegacySharedPhysPool, LegacyBranchTargetBuffer
            self._rename_cls = LegacyRenameMapTable

        self.prf = prf_cls(cfg.prf_size)
        self.pred_prf = pred_prf_cls(cfg.pred_prf_size)
        self.pool = pool_cls(cfg.prf_size, reserved=1)
        self.pred_pool = pool_cls(cfg.pred_prf_size, reserved=1)

        self.hierarchy = MemoryHierarchy(mem_config, columnar=cfg.columnar)
        # Committed architectural memory (main-thread retired stores only).
        self.mem: Dict[int, int] = {a: to_i64(v) for a, v in program.data.items()}

        self.predictor = predictor if predictor is not None else TageSCL()
        self.btb = btb_cls()
        self.ras = ReturnAddressStack()
        self.indirect = IndirectTargetPredictor()

        # Execute-stage dispatch table, indexed by ``Instruction.exec_kind``
        # (see repro.isa.opcodes.DECODE); K_NONE uops never reach execute.
        self._exec_handlers = (
            self._exec_alu_ri,   # K_ALU_RI
            self._exec_alu_rr,   # K_ALU_RR
            self._exec_load,     # K_LOAD
            self._exec_store,    # K_STORE
            self._exec_cbr,      # K_CBR
            self._exec_pred,     # K_PRED
            self._exec_jal,      # K_JAL
            self._exec_jalr,     # K_JALR
            self._exec_mov,      # K_MOV
        )

        self.oracle: Optional[ArchState] = None
        if cfg.perfect_branch_prediction:
            self.oracle = ArchState(program, undo=True)

        # Thread contexts.  The main thread always exists; helper contexts
        # are added/removed by the engine across full squashes.
        self.plan = PartitionPlan(cfg, "MT_ONLY")
        self.main = ThreadContext(0, ThreadKind.MAIN, MainFetchUnit(program),
                                  self.plan.share("MT"),
                                  rename_cls=self._rename_cls)
        self.main.read_value = self._read_committed
        self.main.commit_store = self._commit_store_main
        self.main.resume_pc = program.entry
        self.threads: List[ThreadContext] = [self.main]
        self._next_thread_id = 1
        # Stable iteration snapshot + id lookup table.  The thread set only
        # changes at engine activate/terminate boundaries, so the per-cycle
        # stage loops iterate this tuple instead of copying ``threads``
        # every cycle; an in-progress iteration over the old tuple is
        # unaffected when a rebuild swaps in a new one.
        self._thread_tuple: Tuple[ThreadContext, ...] = ()
        self._thread_by_id: Dict[int, ThreadContext] = {}
        self._rebuild_thread_snapshot()
        self._tick_work = False
        # Idle-skip negative-result latch: set when a quiescence walk (or
        # an engine veto) yields no skip, cleared the next time any stage
        # does real work.  Purely a wall-clock optimization — whether a
        # quiescent stretch is skipped or naively ticked is architecturally
        # identical — but it stops the walk from running (and failing)
        # every idle cycle of a long stall.
        self._skip_latched = False

        # Shared backend structures.
        self.iq_count = 0
        self.ready_q: List[Uop] = []
        self.wb_events: Dict[int, List[Uop]] = defaultdict(list)

        self.stats = SimStats()

        # Observability hub (repro.obs.Observability) or None.  Must be in
        # place before the engine attaches so engines can register their
        # metric providers; the hub's own core wrappers (profiler,
        # pipeline tracer) install after, so they see the final methods.
        self.obs = obs

        self.engine = engine or NullEngine()
        self.engine.attach(self)

        # Simulation health guard (repro.guard).  Imported lazily so the
        # guard package (which imports core modules) never participates in
        # this module's import and the disabled path stays import-free.
        # ``_sanitizer`` is the tick-loop handle: non-None only at
        # guard_level="full", so "off"/"commit" runs pay nothing per cycle.
        self.guard = None
        self._sanitizer = None
        if cfg.guard_level != "off":
            from repro.guard.checker import SimGuard

            self.guard = SimGuard(self)
            if cfg.guard_level == "full":
                self._sanitizer = self.guard
            if obs is not None:
                obs.registry.register_provider("guard", self.guard.metrics)
        if obs is not None:
            obs.attach_core(self)

    # ------------------------------------------------------------------
    # Checkpoint boot (sampled simulation).
    # ------------------------------------------------------------------
    def boot_state(self, regs, mem, pc: int) -> None:
        """Adopt mid-program architectural state before the first cycle.

        Used by sampled simulation: a functional fast-forward snapshots
        registers/memory/pc at a region start and the core begins
        cycle-accurate simulation there.  Non-zero architectural registers
        get a physical register (value written, ready) mapped in both the
        speculative RMT and the committed AMT; the committed memory image
        is replaced wholesale.  Must be called on a fresh core (cycle 0,
        empty pipeline).
        """
        if self.cycle != 0 or self.main.rob or self.main.frontend_q:
            raise RuntimeError("boot_state requires a fresh core")
        self.mem = {a & ~7: to_i64(v) for a, v in mem.items()}
        for idx in range(1, min(len(regs), self.main.rmt.num_logical)):
            value = to_i64(regs[idx])
            if value == 0:
                continue  # logical reg still maps to the constant zero
            phys = self.pool.allocate(self.main.id, self.main.share.prf_quota)
            if phys is None:
                raise RuntimeError("physical register pool exhausted at boot")
            self.prf.write(phys, value)
            self.main.rmt.map[idx] = phys
            self.main.amt.map[idx] = phys
        self.main.fetch.redirect(pc)
        self.main.resume_pc = pc
        if self.oracle is not None:
            self.oracle.restore_snapshot({
                "regs": list(regs), "mem": dict(mem), "pc": pc,
                "halted": False, "retired": 0,
            })
        if self.guard is not None:
            self.guard.boot(regs, mem, pc)

    # ------------------------------------------------------------------
    # Mid-run snapshot/resume (repro.core.snapshot).
    # ------------------------------------------------------------------
    def _drain_for_snapshot(self) -> None:
        """Bring the machine to a snapshot-safe drained commit boundary.

        The engine first ends any active deployment through its own
        termination path, then a full squash empties every queue.  The
        perfect-branch-prediction oracle is rewound to the oldest squashed
        uop's pre-fetch mark — ``full_squash`` restores the predictor /
        RAS / engine from per-uop checkpoints but deliberately leaves the
        oracle, because engine-driven squashes refetch the same PC; a
        drain instead needs the oracle exactly at the resume PC.
        """
        oldest_mark = None
        if self.oracle is not None:
            oldest = None
            for _, u in self.main.frontend_q:
                if oldest is None or u.seq < oldest.seq:
                    oldest = u
            if self.main.rob:
                head = self.main.rob[0]
                if oldest is None or head.seq < oldest.seq:
                    oldest = head
            if oldest is not None:
                oldest_mark = oldest.oracle_mark
        self.engine.quiesce()
        self.full_squash()
        if self.oracle is not None and oldest_mark is not None:
            self.oracle.undo.rewind(self.oracle, oldest_mark)
        self.wb_events.clear()
        self.ready_q.clear()
        self._skip_latched = False
        for thread in self.threads:
            thread.blocked_loads = []
            thread.fetch_stalled_until = 0

    def snapshot(self) -> bytes:
        """Drain the pipeline and serialize the core's state (a blob for
        :class:`~repro.core.snapshot.SnapshotStore`)."""
        from repro.core.snapshot import take_snapshot

        self._drain_for_snapshot()
        return take_snapshot(self)

    def restore(self, state) -> None:
        """Adopt a deserialized snapshot on this (fresh) core."""
        from repro.core.snapshot import restore_into

        restore_into(self, state)

    # ------------------------------------------------------------------
    # Memory plumbing.
    # ------------------------------------------------------------------
    def _read_committed(self, addr: int) -> int:
        return self.mem.get(addr & ~7, 0)

    def _commit_store_main(self, addr: int, value: int) -> None:
        self.mem[addr & ~7] = value

    # ------------------------------------------------------------------
    # Thread/partition management (engine-driven, across full squashes).
    # ------------------------------------------------------------------
    def _rebuild_thread_snapshot(self) -> None:
        self._thread_tuple = tuple(self.threads)
        self._thread_by_id = {t.id: t for t in self.threads}

    def set_partition_mode(self, mode: str) -> None:
        """Re-partition frontend width and resources (Table I).

        Must be called with an empty pipeline (after :meth:`full_squash`).
        """
        self.plan = PartitionPlan(self.config, mode)
        self.main.share = self.plan.share("MT")
        self.main.lq.capacity = self.main.share.lq
        self.main.sq.capacity = self.main.share.sq

    def add_helper_thread(self, kind: ThreadKind, fetch_unit, role: str) -> ThreadContext:
        share = self.plan.share(role)
        ctx = ThreadContext(self._next_thread_id, kind, fetch_unit, share,
                            rename_cls=self._rename_cls)
        self._next_thread_id += 1
        ctx.read_value = self._read_committed  # engine typically overrides
        ctx.commit_store = lambda addr, value: None
        ctx.resume_pc = 0
        self.threads.append(ctx)
        self._rebuild_thread_snapshot()
        return ctx

    def remove_helper_threads(self) -> None:
        """Drop all helper contexts (their uops must already be squashed)."""
        for ctx in self.threads[1:]:
            # Release any physical registers the helper still holds
            # (committed live-in mappings).
            for table, pool in ((ctx.rmt, self.pool), (ctx.pred_rmt, self.pred_pool)):
                for phys in set(table.mapped_physical()):
                    pool.release(ctx.id, phys)
                table.restore([0] * table.num_logical)
        self.threads = [self.main]
        self._rebuild_thread_snapshot()

    def full_squash(self) -> None:
        """Squash every unretired instruction in every thread (helper-thread
        trigger/termination, Section V-F/V-G)."""
        self.stats.full_squashes += 1
        if self.obs is not None:
            self.obs.events.full_squash(self.cycle)
        # Restore MT speculative state from the oldest squashed MT uop.
        oldest = None
        for _, u in self.main.frontend_q:
            if oldest is None or u.seq < oldest.seq:
                oldest = u
        if self.main.rob:
            head = self.main.rob[0]
            if oldest is None or head.seq < oldest.seq:
                oldest = head
        for thread in self.threads:
            if thread.rob:
                self._squash_thread(thread, thread.rob[0].seq)
            else:
                self._squash_thread(thread, 0)
        if oldest is not None:
            self._restore_speculative_state(self.main, oldest)
        self.main.fetch.redirect(self.main.resume_pc)
        self.main.fetch_halted = False
        self.main.wait_for_moves = False

    # ------------------------------------------------------------------
    # Squash machinery.
    # ------------------------------------------------------------------
    def _restore_speculative_state(self, thread: ThreadContext, uop: Uop) -> None:
        """Restore predictor/RAS/engine state to just before ``uop`` fetched."""
        if thread.kind is not ThreadKind.MAIN:
            return
        if uop.predictor_checkpoint is not None:
            self.predictor.restore(uop.predictor_checkpoint)
        if uop.ras_checkpoint is not None:
            self.ras.restore(uop.ras_checkpoint)
        if uop.engine_checkpoint is not None:
            self.engine.restore(uop.engine_checkpoint)

    def _squash_thread(self, thread: ThreadContext, cutoff_seq: int) -> List[Uop]:
        """Squash all uops with seq >= cutoff in ``thread``; returns them."""
        squashed: List[Uop] = []
        kept_fq = deque()
        for ready_cycle, u in thread.frontend_q:
            if u.seq >= cutoff_seq:
                u.state = UopState.SQUASHED
                squashed.append(u)
            else:
                kept_fq.append((ready_cycle, u))
        thread.frontend_q = kept_fq

        while thread.rob and thread.rob[-1].seq >= cutoff_seq:
            u = thread.rob.pop()
            if u.state is UopState.DISPATCHED:
                self.iq_count -= 1
            # Undo rename (reverse order restores earlier mappings correctly).
            if u.phys_dest is not None:
                thread.rmt.map[u.inst.dest_reg] = u.old_phys_dest
                self.pool.release(thread.id, u.phys_dest)
            if u.pred_phys_dest is not None:
                thread.pred_rmt.map[u.inst.pred_rd] = u.old_pred_phys_dest
                self.pred_pool.release(thread.id, u.pred_phys_dest)
            if u.inst.is_load:
                thread.lq.remove(u)
            elif u.inst.is_store:
                thread.sq.remove(u)
            u.state = UopState.SQUASHED
            squashed.append(u)
            self.engine.on_squash(thread, u)
        return squashed

    def _recover_to(self, thread: ThreadContext, uop: Uop, refetch_pc: int,
                    inclusive: bool) -> None:
        """Branch-mispredict (exclusive) or load-violation (inclusive) recovery."""
        cutoff = uop.seq if inclusive else uop.seq + 1
        self._squash_thread(thread, cutoff)
        if thread.kind is ThreadKind.MAIN:
            if inclusive:
                self._restore_speculative_state(thread, uop)
            else:
                # State just after the branch: its pre-fetch checkpoint plus
                # the actual outcome.
                self._restore_speculative_state(thread, uop)
                if uop.inst.is_cond_branch:
                    self.predictor.spec_update(uop.pc, bool(uop.taken))
                    self.engine.note_refetched(thread, uop)
                elif uop.inst.opcode is Opcode.JAL and uop.inst.rd == 1:
                    self.ras.push(uop.pc + 4)
                elif uop.inst.opcode is Opcode.JALR and uop.inst.rd == 0 and uop.inst.rs1 == 1:
                    self.ras.pop()
            if self.oracle is not None:
                mark = uop.oracle_mark if inclusive else uop.oracle_mark_after
                if mark is not None:
                    self.oracle.undo.rewind(self.oracle, mark)
        thread.fetch.redirect(refetch_pc)
        thread.fetch_halted = False

    # ------------------------------------------------------------------
    # Fetch.
    # ------------------------------------------------------------------
    def _fetch_thread(self, thread: ThreadContext) -> None:
        if thread.fetch_halted or thread.wait_for_moves:
            return
        cycle = self.cycle
        if cycle < thread.fetch_stalled_until:
            return
        fq = thread.frontend_q
        width = thread.share.fetch_width
        # Bounded frontend buffer: width * frontend depth.
        if len(fq) >= width * (self._fe_depth + 1):
            return

        if thread.kind is ThreadKind.MAIN:
            inst0 = thread.fetch.peek()
            if inst0 is not None:
                ready = self.hierarchy.ifetch(inst0.pc, cycle)
                if ready > cycle + 1:
                    thread.fetch_stalled_until = ready
                    return

        # ``thread.fetch`` is looked up per iteration on purpose: the
        # engine's ``note_fetched`` hook may retarget the helper's fetch
        # unit mid-group.
        predict = self._predict
        note_fetched = self.engine.note_fetched
        alloc_seq = thread.alloc_seq
        tid = thread.id
        ready_at = cycle + self._fe_depth
        fetched = 0
        while fetched < width:
            fetch = thread.fetch
            inst = fetch.peek()
            if inst is None:
                break
            uop = Uop(inst, tid, alloc_seq(), cycle)
            fetch.annotate_uop(uop)
            taken, target = predict(thread, uop)
            fq.append((ready_at, uop))
            note_fetched(thread, uop)
            thread.fetch.advance(taken, target)
            fetched += 1
            if inst.opcode is Opcode.HALT:
                thread.fetch_halted = True
                break
            if taken:
                break
        if fetched:
            self._tick_work = True  # fetch group ends at a predicted-taken transfer

    def _predict(self, thread: ThreadContext, uop: Uop) -> Tuple[bool, Optional[int]]:
        """Next-PC selection; records prediction state on the uop."""
        inst = uop.inst
        is_main = thread.kind is ThreadKind.MAIN

        if is_main:
            uop.predictor_checkpoint = self.predictor.checkpoint()
            uop.ras_checkpoint = self.ras.checkpoint()
            uop.engine_checkpoint = self.engine.checkpoint()
            if self.oracle is not None:
                uop.oracle_mark = self.oracle.undo.mark()
                if not self.oracle.halted:
                    uop.oracle_outcome = self.oracle.step()
                uop.oracle_mark_after = self.oracle.undo.mark()

        if not inst.is_branch:
            # Non-transfer instruction: never redirects fetch.  (PRED uops
            # compute a predicate at execute but do not steer the frontend.)
            uop.pred_taken, uop.pred_target = False, None
            return False, None

        taken, target = False, None
        if inst.is_cond_branch:
            if is_main:
                if self.oracle is not None:
                    taken = bool(uop.oracle_outcome.taken) if uop.oracle_outcome else False
                else:
                    override = self.engine.fetch_override(thread, inst)
                    if override is not None:
                        taken, uop.queue_token = override
                    else:
                        meta = self.predictor.predict(inst.pc)
                        uop.predictor_meta = meta
                        taken = meta.taken
                self.predictor.spec_update(inst.pc, taken)
            else:
                # Helper threads: the fetch unit supplies the prediction
                # (always-taken loop wrap for Phelps; bimodal for Branch
                # Runahead chains).
                taken = thread.fetch.predict_branch(inst)
            target = inst.imm
        elif inst.opcode is Opcode.JAL:
            taken, target = True, inst.imm
            if is_main and inst.rd == 1:
                self.ras.push(inst.pc + 4)
        elif inst.opcode is Opcode.JALR:
            taken = True
            if self.oracle is not None and is_main and uop.oracle_outcome is not None:
                target = uop.oracle_outcome.next_pc
                if inst.rd == 0 and inst.rs1 == 1:
                    self.ras.pop()
            elif is_main and inst.rd == 0 and inst.rs1 == 1:
                target = self.ras.pop()
            else:
                target = self.indirect.predict(inst.pc)
            if target is None:
                target = inst.pc + 4  # will mispredict and repair at execute
        uop.pred_taken, uop.pred_target = taken, target
        return taken, target

    # ------------------------------------------------------------------
    # Dispatch (rename + queue insertion).
    # ------------------------------------------------------------------
    def _dispatch_thread(self, thread: ThreadContext) -> None:
        fq = thread.frontend_q
        if not fq:
            return
        cfg = self.config
        cycle = self.cycle
        iq_size = cfg.iq_size
        pred_quota = cfg.pred_fl_size // 2
        tid = thread.id
        prf_quota = thread.share.prf_quota
        pool = self.pool
        pred_pool = self.pred_pool
        prf = self.prf
        pred_prf = self.pred_prf
        prf_ready = prf.ready
        rob = thread.rob
        rob_cap = thread.share.rob
        lq, sq = thread.lq, thread.sq
        # ``map`` rebinds only at squash-recovery / helper-teardown
        # boundaries, never inside a dispatch group, so one load suffices.
        rmt_map = thread.rmt.map
        dispatched_state = UopState.DISPATCHED
        done_state = UopState.DONE
        for _ in range(thread.share.dispatch_width):
            if not fq:
                return
            ready_cycle, uop = fq[0]
            if ready_cycle > cycle or uop.squashed:
                if uop.squashed:
                    fq.popleft()
                    continue
                return
            inst = uop.inst
            needs_iq = inst.needs_iq
            if len(rob) >= rob_cap:
                return
            if needs_iq and self.iq_count >= iq_size:
                return
            is_load = inst.is_load
            is_store = inst.is_store
            if is_load and lq.full():
                return
            if is_store and sq.full():
                return
            dest = inst.dest_reg
            if dest is not None and not pool.can_allocate(tid, prf_quota):
                return
            if inst.is_pred_producer and not pred_pool.can_allocate(
                    tid, pred_quota):
                return

            fq.popleft()
            self._tick_work = True

            # Source rename: direct reads on the rename-map column.
            if inst.opcode is Opcode.MOV_LIVEIN:
                if uop.livein_value is None:
                    # Live-in copy from the *main thread's* rename map.
                    uop.phys_srcs = [self.main.rmt.map[inst.rs1]]
                else:
                    uop.phys_srcs = []
            else:
                uop.phys_srcs = [rmt_map[s] for s in inst.src_regs]
            if inst.pred_rs is not None:
                uop.pred_phys_src = thread.pred_rmt.map[inst.pred_rs]
            if inst.pred_rs2 is not None:
                uop.pred_phys_src2 = thread.pred_rmt.map[inst.pred_rs2]

            # Destination rename.
            if dest is not None:
                phys = pool.allocate(tid, prf_quota)
                uop.old_phys_dest = thread.rmt.set(dest, phys)
                uop.phys_dest = phys
                prf.mark_not_ready(phys)
            if inst.is_pred_producer:
                pphys = pred_pool.allocate(tid, pred_quota)
                uop.old_pred_phys_dest = thread.pred_rmt.set(inst.pred_rd, pphys)
                uop.pred_phys_dest = pphys
                pred_prf.mark_not_ready(pphys)

            rob.append(uop)
            if is_load:
                lq.insert(uop)
            elif is_store:
                sq.insert(uop)

            if not needs_iq:
                uop.state = done_state
                continue

            uop.state = dispatched_state
            self.iq_count += 1
            pending = 0
            for phys in uop.phys_srcs:
                # Ready-column test first: ``subscribe`` only does work
                # for not-yet-ready producers.
                if not prf_ready[phys] and prf.subscribe(phys, uop):
                    pending += 1
            if uop.pred_phys_src is not None:
                if pred_prf.subscribe(uop.pred_phys_src, uop):
                    pending += 1
            if uop.pred_phys_src2 is not None:
                if pred_prf.subscribe(uop.pred_phys_src2, uop):
                    pending += 1
            uop.pending = pending
            if pending == 0:
                self.ready_q.append(uop)

    # ------------------------------------------------------------------
    # Issue + execute.
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        # Retry previously blocked helper loads first (oldest first).
        candidates = None
        for thread in self._thread_tuple:
            if thread.blocked_loads:
                if candidates is None:
                    candidates = []
                candidates.extend(thread.blocked_loads)
                thread.blocked_loads = []
        if candidates is None:
            candidates = self.ready_q
            if not candidates:
                return  # nothing issuable this cycle
        else:
            candidates.extend(self.ready_q)
        self.ready_q = []

        cfg = self.config
        # Lane budget column, indexed by ``Instruction.lane_id``
        # (LANE_SIMPLE/LANE_MEM/LANE_COMPLEX/LANE_NONE).
        lanes = [cfg.lanes_simple, cfg.lanes_mem, cfg.lanes_complex, 0]
        budget = cfg.issue_width
        dispatched = UopState.DISPATCHED
        candidates = [u for u in candidates if u.state is dispatched]
        candidates.sort(key=_ISSUE_ORDER)

        thread_by_id = self._thread_by_id
        execute = self._execute
        leftover = []
        for uop in candidates:
            if uop.state is not dispatched:
                continue  # squashed by a recovery triggered earlier this cycle
            if budget <= 0:
                leftover.append(uop)
                continue
            lane_id = uop.inst.lane_id
            if lanes[lane_id] <= 0:
                leftover.append(uop)
                continue
            thread = thread_by_id[uop.thread_id]
            if uop.inst.is_load and not self._load_may_issue(thread, uop):
                thread.blocked_loads.append(uop)
                continue
            lanes[lane_id] -= 1
            budget -= 1
            execute(thread, uop)
        self.ready_q.extend(leftover)

    def _thread(self, thread_id: int) -> ThreadContext:
        return self._thread_by_id[thread_id]

    def _load_may_issue(self, thread: ThreadContext, uop: Uop) -> bool:
        """Loads issue speculatively; memory-order violations are detected
        when the conflicting store resolves (main and helper threads alike —
        the paper's helper threads are rollback-free *except* for load
        violations)."""
        return True

    def _execute(self, thread: ThreadContext, uop: Uop) -> None:
        """Execute-stage entry point: dispatch on the instruction's
        precomputed integer ``exec_kind`` instead of an opcode if-chain.
        Stays a method (rather than inlining the table walk into
        :meth:`_issue`) so the profiler/tracer wrappers keep a single
        interception point."""
        uop.state = UopState.ISSUED
        self._tick_work = True
        self.iq_count -= 1
        self._exec_handlers[uop.inst.exec_kind](thread, uop)

    def _exec_alu_ri(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        srcs = uop.phys_srcs
        a = self.prf.value[srcs[0]] if srcs else 0  # LI has no sources
        uop.result = inst.alu_fn(a, inst.imm)
        self._schedule_wb(uop, self.cycle + inst.latency)

    def _exec_alu_rr(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        value = self.prf.value
        srcs = uop.phys_srcs
        uop.result = inst.alu_fn(value[srcs[0]], value[srcs[1]])
        self._schedule_wb(uop, self.cycle + inst.latency)

    def _exec_load(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        base = self.prf.value[uop.phys_srcs[0]]
        addr = mem_effective_address(base, inst.imm)
        uop.mem_addr = addr
        fwd = thread.sq.forward_source(uop.seq, addr)
        if fwd is not None:
            uop.result = fwd.store_value
            uop.forward_seq = fwd.seq
            done = self.cycle + self.config.store_forward_latency
        else:
            spec_value = (thread.spec_cache.read(addr)
                          if thread.spec_cache is not None else None)
            if spec_value is not None:
                # Helper-thread hit in the tiny speculative D$ (IV-A).
                uop.result = to_i64(spec_value)
                done = self.cycle + self.config.store_forward_latency + 1
            else:
                uop.result = to_i64(thread.read_value(addr))
                done = self.hierarchy.load(inst.pc, addr, self.cycle)
        self._schedule_wb(uop, done)

    def _exec_store(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        value = self.prf.value
        srcs = uop.phys_srcs
        base = value[srcs[0]]
        addr = mem_effective_address(base, inst.imm)
        uop.mem_addr = addr
        uop.store_value = value[srcs[1]]
        if uop.pred_phys_src is not None:
            uop.pred_enabled = self._pred_enabled(uop)
        victim = thread.lq.find_violation(uop)
        if victim is not None:
            thread.load_violations += 1
            self._recover_to(thread, victim, victim.pc, inclusive=True)
        self._schedule_wb(uop, self.cycle + 1)

    def _exec_cbr(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        value = self.prf.value
        srcs = uop.phys_srcs
        uop.taken = inst.branch_fn(value[srcs[0]], value[srcs[1]])
        uop.actual_target = inst.imm if uop.taken else inst.pc + 4
        self._schedule_wb(uop, self.cycle + 1)

    def _exec_pred(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        value = self.prf.value
        srcs = uop.phys_srcs
        uop.taken = inst.branch_fn(value[srcs[0]], value[srcs[1]])
        uop.pred_enabled = self._pred_enabled(uop)
        self._schedule_wb(uop, self.cycle + 1)

    def _exec_jal(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        uop.result = inst.pc + 4
        uop.taken = True
        uop.actual_target = inst.imm
        self._schedule_wb(uop, self.cycle + 1)

    def _exec_jalr(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        base = self.prf.value[uop.phys_srcs[0]]
        uop.result = inst.pc + 4
        uop.taken = True
        uop.actual_target = (base + inst.imm) & ~1
        self._schedule_wb(uop, self.cycle + 1)

    def _exec_mov(self, thread: ThreadContext, uop: Uop) -> None:
        if uop.livein_value is not None:
            uop.result = to_i64(uop.livein_value)
        else:
            uop.result = self.prf.value[uop.phys_srcs[0]]
        self._schedule_wb(uop, self.cycle + 1)

    def _pred_enabled(self, uop: Uop) -> bool:
        """Predication rule (Section V-H), with the optional second source
        ORed in (Section V-K OR-guarding)."""
        inst = uop.inst
        if uop.pred_phys_src is None:
            return True
        enabled = self.pred_prf.consumer_enabled(uop.pred_phys_src,
                                                 bool(inst.pred_dir))
        if uop.pred_phys_src2 is not None:
            enabled = enabled or self.pred_prf.consumer_enabled(
                uop.pred_phys_src2, bool(inst.pred_dir2))
        return enabled

    def _schedule_wb(self, uop: Uop, done_cycle: int) -> None:
        uop.ready_cycle = max(done_cycle, self.cycle + 1)
        self.wb_events[uop.ready_cycle].append(uop)

    # ------------------------------------------------------------------
    # Writeback.
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        events = self.wb_events.pop(self.cycle, None)
        if not events:
            return
        self._tick_work = True
        for uop in events:
            if uop.state is not UopState.ISSUED:
                continue  # squashed after issue
            thread = self._thread(uop.thread_id)
            uop.state = UopState.DONE
            if uop.phys_dest is not None:
                for waiter in self.prf.write(uop.phys_dest, uop.result):
                    self._wake(waiter)
            if uop.pred_phys_dest is not None:
                for waiter in self.pred_prf.write_pred(
                        uop.pred_phys_dest, bool(uop.pred_enabled), bool(uop.taken)):
                    self._wake(waiter)
            if uop.inst.is_branch:
                self._resolve_branch(thread, uop)
            elif uop.inst.is_store and thread.kind is not ThreadKind.MAIN:
                # Helper-thread loads wait on older store addresses; now that
                # this store resolved, blocked loads may proceed next cycle.
                pass

    def _wake(self, uop: Uop) -> None:
        if uop.state is not UopState.DISPATCHED:
            return
        uop.pending -= 1
        if uop.pending <= 0:
            self.ready_q.append(uop)

    def _resolve_branch(self, thread: ThreadContext, uop: Uop) -> None:
        mispredicted = (bool(uop.pred_taken) != bool(uop.taken)
                        or (uop.taken and uop.pred_target != uop.actual_target))
        uop.mispredicted = bool(uop.inst.is_cond_branch and
                                bool(uop.pred_taken) != bool(uop.taken))
        if not mispredicted:
            return
        if thread.kind is ThreadKind.MAIN:
            refetch = uop.actual_target if uop.taken else uop.pc + 4
            self._recover_to(thread, uop, refetch, inclusive=False)
        else:
            # Helper-thread branch resolved against its fetch-time
            # prediction: squash the wrongly-fetched-ahead instructions and
            # let the engine redirect the helper's fetch unit (loop wrap /
            # next visit for Phelps; bimodal-mispredict repair for Branch
            # Runahead chains).
            self._squash_thread(thread, uop.seq + 1)
            self.engine.on_helper_branch_mispredicted(thread, uop)

    # ------------------------------------------------------------------
    # Retire.
    # ------------------------------------------------------------------
    def _retire(self) -> None:
        for thread in self._thread_tuple:
            count = 0
            while thread.rob and count < thread.share.retire_width:
                uop = thread.rob[0]
                if uop.state is not UopState.DONE:
                    break
                if self.engine.retire_blocked(thread, uop):
                    break
                thread.rob.popleft()
                self._retire_uop(thread, uop)
                count += 1
                if self.halted:
                    return

    def _retire_uop(self, thread: ThreadContext, uop: Uop) -> None:
        self._tick_work = True
        inst = uop.inst
        uop.state = UopState.RETIRED
        thread.retired += 1
        is_main = thread.kind is ThreadKind.MAIN
        if not is_main:
            self.stats.helper_retired += 1
        elif self.guard is not None:
            # Golden-model co-simulation: replay this commit on the
            # in-order executor and compare before architectural effects
            # land (raises DivergenceError on first disagreement).
            self.guard.on_retire(thread, uop)

        if inst.is_store:
            thread.sq.remove(uop)
            if uop.pred_enabled is not False:
                thread.commit_store(uop.mem_addr, uop.store_value)
                if is_main:
                    self.hierarchy.store(inst.pc, uop.mem_addr, self.cycle)
                thread.retired_stores += 1
            elif not is_main:
                self.stats.helper_stores_suppressed += 1
        elif inst.is_load:
            thread.lq.remove(uop)
        elif inst.is_cond_branch:
            thread.retired_branches += 1
            if uop.mispredicted:
                thread.mispredicts += 1
            if is_main:
                if uop.predictor_meta is not None:
                    self.predictor.update(inst.pc, bool(uop.taken), uop.predictor_meta)
                if uop.taken:
                    self.btb.insert(inst.pc, uop.actual_target)
        elif inst.opcode is Opcode.JALR and is_main:
            self.indirect.update(inst.pc, uop.actual_target)
        elif inst.opcode is Opcode.HALT and is_main:
            self.halted = True

        # Committed rename state + physical register reclamation.
        if uop.phys_dest is not None:
            thread.amt.map[inst.dest_reg] = uop.phys_dest
            if uop.old_phys_dest is not None and uop.old_phys_dest != ZERO_REG:
                self.pool.release(thread.id, uop.old_phys_dest)
        if uop.pred_phys_dest is not None:
            if uop.old_pred_phys_dest is not None and uop.old_pred_phys_dest != PRED_ALWAYS:
                self.pred_pool.release(thread.id, uop.old_pred_phys_dest)

        if is_main:
            if inst.is_branch:
                thread.resume_pc = uop.actual_target if uop.taken else inst.pc + 4
            elif inst.opcode is not Opcode.HALT:
                thread.resume_pc = inst.pc + 4

        self.engine.on_retire(thread, uop)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def tick(self) -> None:
        # ``_tick_work`` gates the idle fast path: stages flip it when they
        # do real work, so ``run`` only pays for the quiescence walk on
        # ticks that were architectural no-ops.
        self._tick_work = False
        self._writeback()
        self._retire()
        if self.halted:
            return
        self._issue()
        # ``_thread_tuple`` is a stable snapshot: engine-driven activate /
        # terminate swaps in a *new* tuple, leaving this iteration intact
        # (same semantics as the old per-cycle ``list(self.threads)`` copy
        # without the two allocations per cycle).
        dispatch = self._dispatch_thread
        for thread in self._thread_tuple:
            dispatch(thread)
        fetch = self._fetch_thread
        for thread in self._thread_tuple:
            fetch(thread)
        self.engine.on_cycle(self.cycle)
        if self.obs is not None:
            self.obs.on_cycle(self)
        if self._sanitizer is not None:
            self._sanitizer.on_cycle(self)
        self.cycle += 1

    # ------------------------------------------------------------------
    # Event-driven idle fast path.
    #
    # A tick is an architectural no-op when nothing can write back, retire,
    # issue, dispatch, or fetch this cycle.  All of those only become
    # possible again at a *scheduled* event: a writeback completing
    # (``wb_events``), an I-fetch line arriving (``fetch_stalled_until``),
    # or a frontend-latency expiry (frontend-queue head ready cycle).  When
    # the whole machine is quiescent, jump the clock to the earliest such
    # event instead of ticking through idle cycles.  The engine gets a veto
    # (``idle_skip``) so per-cycle bookkeeping (Phelps watchdog, visit
    # refill) stays cycle-exact.
    # ------------------------------------------------------------------
    def _dispatch_blocked(self, thread: ThreadContext, uop: Uop) -> bool:
        """Mirror of the resource gates at the top of
        :meth:`_dispatch_thread`, side-effect free.  Every one of these
        conditions can only clear at a retire/writeback/squash event, so a
        True answer is stable across skipped idle cycles."""
        inst = uop.inst
        if thread.rob_full():
            return True
        if inst.needs_iq and self.iq_count >= self.config.iq_size:
            return True
        if inst.is_load and thread.lq.full():
            return True
        if inst.is_store and thread.sq.full():
            return True
        if inst.dest_reg is not None and not self.pool.can_allocate(
                thread.id, thread.share.prf_quota):
            return True
        if inst.is_pred_producer and not self.pred_pool.can_allocate(
                thread.id, self.config.pred_fl_size // 2):
            return True
        return False

    def _idle_skip_target(self, horizon: int) -> int:
        """The cycle to jump to when every tick in ``[cycle, target)`` is a
        no-op, or ``self.cycle`` when the machine is not quiescent."""
        cycle = self.cycle
        if self.ready_q or cycle in self.wb_events:
            return cycle
        bound = horizon
        fe_depth = self._fe_depth
        for thread in self._thread_tuple:
            if thread.blocked_loads:
                return cycle
            rob = thread.rob
            if rob and rob[0].state is UopState.DONE:
                return cycle  # a retire is possible right now
            fq = thread.frontend_q
            if fq:
                ready_cycle, head = fq[0]
                if head.squashed:
                    return cycle  # dispatch would pop it
                if ready_cycle > cycle:
                    if ready_cycle < bound:
                        bound = ready_cycle
                elif not self._dispatch_blocked(thread, head):
                    return cycle
            if thread.fetch_halted or thread.wait_for_moves:
                continue  # cleared only by recovery / retire events
            if cycle < thread.fetch_stalled_until:
                if thread.fetch_stalled_until < bound:
                    bound = thread.fetch_stalled_until
            elif (len(fq) < thread.share.fetch_width * (fe_depth + 1)
                  and thread.fetch.peek() is not None):
                return cycle  # could fetch this cycle
        if self.wb_events:
            wb_next = min(self.wb_events)
            if wb_next < bound:
                bound = wb_next
        return bound if bound > cycle else cycle

    def _try_idle_skip(self, horizon: int) -> None:
        stats = self.stats
        stats.skip_walk_cycles += 1
        target = self._idle_skip_target(horizon)
        skip = target - self.cycle
        if skip <= 0:
            # Not quiescent: the walk's verdict cannot change until some
            # stage does real work again, so latch the fast path off
            # instead of re-walking (and re-failing) every idle tick.
            self._skip_latched = True
            return
        skip = self.engine.idle_skip(self.cycle, target)
        if skip > 0:
            self.cycle += skip
            stats.idle_cycles_skipped += skip
            stats.skip_bulk_advances += 1
        else:
            stats.skip_vetoes += 1
            self._skip_latched = True

    def run(self, max_instructions: int = 1_000_000, max_cycles: int = 20_000_000,
            snapshot_interval: int = 0, on_snapshot=None,
            on_heartbeat=None, heartbeat_interval: float = 1.0) -> SimStats:
        """Simulate until HALT retires, ``max_instructions`` main-thread
        instructions retire, or ``max_cycles`` elapse.

        Forward-progress watchdog: if ``config.watchdog_cycles`` (> 0)
        cycles pass without a single main-thread commit, the run raises
        :class:`~repro.guard.errors.SimulationHang` with a diagnostic
        bundle instead of spinning to ``max_cycles``.  The check compares
        the *cycle counter*, so idle-skip jumps (which can leap straight
        to ``max_cycles`` on a quiescent machine) count in full — the fast
        path cannot mask a livelock.

        ``snapshot_interval`` (> 0): every that-many retired main-thread
        instructions the pipeline drains and :meth:`snapshot` runs, with
        the blob handed to ``on_snapshot`` (when given).  The drain
        happens even with ``on_snapshot=None`` so an uninterrupted run and
        a resumed run see identical perturbations — the basis of the
        cycle-exact resume contract (see :mod:`repro.core.snapshot`).

        ``on_heartbeat`` (when given) is called with the core roughly
        every ``heartbeat_interval`` wall-clock seconds.  The callback
        must only *read* core state — it is out-of-band telemetry (live
        progress streaming) and must never perturb the simulation; runs
        with and without heartbeats are bit-identical by construction.
        The wall clock is only consulted every ``_HB_STRIDE`` cycles, so
        the disabled path costs one ``is None`` test per tick.
        """
        fast = self.config.enable_cycle_skip
        tick = self.tick
        main = self.main
        wd = self.config.watchdog_cycles
        wd_retired = main.retired
        wd_mark = self.cycle
        next_snap = None
        if snapshot_interval > 0:
            next_snap = ((main.retired // snapshot_interval) + 1) * snapshot_interval
        hb = on_heartbeat
        if hb is not None:
            hb_last = time.monotonic()
            hb_countdown = _HB_STRIDE
        while (not self.halted and main.retired < max_instructions
               and self.cycle < max_cycles):
            tick()
            if fast and not self._tick_work and not self.halted \
                    and not self.ready_q:
                if not self._skip_latched:
                    self._try_idle_skip(max_cycles)
            elif self._skip_latched and self._tick_work:
                self._skip_latched = False
            if hb is not None:
                hb_countdown -= 1
                if hb_countdown <= 0:
                    hb_countdown = _HB_STRIDE
                    now = time.monotonic()
                    if now - hb_last >= heartbeat_interval:
                        hb_last = now
                        hb(self)
            if wd:
                if main.retired != wd_retired:
                    wd_retired = main.retired
                    wd_mark = self.cycle
                elif self.cycle - wd_mark >= wd and not self.halted:
                    from repro.guard.watchdog import raise_hang

                    raise_hang(self, wd_mark)
            if (next_snap is not None and main.retired >= next_snap
                    and not self.halted and main.retired < max_instructions):
                blob = self.snapshot()
                if on_snapshot is not None:
                    on_snapshot(blob)
                next_snap = ((main.retired // snapshot_interval) + 1) * snapshot_interval
        return self.collect_stats()

    def collect_stats(self) -> SimStats:
        s = self.stats
        s.cycles = self.cycle
        s.retired = self.main.retired
        s.retired_branches = self.main.retired_branches
        s.mispredicts = self.main.mispredicts
        s.load_violations = self.main.load_violations
        s.halted = self.halted
        s.memory = self.hierarchy.stats()
        s.engine = self.engine.stats()
        queue = s.engine.get("br_queue") or s.engine.get("queue")
        if isinstance(queue, dict):
            s.queue_consumed = queue.get("consumed", 0)
            s.queue_consumed_wrong = queue.get("consumed_wrong", 0)
            s.queue_not_timely = queue.get("not_timely", 0)
        if self.obs is not None:
            self.obs.finalize(self)
            s.metrics = self.obs.registry.snapshot()
            s.epochs = self.obs.sampler.to_list()
        return s
