"""Quota-based physical register allocation.

All physical registers live in one shared pool; each thread context has a
quota (its Table I share).  A thread may allocate while it holds fewer
registers than its quota and the pool is non-empty.  Partition changes
happen only across full-pipeline squashes, so transitions are clean.
"""

from typing import List, Optional


class SharedPhysPool:
    def __init__(self, size: int, reserved: int = 1):
        """``reserved`` low registers (the constant zero, pred0) are never allocated."""
        self.size = size
        self.reserved = reserved
        self._free: List[int] = list(range(reserved, size))
        self._held = {}  # thread_id -> count

    def free_count(self) -> int:
        return len(self._free)

    def free_list(self) -> List[int]:
        """Snapshot of the free registers (guard sanitizer introspection)."""
        return list(self._free)

    def held_by(self, thread_id: int) -> int:
        return self._held.get(thread_id, 0)

    def held_total(self) -> int:
        return sum(self._held.values())

    def can_allocate(self, thread_id: int, quota: int) -> bool:
        return bool(self._free) and self.held_by(thread_id) < quota

    def allocate(self, thread_id: int, quota: int) -> Optional[int]:
        if not self.can_allocate(thread_id, quota):
            return None
        reg = self._free.pop()
        self._held[thread_id] = self.held_by(thread_id) + 1
        return reg

    def release(self, thread_id: int, reg: int) -> None:
        self._free.append(reg)
        count = self.held_by(thread_id) - 1
        if count < 0:
            raise RuntimeError(f"thread {thread_id} released more registers than held")
        self._held[thread_id] = count

    def release_all_for(self, thread_id: int, regs) -> None:
        for reg in regs:
            self.release(thread_id, reg)
