"""Quota-based physical register allocation.

All physical registers live in one shared pool; each thread context has a
quota (its Table I share).  A thread may allocate while it holds fewer
registers than its quota and the pool is non-empty.  Partition changes
happen only across full-pipeline squashes, so transitions are clean.

Columnar layout: the free list is one preallocated int column used as a
LIFO stack with a top-of-stack cursor — allocation and release are a
single indexed read/write plus a cursor bump, with no list resizing on the
hot path.  Pop order is identical to the list-backed pre-refactor version
(:class:`repro.core.legacy.LegacySharedPhysPool`), so both engines assign
the same physical names in the same order.
"""

from array import array
from typing import List, Optional


class SharedPhysPool:
    __slots__ = ("size", "reserved", "_stack", "_top", "_held")

    def __init__(self, size: int, reserved: int = 1):
        """``reserved`` low registers (the constant zero, pred0) are never allocated."""
        self.size = size
        self.reserved = reserved
        # Free-register column; entries [0, _top) are free, top of stack last.
        self._stack: List[int] = list(range(reserved, size))
        self._top = size - reserved
        self._held = {}  # thread_id -> count

    def free_count(self) -> int:
        return self._top

    def free_list(self) -> List[int]:
        """Snapshot of the free registers (guard sanitizer introspection)."""
        return self._stack[:self._top]

    def held_by(self, thread_id: int) -> int:
        return self._held.get(thread_id, 0)

    def held_total(self) -> int:
        return sum(self._held.values())

    def can_allocate(self, thread_id: int, quota: int) -> bool:
        return self._top > 0 and self._held.get(thread_id, 0) < quota

    def allocate(self, thread_id: int, quota: int) -> Optional[int]:
        top = self._top
        if top == 0:
            return None
        held = self._held
        count = held.get(thread_id, 0)
        if count >= quota:
            return None
        held[thread_id] = count + 1
        top -= 1
        self._top = top
        return self._stack[top]

    def release(self, thread_id: int, reg: int) -> None:
        count = self._held.get(thread_id, 0) - 1
        if count < 0:
            raise RuntimeError(f"thread {thread_id} released more registers than held")
        self._held[thread_id] = count
        top = self._top
        stack = self._stack
        if top == len(stack):  # over-full only after a foreign release
            stack.append(reg)
        else:
            stack[top] = reg
        self._top = top + 1

    def release_all_for(self, thread_id: int, regs) -> None:
        for reg in regs:
            self.release(thread_id, reg)

    # ------------------------------------------------------------------
    # Compact serialization: only the live prefix of the column, packed.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "size": self.size,
            "reserved": self.reserved,
            "free": array("q", self._stack[:self._top]).tobytes(),
            "held": self._held,
        }

    def __setstate__(self, state):
        self.size = state["size"]
        self.reserved = state["reserved"]
        free = array("q")
        free.frombytes(state["free"])
        self._top = len(free)
        stack = free.tolist()
        # Re-pad the column to full capacity so releases stay in-place.
        stack.extend([0] * (self.size - self.reserved - self._top))
        self._stack = stack
        self._held = state["held"]
