"""Per-thread load and store queues.

The store queue supports store-to-load forwarding (youngest older store
with a matching address) and memory-ordering-violation detection (a store
resolving its address finds a younger load that already executed with the
same address but did not see this store's data).

Helper threads use the store queue's ``all_older_resolved`` check to issue
loads conservatively (rollback-free, per DESIGN.md §6).
"""

from typing import List, Optional, Tuple

from repro.core.uop import Uop


class StoreQueue:
    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: List[Uop] = []  # program order (oldest first)

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, uop: Uop) -> None:
        if self.full():
            raise RuntimeError("store queue overflow (dispatch must check)")
        self.entries.append(uop)

    def remove(self, uop: Uop) -> None:
        try:
            self.entries.remove(uop)
        except ValueError:
            pass

    def forward_source(self, load_seq: int, addr: int) -> Optional[Uop]:
        """Youngest store older than ``load_seq`` with a resolved matching
        address and a known value, eligible to forward."""
        best = None
        for st in self.entries:
            if st.seq >= load_seq:
                break
            if st.mem_addr == addr and st.store_value is not None and st.pred_enabled is not False:
                best = st
        return best

    def unresolved_older(self, load_seq: int) -> bool:
        """Any store older than the load without a resolved address yet?"""
        for st in self.entries:
            if st.seq >= load_seq:
                break
            if st.mem_addr is None:
                return True
        return False

    def squash_from(self, seq: int) -> None:
        self.entries = [e for e in self.entries if e.seq < seq]


class LoadQueue:
    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: List[Uop] = []

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, uop: Uop) -> None:
        if self.full():
            raise RuntimeError("load queue overflow (dispatch must check)")
        self.entries.append(uop)

    def remove(self, uop: Uop) -> None:
        try:
            self.entries.remove(uop)
        except ValueError:
            pass

    def find_violation(self, store: Uop) -> Optional[Uop]:
        """Oldest *younger* load that executed to the same address without
        having forwarded from this store or a younger one (memory-order
        violation)."""
        victim = None
        for ld in self.entries:
            if ld.seq <= store.seq:
                continue
            if (ld.mem_addr == store.mem_addr and ld.result is not None
                    and (ld.forward_seq is None or ld.forward_seq < store.seq)):
                if victim is None or ld.seq < victim.seq:
                    victim = ld
        return victim

    def squash_from(self, seq: int) -> None:
        self.entries = [e for e in self.entries if e.seq < seq]
