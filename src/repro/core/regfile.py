"""Physical register files: integer PRF and the 2-bit predicate PRF.

Wakeup is event-driven: consumers subscribe to a physical register; when
its producer writes back, subscribers are notified (their pending-source
count drops; at zero they enter the ready queue).
"""

from typing import Callable, Dict, List, Optional

ZERO_REG = 0  # physical register 0 is the architected constant zero
PRED_ALWAYS = 0  # predicate physical register 0 = pred0 = unconditional


class PhysRegFile:
    """Integer physical registers with values, ready bits, and wakeup lists."""

    def __init__(self, size: int):
        self.size = size
        self.value: List[int] = [0] * size
        self.ready: List[bool] = [False] * size
        self._waiters: Dict[int, List] = {}
        # Register 0 is the constant zero, always ready.
        self.ready[ZERO_REG] = True

    def mark_not_ready(self, reg: int) -> None:
        if reg != ZERO_REG:
            self.ready[reg] = False

    def write(self, reg: int, value: int) -> List:
        """Write back a result; returns the wakeup list of waiting uops."""
        if reg == ZERO_REG:
            return []
        self.value[reg] = value
        self.ready[reg] = True
        return self._waiters.pop(reg, [])

    def subscribe(self, reg: int, waiter) -> bool:
        """Register a waiter; returns False if the reg was already ready."""
        if self.ready[reg]:
            return False
        self._waiters.setdefault(reg, []).append(waiter)
        return True

    def read(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.value[reg]

    def drop_waiters(self, predicate: Callable) -> None:
        """Remove waiters matching ``predicate`` (used on squash)."""
        for reg in list(self._waiters):
            kept = [w for w in self._waiters[reg] if not predicate(w)]
            if kept:
                self._waiters[reg] = kept
            else:
                del self._waiters[reg]


class PredRegFile(PhysRegFile):
    """Predicate physical registers (paper Section V-H).

    Each value is 2 bits: ``msb`` = the producer itself was predicated-true
    (enabled); ``lsb`` = the producer's taken/not-taken outcome.  Register 0
    is ``pred0`` — the always-enabled predicate for unguarded instructions.
    """

    def __init__(self, size: int = 128):
        super().__init__(size)
        self.value[PRED_ALWAYS] = 0b10  # enabled, direction unused

    @staticmethod
    def pack(enabled: bool, taken: bool) -> int:
        return (int(enabled) << 1) | int(taken)

    def consumer_enabled(self, reg: int, enabling_direction: bool) -> bool:
        """Paper's rule: enabled iff (msb == 1) && (lsb == consumer dir).

        ``pred0`` always enables its consumer.
        """
        if reg == PRED_ALWAYS:
            return True
        v = self.value[reg]
        return bool(v & 0b10) and bool(v & 0b01) == enabling_direction

    def write_pred(self, reg: int, enabled: bool, taken: bool) -> List:
        if reg == PRED_ALWAYS:
            raise ValueError("pred0 is constant")
        return super().write(reg, self.pack(enabled, taken))
