"""Physical register files: integer PRF and the 2-bit predicate PRF.

Columnar layout: the register file is two flat preallocated columns —
``value`` (signed-64 ints) and ``ready`` (bools) — indexed by physical
register number, plus a sparse wakeup dict.  The hot path reads the
``value`` column directly (``core.prf.value[phys]``); physical register 0
is the architected constant zero and is never written, so the column read
needs no zero-register branch.

Wakeup is event-driven: consumers subscribe to a physical register; when
its producer writes back, subscribers are notified (their pending-source
count drops; at zero they enter the ready queue).

The pre-refactor implementation lives in :mod:`repro.core.legacy` for the
A/B equivalence harness.
"""

from array import array
from typing import Callable, Dict, List

ZERO_REG = 0  # physical register 0 is the architected constant zero
PRED_ALWAYS = 0  # predicate physical register 0 = pred0 = unconditional


class PhysRegFile:
    """Integer physical registers as flat value/ready columns."""

    __slots__ = ("size", "value", "ready", "_waiters")

    def __init__(self, size: int):
        self.size = size
        self.value: List[int] = [0] * size
        self.ready: List[bool] = [False] * size
        self._waiters: Dict[int, List] = {}
        # Register 0 is the constant zero, always ready.
        self.ready[ZERO_REG] = True

    def mark_not_ready(self, reg: int) -> None:
        if reg != ZERO_REG:
            self.ready[reg] = False

    def write(self, reg: int, value: int) -> List:
        """Write back a result; returns the wakeup list of waiting uops."""
        if reg == ZERO_REG:
            return []
        self.value[reg] = value
        self.ready[reg] = True
        return self._waiters.pop(reg, [])

    def subscribe(self, reg: int, waiter) -> bool:
        """Register a waiter; returns False if the reg was already ready."""
        if self.ready[reg]:
            return False
        self._waiters.setdefault(reg, []).append(waiter)
        return True

    def read(self, reg: int) -> int:
        # value[ZERO_REG] is invariantly 0, so no zero-register branch.
        return self.value[reg]

    def drop_waiters(self, predicate: Callable) -> None:
        """Remove waiters matching ``predicate`` (used on squash)."""
        for reg in list(self._waiters):
            kept = [w for w in self._waiters[reg] if not predicate(w)]
            if kept:
                self._waiters[reg] = kept
            else:
                del self._waiters[reg]

    # ------------------------------------------------------------------
    # Compact serialization: the columns pickle as packed bytes, not
    # element-wise int lists.  Snapshots are taken at drained boundaries,
    # so the wakeup dict is (almost always) empty; it is carried verbatim
    # when it is not.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = {
            "size": self.size,
            "value": array("q", self.value).tobytes(),
            "ready": bytes(self.ready),
        }
        if self._waiters:
            state["waiters"] = self._waiters
        return state

    def __setstate__(self, state):
        self.size = state["size"]
        values = array("q")
        values.frombytes(state["value"])
        self.value = values.tolist()
        self.ready = [bool(b) for b in state["ready"]]
        self._waiters = state.get("waiters", {})


class PredRegFile(PhysRegFile):
    """Predicate physical registers (paper Section V-H).

    Each value is 2 bits: ``msb`` = the producer itself was predicated-true
    (enabled); ``lsb`` = the producer's taken/not-taken outcome.  Register 0
    is ``pred0`` — the always-enabled predicate for unguarded instructions.
    """

    __slots__ = ()

    def __init__(self, size: int = 128):
        super().__init__(size)
        self.value[PRED_ALWAYS] = 0b10  # enabled, direction unused

    @staticmethod
    def pack(enabled: bool, taken: bool) -> int:
        return (int(enabled) << 1) | int(taken)

    def consumer_enabled(self, reg: int, enabling_direction: bool) -> bool:
        """Paper's rule: enabled iff (msb == 1) && (lsb == consumer dir).

        ``pred0`` always enables its consumer.
        """
        if reg == PRED_ALWAYS:
            return True
        v = self.value[reg]
        return bool(v & 0b10) and bool(v & 0b01) == enabling_direction

    def write_pred(self, reg: int, enabled: bool, taken: bool) -> List:
        if reg == PRED_ALWAYS:
            raise ValueError("pred0 is constant")
        return super().write(reg, self.pack(enabled, taken))

    def read(self, reg: int) -> int:
        # pred0's packed value (0b10) is meaningful, unlike the integer
        # zero register — keep the base column read.
        return self.value[reg]
