"""Out-of-order superscalar core (the paper's Table III host machine).

Execute-at-execute: instruction values flow through a physical register
file; loads disambiguate against the store queue; branches resolve at
execute and squash younger instructions; stores update committed memory at
retire.  The core supports SMT-style thread contexts with the horizontal
partitioning of frontend width and resources that Phelps requires
(Table I), and exposes a :class:`PreExecutionEngine` hook interface that
the Phelps and Branch Runahead controllers implement.
"""

from repro.core.config import CoreConfig, PartitionPlan
from repro.core.uop import Uop, UopState
from repro.core.regfile import PhysRegFile, PredRegFile, PRED_ALWAYS
from repro.core.freelist import SharedPhysPool
from repro.core.rename import RenameMapTable
from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.thread import ThreadContext, ThreadKind, FetchUnit, MainFetchUnit
from repro.core.engine_api import PreExecutionEngine, NullEngine
from repro.core.pipeline import Core
from repro.core.stats import SimStats

__all__ = [
    "CoreConfig",
    "PartitionPlan",
    "Uop",
    "UopState",
    "PhysRegFile",
    "PredRegFile",
    "PRED_ALWAYS",
    "SharedPhysPool",
    "RenameMapTable",
    "LoadQueue",
    "StoreQueue",
    "ThreadContext",
    "ThreadKind",
    "FetchUnit",
    "MainFetchUnit",
    "PreExecutionEngine",
    "NullEngine",
    "Core",
    "SimStats",
]
