"""Interface between the core pipeline and a pre-execution engine.

Phelps (``repro.phelps.controller``) and Branch Runahead
(``repro.runahead.controller``) implement this; the baseline core uses
:class:`NullEngine`.  The pipeline calls these hooks at well-defined
points; the engine may in turn drive core-level actions (full squash,
re-partitioning, spawning helper thread contexts) through the ``core``
reference it is given at attach time.
"""

import pickle
from typing import Any, Optional, Tuple

from repro.core.uop import Uop
from repro.core.thread import ThreadContext


class PreExecutionEngine:
    """Default no-op engine."""

    # Observability handles; left as the class-level None on
    # observability-off runs so subclass attributes are never clobbered.
    obs = None
    events = None

    def attach(self, core) -> None:
        """Called once when the engine is installed on a core.

        If the core carries an observability hub, the engine registers its
        metric providers and keeps a direct events handle (``self.events``
        is None on observability-off runs — call sites must guard)."""
        self.core = core
        hub = getattr(core, "obs", None)
        if hub is not None:
            self.obs = hub
            self.events = hub.events
            self._register_metrics(hub.registry)

    def _register_metrics(self, registry) -> None:
        """Default wiring: the engine's ``stats()`` dict, flattened under
        ``engine.*``.  Engines add finer-grained providers on top."""
        registry.register_provider("engine", self.stats)

    # ------------------------------------------------------------ fetch
    def fetch_override(self, thread: ThreadContext, inst) -> Optional[Tuple[bool, Any]]:
        """Prediction-queue override for a conditional branch fetched by the
        main thread.  Returns (taken, token) to override the default
        predictor, or None to fall through.  The token is stored on the uop
        and handed back at retire for accuracy accounting."""
        return None

    def note_fetched(self, thread: ThreadContext, uop: Uop) -> None:
        """Called for every fetched uop *after* next-PC selection (used to
        advance spec_head on loop-branch fetch)."""

    # ---------------------------------------------------------- recovery
    def checkpoint(self) -> Any:
        """Snapshot engine speculative state (spec_head pointer sets)."""
        return None

    def restore(self, state: Any) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`."""

    def on_squash(self, thread: ThreadContext, uop: Uop) -> None:
        """Called once per squashed uop (resource reclamation hooks)."""

    def note_refetched(self, thread: ThreadContext, uop: Uop) -> None:
        """After a conditional-branch misprediction recovery: the engine's
        checkpoint has been restored; re-apply this branch's own effect on
        speculative pointers (e.g. loop-branch spec_head advance)."""

    def on_helper_branch_mispredicted(self, thread: ThreadContext, uop: Uop) -> None:
        """A helper thread's conditional branch resolved against its
        fetch-time prediction (the wrongly-fetched-ahead instructions were
        just squashed).  The engine redirects the helper's fetch unit."""

    # ------------------------------------------------------------ retire
    def retire_blocked(self, thread: ThreadContext, uop: Uop) -> bool:
        """Backpressure hook checked before retiring the ROB head: a helper
        thread's loop branch stalls when its prediction-queue column ring is
        full, and an outer thread's header predicate stalls when the Visit
        Queue is full."""
        return False

    def on_retire(self, thread: ThreadContext, uop: Uop) -> None:
        """Called for every retired uop, after architectural effects.

        This is where Phelps trains the DBT/CDFSM/IBDA structures, deposits
        predicate-producer outcomes, advances queue tails, triggers and
        terminates helper threads."""

    # ------------------------------------------------------------- cycle
    def on_cycle(self, cycle: int) -> None:
        """Called once per simulated cycle (engine-internal bookkeeping)."""

    def idle_skip(self, cycle: int, limit: int) -> int:
        """Fast-path negotiation for the core's event-driven idle skip.

        The core has proven that every tick in ``[cycle, limit)`` would be
        an architectural no-op apart from ``on_cycle``.  Return how many of
        those cycles may be skipped (``0 .. limit - cycle``), accounting any
        per-cycle bookkeeping as if :meth:`on_cycle` had run for each
        skipped cycle.  Engines that override :meth:`on_cycle` without
        overriding this hook get the conservative answer (no skip), so
        cycle-exactness holds for third-party engines by default.
        """
        if type(self).on_cycle is not PreExecutionEngine.on_cycle:
            return 0
        return limit - cycle

    # --------------------------------------------------------- snapshots
    def quiesce(self) -> None:
        """Bring the engine to a snapshot-safe state.

        Called by the core before a mid-run snapshot is taken: the engine
        must end any in-flight helper-thread deployment (its normal
        termination path, so the perturbation is an event the engine
        already models) and leave only state that :meth:`warm_state` can
        carry across a process boundary."""

    def warm_state(self) -> bytes:
        """Serialize the engine's warm state (training tables, counters).

        The default covers any engine whose ``__dict__`` is picklable
        apart from the attach-time handles; engines holding closures over
        live objects override this to strip and re-wire them."""
        return pickle.dumps({k: v for k, v in self.__dict__.items()
                             if k not in ("core", "obs", "events")})

    def restore_warm(self, payload: Optional[bytes]) -> None:
        """Adopt warm state from :meth:`warm_state` after :meth:`attach`.

        Mutates ``self.__dict__`` in place so metric providers registered
        at attach time (closures over ``self``) stay valid."""
        if payload is None:
            return
        self.__dict__.update(pickle.loads(payload))

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        return {}


class NullEngine(PreExecutionEngine):
    """Explicit alias for the baseline (no pre-execution) core."""
