"""Rename map tables (speculative RMT and committed AMT).

The table is one flat int column (``map``) indexed by logical register;
lookups and updates are single indexed operations.  The pre-refactor
version lives in :mod:`repro.core.legacy` for the A/B equivalence tests.
"""

from array import array
from typing import List

from repro.isa.registers import NUM_REGS
from repro.core.regfile import ZERO_REG


class RenameMapTable:
    """Logical -> physical mapping for one thread.

    ``x0`` permanently maps to the constant-zero physical register.  The
    same class serves the predicate rename tables (pred-RMT), where entry 0
    is ``pred0``.
    """

    __slots__ = ("num_logical", "_zero", "map")

    def __init__(self, num_logical: int = NUM_REGS, zero_phys: int = ZERO_REG):
        self.num_logical = num_logical
        self._zero = zero_phys
        self.map: List[int] = [zero_phys] * num_logical

    def lookup(self, logical: int) -> int:
        return self.map[logical]

    def set(self, logical: int, phys: int) -> int:
        """Update the mapping; returns the previous physical register."""
        if logical == 0:
            raise ValueError("logical register 0 is constant")
        old = self.map[logical]
        self.map[logical] = phys
        return old

    def snapshot(self) -> List[int]:
        return list(self.map)

    def restore(self, snap: List[int]) -> None:
        self.map = list(snap)

    def mapped_physical(self) -> List[int]:
        """Physical registers currently mapped (excluding the zero reg)."""
        zero = self._zero
        return [p for p in self.map if p != zero]

    def __getstate__(self):
        return {
            "num_logical": self.num_logical,
            "zero": self._zero,
            "map": array("q", self.map).tobytes(),
        }

    def __setstate__(self, state):
        self.num_logical = state["num_logical"]
        self._zero = state["zero"]
        mapped = array("q")
        mapped.frombytes(state["map"])
        self.map = mapped.tolist()
