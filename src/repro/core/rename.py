"""Rename map tables (speculative RMT and committed AMT)."""

from typing import List

from repro.isa.registers import NUM_REGS
from repro.core.regfile import ZERO_REG


class RenameMapTable:
    """Logical -> physical mapping for one thread.

    ``x0`` permanently maps to the constant-zero physical register.  The
    same class serves the predicate rename tables (pred-RMT), where entry 0
    is ``pred0``.
    """

    def __init__(self, num_logical: int = NUM_REGS, zero_phys: int = ZERO_REG):
        self.num_logical = num_logical
        self._zero = zero_phys
        self.map: List[int] = [zero_phys] * num_logical

    def lookup(self, logical: int) -> int:
        return self.map[logical]

    def set(self, logical: int, phys: int) -> int:
        """Update the mapping; returns the previous physical register."""
        if logical == 0:
            raise ValueError("logical register 0 is constant")
        old = self.map[logical]
        self.map[logical] = phys
        return old

    def snapshot(self) -> List[int]:
        return list(self.map)

    def restore(self, snap: List[int]) -> None:
        self.map = list(snap)

    def mapped_physical(self) -> List[int]:
        """Physical registers currently mapped (excluding the zero reg)."""
        return [p for p in self.map if p != self._zero]
