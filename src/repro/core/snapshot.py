"""Mid-run core snapshots: drained-boundary capture, restore, and store.

A snapshot is taken at a *drained commit boundary*: the core has just
squashed every in-flight instruction (see ``Core._drain_for_snapshot``),
so the machine state reduces to committed architectural state (AMT-mapped
registers, memory image, resume PC) plus *warm* microarchitectural state
whose contents outlive any squash — branch predictor tables, BTB / RAS /
indirect predictor, cache hierarchy, and the engine's training structures
(DBT / loop table / HTC for Phelps).  Everything else (ROB, frontend
queues, LSQ, issue queue, in-flight writebacks) is empty by construction,
which is what makes the format small and the restore exact.

Cycle-exactness contract: a run executed with ``snapshot_interval=N``
drains at every boundary whether or not anyone persists the blob, so an
uninterrupted run and a killed-and-resumed run see *identical*
perturbations and produce identical final :class:`SimStats`.  (A drain is
a real microarchitectural event — a full squash, plus helper-thread
termination for engines with an active deployment — so snapshotted runs
are cycle-exact against each other, not against ``snapshot_interval=0``.)

Restore mutates an existing fresh core **in place**: the predictor,
hierarchy, and engine objects adopt the snapshotted ``__dict__`` rather
than being replaced, because attach-time wiring holds references to the
object identities (the obs registry's ``memory`` provider is the bound
method ``core.hierarchy.stats``; engine metric providers close over the
engine instance).

:class:`SnapshotStore` persists blobs one-file-per-run-key with the
shared atomic-write + quarantine discipline of
:mod:`repro.utils.shards`, so a SIGKILL mid-write can never leave a
truncated blob that a resume would trust.
"""

import pickle
from typing import Dict, Optional

from repro.core.regfile import PRED_ALWAYS, ZERO_REG
from repro.utils.shards import atomic_write_bytes, quarantine_shard

__all__ = ["SnapshotError", "SnapshotStore", "load_state", "restore_into",
           "take_snapshot"]

_SCHEMA = 1


class SnapshotError(RuntimeError):
    """A snapshot blob is unreadable, wrong-schema, or mismatched."""


def take_snapshot(core) -> bytes:
    """Serialize a drained core's state; call via :meth:`Core.snapshot`.

    Serialization happens immediately (``pickle.dumps``) so the blob is a
    deep copy — the live core keeps running without aliasing it.
    """
    main = core.main
    if main.rob or main.frontend_q or len(core.threads) != 1:
        raise SnapshotError("snapshot requires a drained core "
                            "(empty pipeline, no helper threads)")
    prf = core.prf
    state: Dict = {
        "schema": _SCHEMA,
        "cycle": core.cycle,
        "partition_mode": core.plan.mode,
        "mem": dict(core.mem),
        # Committed register image, *including* zero-valued registers: a
        # mapped register occupies a physical register, and pool occupancy
        # is timing-visible (dispatch stalls on quota), so the restore
        # must reproduce it exactly — unlike ``boot_state``, which maps
        # only non-zero values because nothing was ever allocated.
        "mapped": [(idx, prf.read(phys))
                   for idx, phys in enumerate(main.amt.map)
                   if idx and phys != ZERO_REG],
        "pred_mapped": [(idx, core.pred_prf.value[phys])
                        for idx, phys in enumerate(main.pred_rmt.map)
                        if idx and phys != PRED_ALWAYS],
        "thread": {
            "retired": main.retired,
            "retired_stores": main.retired_stores,
            "retired_branches": main.retired_branches,
            "mispredicts": main.mispredicts,
            "load_violations": main.load_violations,
            "next_seq": main.next_seq,
            "resume_pc": main.resume_pc,
            "fetch_halted": main.fetch_halted,
        },
        "next_thread_id": core._next_thread_id,
        "halted": core.halted,
        "stats": core.stats,
        # Warm structures, pickled wholesale (all plain-__dict__ objects).
        "predictor": core.predictor,
        "btb": core.btb,
        "ras": core.ras,
        "indirect": core.indirect,
        "hierarchy": core.hierarchy,
        "engine": core.engine.warm_state(),
        "oracle": core.oracle.snapshot() if core.oracle is not None else None,
        "guard": None,
        "obs": None,
    }
    if core.guard is not None:
        g = core.guard
        state["guard"] = {"golden": g.golden.snapshot(), "checked": g.checked,
                          "sweeps": g.sweeps, "next_sweep": g._next_sweep}
    if core.obs is not None:
        sampler, events = core.obs.sampler, core.obs.events
        state["obs"] = {
            "samples": list(sampler.samples),
            "next_boundary": sampler._next_boundary,
            "last": dict(sampler._last),
            "events": list(events.buffer),
            "emitted": events.emitted,
            "dropped": events.dropped,
        }
    return pickle.dumps(state)


def load_state(blob: bytes) -> Dict:
    """Deserialize and validate a snapshot blob."""
    try:
        state = pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(f"unreadable snapshot blob: {exc}") from exc
    if not isinstance(state, dict) or state.get("schema") != _SCHEMA:
        raise SnapshotError("snapshot schema mismatch")
    return state


def _adopt(dst, src) -> None:
    """Swap ``dst``'s state for ``src``'s, preserving ``dst``'s identity."""
    if type(dst) is not type(src):
        raise SnapshotError(f"snapshot component type mismatch: "
                            f"{type(dst).__name__} vs {type(src).__name__}")
    dst.__dict__.clear()
    dst.__dict__.update(src.__dict__)


def restore_into(core, state: Dict) -> None:
    """Adopt a snapshot on a fresh core; call via :meth:`Core.restore`.

    The core must have been constructed with the *same* ``RunConfig`` that
    produced the snapshot (same program, engine, partition mode, guard and
    obs settings) — the harness guarantees this by keying the store on
    ``RunConfig.cache_key()``.
    """
    main = core.main
    if core.cycle != 0 or main.rob or main.frontend_q:
        raise SnapshotError("restore requires a fresh core")
    if (state["guard"] is not None) != (core.guard is not None):
        raise SnapshotError("snapshot/core guard configuration mismatch")
    if (state["oracle"] is not None) != (core.oracle is not None):
        raise SnapshotError("snapshot/core oracle configuration mismatch")

    if state["partition_mode"] != core.plan.mode:
        core.set_partition_mode(state["partition_mode"])
    core.mem = dict(state["mem"])
    for idx, value in state["mapped"]:
        phys = core.pool.allocate(main.id, main.share.prf_quota)
        if phys is None:
            raise SnapshotError("physical register pool exhausted at restore")
        core.prf.write(phys, value)
        main.rmt.map[idx] = phys
        main.amt.map[idx] = phys
    for idx, value in state["pred_mapped"]:
        pphys = core.pred_pool.allocate(main.id,
                                        core.config.pred_fl_size // 2)
        if pphys is None:
            raise SnapshotError("predicate register pool exhausted at restore")
        core.pred_prf.value[pphys] = value
        core.pred_prf.ready[pphys] = True
        main.pred_rmt.map[idx] = pphys

    t = state["thread"]
    main.retired = t["retired"]
    main.retired_stores = t["retired_stores"]
    main.retired_branches = t["retired_branches"]
    main.mispredicts = t["mispredicts"]
    main.load_violations = t["load_violations"]
    main.next_seq = t["next_seq"]
    main.resume_pc = t["resume_pc"]
    main.fetch_halted = t["fetch_halted"]
    main.fetch.redirect(t["resume_pc"])

    core.cycle = state["cycle"]
    core.halted = state["halted"]
    core._next_thread_id = state["next_thread_id"]
    core.stats = state["stats"]

    # In-place adoption keeps attach-time references valid (see module
    # docstring); the unpickled source objects are garbage afterwards.
    _adopt(core.predictor, state["predictor"])
    _adopt(core.btb, state["btb"])
    _adopt(core.ras, state["ras"])
    _adopt(core.indirect, state["indirect"])
    _adopt(core.hierarchy, state["hierarchy"])
    core.engine.restore_warm(state["engine"])

    if state["oracle"] is not None:
        core.oracle.restore_snapshot(state["oracle"])
    if state["guard"] is not None:
        g, saved = core.guard, state["guard"]
        g.golden.restore_snapshot(saved["golden"])
        g.checked = saved["checked"]
        g.sweeps = saved["sweeps"]
        g._next_sweep = saved["next_sweep"]
    if state["obs"] is not None and core.obs is not None:
        saved = state["obs"]
        sampler, events = core.obs.sampler, core.obs.events
        sampler.samples = list(saved["samples"])
        sampler._next_boundary = saved["next_boundary"]
        sampler._last = dict(saved["last"])
        events.buffer.clear()
        events.buffer.extend(saved["events"])
        events.emitted = saved["emitted"]
        events.dropped = saved["dropped"]


class SnapshotStore:
    """One snapshot blob per run key, atomic writes, quarantine on damage.

    Unlike the run cache (many shards, long-lived), a run's snapshot slot
    is overwritten in place at each boundary — only the latest snapshot
    matters for resume, and ``os.replace`` makes each overwrite atomic.
    """

    def __init__(self, root, events=None):
        import pathlib

        self.root = pathlib.Path(root)
        self.events = events
        self.quarantined = 0

    def path_for(self, key: str):
        return self.root / f"{key}.snap"

    def get(self, key: str) -> Optional[bytes]:
        path = self.path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.quarantine(key)
            return None

    def put(self, key: str, blob: bytes) -> None:
        atomic_write_bytes(self.path_for(key), blob)

    def quarantine(self, key: str) -> None:
        """A blob that read fine but failed validation (or failed to read):
        keep the bytes for post-mortem, treat the key as a miss."""
        if quarantine_shard(self.path_for(key), self.events,
                            "snapshot") is not None:
            self.quarantined += 1
