"""Pipeline event tracing (Kanata/pipeview-flavoured, plain text).

Attach a :class:`PipelineTracer` to a core to record per-uop stage
timestamps (fetch, dispatch, issue, writeback, retire/squash) and render
them as text timelines — the debugging workhorse for microarchitecture
work, and the basis of the ``inspect_helper_thread`` example's deep dive.

Usage::

    core = Core(program)
    tracer = PipelineTracer(core, limit=2000)
    core.run(max_instructions=500)
    print(tracer.render(last=20))
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.uop import Uop, UopState


@dataclass
class UopTrace:
    seq: int
    thread_id: int
    pc: int
    opcode: str
    fetch: int = -1
    dispatch: int = -1
    issue: int = -1
    writeback: int = -1
    retire: int = -1
    squashed: int = -1

    def lifetime(self) -> Optional[int]:
        end = self.retire if self.retire >= 0 else self.squashed
        return end - self.fetch if end >= 0 and self.fetch >= 0 else None


class PipelineTracer:
    """Wraps a core's stage methods to log per-uop timestamps.

    ``limit`` bounds memory: older traces are dropped FIFO.
    """

    def __init__(self, core, limit: int = 10_000):
        self.core = core
        self.limit = max(1, limit)
        self.traces: Dict[tuple, UopTrace] = {}  # (thread, seq) -> trace
        # FIFO of keys, oldest first; every key in ``order`` has an entry
        # in ``traces`` and vice versa (eviction drops from both).
        self.order: Deque[Tuple[int, int]] = deque()
        self._install(core)

    # ------------------------------------------------------------------
    def _install(self, core) -> None:
        tracer = self

        orig_predict = core._predict
        orig_dispatch = core._dispatch_thread
        orig_execute = core._execute
        orig_writeback = core._writeback
        orig_retire_uop = core._retire_uop
        orig_squash = core._squash_thread

        def predict(thread, uop):
            tracer._note(uop).fetch = core.cycle
            return orig_predict(thread, uop)

        def execute(thread, uop):
            tracer._note(uop).issue = core.cycle
            return orig_execute(thread, uop)

        def retire_uop(thread, uop):
            tracer._note(uop).retire = core.cycle
            return orig_retire_uop(thread, uop)

        def squash_thread(thread, cutoff):
            squashed = orig_squash(thread, cutoff)
            for u in squashed:
                tracer._note(u).squashed = core.cycle
            return squashed

        def writeback():
            events = core.wb_events.get(core.cycle, [])
            live = [u for u in events if u.state is UopState.ISSUED]
            orig_writeback()
            for u in live:
                tracer._note(u).writeback = core.cycle

        def dispatch_thread(thread):
            before = {(u.thread_id, u.seq) for _, u in thread.frontend_q}
            orig_dispatch(thread)
            after = {(u.thread_id, u.seq) for _, u in thread.frontend_q}
            for u in thread.rob:
                key = (u.thread_id, u.seq)
                if key in before and key not in after:
                    t = tracer._note(u)
                    if t.dispatch < 0:
                        t.dispatch = core.cycle

        core._predict = predict
        core._dispatch_thread = dispatch_thread
        core._execute = execute
        core._writeback = writeback
        core._retire_uop = retire_uop
        core._squash_thread = squash_thread

    def _note(self, uop: Uop) -> UopTrace:
        key = (uop.thread_id, uop.seq)
        trace = self.traces.get(key)
        if trace is None:
            trace = UopTrace(seq=uop.seq, thread_id=uop.thread_id, pc=uop.pc,
                             opcode=uop.inst.opcode.value)
            self.traces[key] = trace
            self.order.append(key)
            while len(self.order) > self.limit:
                old = self.order.popleft()
                del self.traces[old]
        return trace

    # ------------------------------------------------------------------
    def retired(self) -> List[UopTrace]:
        return [self.traces[k] for k in self.order
                if self.traces[k].retire >= 0]

    def squashed(self) -> List[UopTrace]:
        return [self.traces[k] for k in self.order
                if self.traces[k].squashed >= 0]

    def render(self, last: int = 30) -> str:
        """A fixed-width stage-timestamp table for the most recent uops."""
        rows = [self.traces[k] for k in list(self.order)[-last:]]
        out = [f"{'thr':>3s} {'seq':>6s} {'pc':>8s} {'op':10s} "
               f"{'F':>7s} {'D':>7s} {'X':>7s} {'W':>7s} {'R':>7s}"]
        for t in rows:
            def c(v):
                return str(v) if v >= 0 else "-"
            end = f"{c(t.retire):>7s}" if t.squashed < 0 else f"{'sq@' + str(t.squashed):>7s}"
            out.append(f"{t.thread_id:3d} {t.seq:6d} {t.pc:#8x} {t.opcode:10s} "
                       f"{c(t.fetch):>7s} {c(t.dispatch):>7s} {c(t.issue):>7s} "
                       f"{c(t.writeback):>7s} {end}")
        return "\n".join(out)

    def average_latency(self) -> float:
        lives = [t.lifetime() for t in self.retired()]
        lives = [x for x in lives if x is not None]
        return sum(lives) / len(lives) if lives else 0.0
