"""In-flight micro-op record."""

import enum
from typing import Any, List, Optional

from repro.isa.instruction import Instruction


class UopState(enum.Enum):
    FETCHED = "fetched"      # in the frontend queue
    DISPATCHED = "dispatched"  # renamed, in IQ (or waiting in LSQ)
    ISSUED = "issued"        # executing
    DONE = "done"            # result written back, awaiting retire
    RETIRED = "retired"
    SQUASHED = "squashed"


class Uop:
    """One dynamic instruction instance."""

    __slots__ = (
        "inst", "thread_id", "seq", "pc", "state",
        # fetch-time prediction info
        "pred_taken", "pred_target", "predictor_meta", "predictor_checkpoint",
        "ras_checkpoint", "queue_token", "engine_checkpoint",
        "oracle_mark", "oracle_mark_after", "oracle_outcome", "pending",
        # rename info
        "phys_srcs", "phys_dest", "old_phys_dest",
        "pred_phys_src", "pred_phys_src2", "pred_phys_dest", "old_pred_phys_dest",
        # execution results
        "result", "taken", "actual_target", "mem_addr", "store_value",
        "ready_cycle", "pred_enabled", "forward_seq",
        # flags
        "mispredicted", "is_wrong_path_marker", "livein_value",
        "fetch_cycle",
    )

    def __init__(self, inst: Instruction, thread_id: int, seq: int, fetch_cycle: int):
        self.inst = inst
        self.thread_id = thread_id
        self.seq = seq
        self.pc = inst.pc
        self.state = UopState.FETCHED
        self.pred_taken: Optional[bool] = None
        self.pred_target: Optional[int] = None
        self.predictor_meta: Any = None
        self.predictor_checkpoint: Any = None
        self.ras_checkpoint: Any = None
        self.queue_token: Any = None        # prediction-queue consumption record
        self.engine_checkpoint: Any = None  # spec_head pointer snapshot
        self.oracle_mark: Optional[int] = None
        self.oracle_mark_after: Optional[int] = None
        self.oracle_outcome: Any = None
        self.pending = 0
        self.phys_srcs: List[int] = []
        self.phys_dest: Optional[int] = None
        self.old_phys_dest: Optional[int] = None
        self.pred_phys_src: Optional[int] = None
        self.pred_phys_src2: Optional[int] = None
        self.pred_phys_dest: Optional[int] = None
        self.old_pred_phys_dest: Optional[int] = None
        self.result: Optional[int] = None
        self.taken: Optional[bool] = None
        self.actual_target: Optional[int] = None
        self.mem_addr: Optional[int] = None
        self.store_value: Optional[int] = None
        self.ready_cycle: Optional[int] = None
        self.pred_enabled: Optional[bool] = None  # predication outcome (PRED/SD)
        self.forward_seq: Optional[int] = None  # seq of store this load forwarded from
        self.mispredicted = False
        self.is_wrong_path_marker = False
        self.livein_value: Optional[int] = None  # MOV_LIVEIN immediate value path
        self.fetch_cycle = fetch_cycle

    @property
    def squashed(self) -> bool:
        return self.state is UopState.SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<uop t{self.thread_id} #{self.seq} {self.inst.opcode.value}"
                f"@{self.pc:#x} {self.state.value}>")
