"""Claim/renew/complete transports: the worker's one execution surface.

The worker loop (:mod:`repro.service.worker`) is transport-agnostic: it
runs a point through whichever transport handed it out, and the two
implementations agree on the contract:

* ``claim(keys, lease_seconds)`` -> ``(key, RunConfig, shard)`` or
  ``None`` when nothing was claimable;
* ``renew(key, lease_seconds, hb)`` extends the lease, raising
  :class:`~repro.service.lease.LeaseLost` when this worker was fenced
  out (and *only* then — a network failure on the remote transport is
  swallowed and counted, because completion is idempotent and
  first-done-wins makes an optimistic worker safe);
* ``complete(key, entry, source)`` / ``fail(key, error)`` publish the
  outcome;
* ``release_held()`` hands back exactly the points this transport still
  holds — the shutdown courtesy path, now O(held) instead of O(points).

:class:`LocalJournal` talks to a mounted campaign directory through the
lease layer — the ``repro worker --dir`` deployment.

:class:`RemoteJournal` speaks the daemon's ``POST /claim`` / ``/renew``
/ ``/complete`` / ``/fail`` / ``/release`` protocol through a
:class:`~repro.service.httpclient.ServiceClient`; a connected worker
never opens the campaign root (it does not even learn the path), which
is what lets worker hosts live on machines that do not mount it.
Completion bodies carry the full run-cache entry so the daemon publishes
to the journal *and* the shared cache on its side of the wire.
"""

import sys
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.harness.campaign import CampaignJournal
from repro.harness.simulator import RunConfig
from repro.service.httpclient import (CircuitOpen, HttpStatusError, NotFound,
                                      ServiceClient, TransportError)
from repro.service.lease import (DEFAULT_LEASE_SECONDS, LeaseLost,
                                 claim_next, complete_point, fail_point,
                                 release_point, renew_lease)

__all__ = ["LocalJournal", "RemoteJournal", "config_from_doc",
           "config_to_doc"]

Claim = Tuple[str, RunConfig, Dict]


def config_to_doc(config: RunConfig) -> Dict:
    """The over-the-wire shape of a sweep point's configuration."""
    return {"workload": config.workload, "engine": config.engine,
            "instructions": config.max_instructions}


def config_from_doc(doc: Dict) -> RunConfig:
    """Rebuild a sweep-point :class:`RunConfig` from its wire shape.

    Mints the same ``cache_key()`` as :func:`~repro.service.queue.
    configs_from_spec` for the same point — the invariant that keeps
    remote results content-addressed.
    """
    return RunConfig(workload=doc["workload"], engine=doc["engine"],
                     max_instructions=int(doc["instructions"]))


class LocalJournal:
    """Transport over a mounted campaign directory (the lease layer)."""

    def __init__(self, journal: CampaignJournal, worker_id: str,
                 configs: Dict[str, RunConfig]):
        self.journal = journal
        self.worker_id = worker_id
        self.configs = configs
        self.held: set = set()
        self.renew_misses = 0    # always 0 locally; mirrors RemoteJournal

    def claim(self, keys: Optional[Sequence[str]] = None,
              lease_seconds: float = DEFAULT_LEASE_SECONDS
              ) -> Optional[Claim]:
        candidates = [k for k in (keys if keys is not None else self.configs)
                      if k in self.configs]
        got = claim_next(self.journal, candidates, self.worker_id,
                         lease_seconds=lease_seconds)
        if got is None:
            return None
        key, shard = got
        self.held.add(key)
        return key, self.configs[key], shard

    def renew(self, key: str, lease_seconds: float,
              hb: Optional[Dict] = None) -> None:
        try:
            renew_lease(self.journal, key, self.worker_id,
                        lease_seconds=lease_seconds, hb=hb)
        except LeaseLost:
            self.held.discard(key)
            raise

    def complete(self, key: str, entry: Dict,
                 source: str = "worker") -> bool:
        accepted = complete_point(self.journal, key, self.worker_id,
                                  entry, source=source)
        self.held.discard(key)
        return accepted

    def fail(self, key: str, error: str) -> None:
        fail_point(self.journal, key, self.worker_id, error)
        self.held.discard(key)

    def abandon(self, key: str) -> None:
        self.held.discard(key)

    def release_held(self) -> int:
        released = 0
        for key in sorted(self.held):
            if release_point(self.journal, key, self.worker_id):
                released += 1
        self.held.clear()
        return released


class RemoteJournal:
    """The same surface over HTTP: filesystem-free workers.

    Error philosophy, per operation:

    * ``claim`` — transport errors propagate (the loop decides whether
      to back off or move on); a 404 propagates as
      :class:`~repro.service.httpclient.NotFound` so the loop can drop a
      campaign the daemon no longer knows.
    * ``renew`` — only an authoritative ``409`` becomes
      :class:`LeaseLost`.  Transport errors are swallowed and counted
      (``renew_misses``): the daemon may requeue the point while we are
      dark, but first-done-wins makes finishing anyway safe, and
      abandoning real compute because of a blip would be strictly worse.
    * ``complete``/``fail`` — retried with the idempotency key
      ``worker:campaign:key:gN`` until ``publish_retry_seconds`` is
      exhausted, riding through breaker-open windows; a dropped response
      therefore cannot double-apply, and a daemon restart mid-publish
      costs only patience.
    """

    def __init__(self, client: ServiceClient, campaign_id: str,
                 worker_id: str,
                 publish_retry_seconds: float = 120.0,
                 log=None):
        self.client = client
        self.campaign_id = campaign_id
        self.worker_id = worker_id
        self.publish_retry_seconds = publish_retry_seconds
        self.held: set = set()
        self.renew_misses = 0
        self.publish_retries = 0
        self._generations: Dict[str, int] = {}
        self._log = log or (lambda msg: print(msg, file=sys.stderr,
                                              flush=True))

    # ------------------------------------------------------------ claims
    def claim(self, keys: Optional[Sequence[str]] = None,
              lease_seconds: float = DEFAULT_LEASE_SECONDS
              ) -> Optional[Claim]:
        body = {"campaign": self.campaign_id, "worker": self.worker_id,
                "lease_seconds": lease_seconds}
        if keys is not None:
            body["keys"] = list(keys)
        doc = self.client.post("/claim", body)
        key = doc.get("key")
        if not key:
            return None
        shard = doc.get("shard") or {}
        self.held.add(key)
        self._generations[key] = int(shard.get("generation", 0))
        return key, config_from_doc(doc["config"]), shard

    def renew(self, key: str, lease_seconds: float,
              hb: Optional[Dict] = None) -> None:
        body = {"campaign": self.campaign_id, "worker": self.worker_id,
                "key": key, "lease_seconds": lease_seconds}
        if hb is not None:
            body["hb"] = hb
        try:
            self.client.post("/renew", body)
        except HttpStatusError as exc:
            if exc.status == 409:
                self.held.discard(key)
                info = exc.json() or {}
                raise LeaseLost(key, self.worker_id,
                                holder=info.get("holder")) from exc
            self.renew_misses += 1
        except (TransportError, CircuitOpen):
            self.renew_misses += 1

    # ------------------------------------------------------- publication
    def _idempotency_key(self, key: str) -> str:
        # Deterministic per (holder, point, generation): a retried
        # publish of the same attempt reuses it; a re-claimed point
        # (new generation) mints a fresh one.
        return (f"{self.worker_id}:{self.campaign_id}:{key}"
                f":g{self._generations.get(key, 0)}")

    def _publish(self, path: str, body: Dict, idem: str) -> Dict:
        import time as _time
        deadline = _time.monotonic() + self.publish_retry_seconds
        while True:
            try:
                return self.client.post(path, body, idempotency_key=idem)
            except CircuitOpen as exc:
                if _time.monotonic() >= deadline:
                    raise
                self.publish_retries += 1
                _time.sleep(min(max(exc.retry_in, 0.05), 1.0))
            except TransportError:
                if _time.monotonic() >= deadline:
                    raise
                self.publish_retries += 1
                _time.sleep(0.2)

    def complete(self, key: str, entry: Dict,
                 source: str = "worker") -> bool:
        body = {"campaign": self.campaign_id, "worker": self.worker_id,
                "key": key, "entry": entry, "source": source}
        try:
            doc = self._publish("/complete", body,
                                self._idempotency_key(key))
        except (TransportError, CircuitOpen, HttpStatusError) as exc:
            # The result is lost to us but not to the campaign: the
            # reaper requeues the point and a deterministic rerun
            # publishes the identical entry.
            self._log(f"publish of {key} failed ({exc}); "
                      "leaving it to the reaper")
            self.held.discard(key)
            return False
        self.held.discard(key)
        return bool(doc.get("accepted"))

    def fail(self, key: str, error: str) -> None:
        body = {"campaign": self.campaign_id, "worker": self.worker_id,
                "key": key, "error": error}
        try:
            self._publish("/fail", body, self._idempotency_key(key))
        except (TransportError, CircuitOpen, HttpStatusError) as exc:
            self._log(f"fail-report of {key} lost ({exc}); "
                      "the reaper will requeue it")
        self.held.discard(key)

    def abandon(self, key: str) -> None:
        self.held.discard(key)

    def release_held(self) -> int:
        """Best-effort: hand back exactly what we still hold (O(held))."""
        released = 0
        for key in sorted(self.held):
            try:
                doc = self.client.post(
                    "/release", {"campaign": self.campaign_id,
                                 "worker": self.worker_id, "key": key})
            except (TransportError, CircuitOpen, HttpStatusError,
                    NotFound):
                continue  # the reaper covers what courtesy cannot
            if doc.get("released"):
                released += 1
        self.held.clear()
        return released


def release_all(transports: Iterable) -> int:
    """Release every held point across ``transports`` (worker exit)."""
    return sum(t.release_held() for t in transports)
