"""Result integrity: sampled audits, fingerprint voting, quarantine.

PR 8/9 made the campaign fleet survive crashed workers and a hostile
network, but a worker that *completes* a point with silently wrong data
(bit-rot, a bad host, a buggy fork, cosmic-ray SDC) was trusted
unconditionally — one corrupted entry poisons the RunCache and every
figure built on it.  Simulations are deterministic, so integrity is
cheap to verify: re-run the point anywhere and the
:func:`~repro.harness.campaign.entry_fingerprint` must match
bit-for-bit.  This module is the daemon-side machinery that does so
systematically:

* **Audit scheduling** (:meth:`IntegrityMonitor.consider`) — a seeded,
  deterministic sample (:func:`should_audit`) of worker-completed
  points is re-enqueued as *audit runs*, handed only to a worker other
  than the original completer.  The audit state is persisted into the
  point shard (an ``audit`` sub-document that never touches the result
  ``entry``, so fingerprints are unaffected) and therefore survives a
  daemon restart.
* **Arbitration** (:meth:`IntegrityMonitor.on_audit_complete`) — a
  matching audit is a cheap pass.  On mismatch a third, daemon-local
  tie-break execution runs and majority vote decides; the losing entry
  is quarantined beside the journal via the shared ``*.corrupt``
  machinery (:func:`repro.utils.shards.quarantine_shard`), the journal
  and run cache are atomically repaired with the winner, and a typed
  :class:`IntegrityViolation` diagnostic bundle is written for the
  post-mortem.
* **Worker reputation** (:class:`WorkerReputation`) — mismatches,
  crashes, and lease expiries fold into a rolling per-worker score;
  crossing the threshold quarantines the worker: ``/schedule`` answers
  shutdown, ``/claim`` stops handing out wins, and the supervisor
  respawns a pool slot under a fresh identity.
* **Poison points** — the lease layer's reaper consults
  ``poison_workers`` (see :func:`repro.service.lease.reap_expired`): a
  point whose attempts failed under that many *distinct* workers is the
  point's fault, not the fleet's, and transitions to the terminal
  ``poisoned`` status instead of burning every worker in turn.
"""

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.harness.campaign import CampaignJournal, entry_fingerprint
from repro.utils.shards import atomic_write_json, quarantine_shard

__all__ = ["IntegrityConfig", "IntegrityMonitor", "IntegrityViolation",
           "WorkerReputation", "should_audit", "AUDIT_ACTIVE_STATUSES",
           "REPUTATION_WEIGHTS"]

# Audit sub-document statuses that still hold the campaign open.
AUDIT_ACTIVE_STATUSES = ("pending", "running", "arbitrating")

# Rolling-score weights per reputation event kind.  A mismatch is direct
# evidence of bad data; a crash or lease expiry is circumstantial (the
# point itself may be pathological), so they weigh less.
REPUTATION_WEIGHTS = {"mismatch": 4.0, "crash": 2.0, "lease_expired": 1.0}

# Synthetic generation base for audit leases: keeps audit idempotency
# keys (worker:campaign:key:gN) disjoint from any real claim generation.
_AUDIT_GENERATION_BASE = 1_000_000

_MAX_AUDIT_ATTEMPTS = 3


def should_audit(key: str, rate: float, seed: int = 0) -> bool:
    """Deterministically sample ``key`` at ``rate`` under ``seed``.

    The decision is a pure function of (seed, key): the same campaign
    audited twice samples the same points, and changing the seed redraws
    the sample without touching any journal state.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return draw < rate


class IntegrityViolation(RuntimeError):
    """An audit mismatch that arbitration resolved (or failed to).

    Carries the full diagnostic ``report`` — fingerprints, workers,
    verdict — which is also written as a JSON bundle beside the journal
    so the evidence survives the process.
    """

    def __init__(self, campaign: str, key: str, report: Dict):
        self.campaign = campaign
        self.key = key
        self.report = report
        super().__init__(f"integrity violation on {campaign}/{key}: "
                         f"{report.get('verdict')}")


@dataclass
class IntegrityConfig:
    """Knobs for one daemon's integrity subsystem."""

    audit_rate: float = 0.0        # fraction of completions re-executed
    audit_seed: int = 0
    quarantine_threshold: float = 5.0   # rolling score that quarantines
    reputation_window: float = 600.0    # seconds of history that count
    poison_workers: int = 3        # distinct failing workers -> poisoned


class WorkerReputation:
    """Rolling per-worker misbehaviour scores with a quarantine line.

    Events decay by falling out of the window rather than by weighting:
    a worker is judged on what it did recently, and an old incident
    cannot quarantine it forever — but an actual quarantine is permanent
    for the process (the supervisor replaces the worker, it does not
    parole it).
    """

    def __init__(self, threshold: float = 5.0, window: float = 600.0,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = threshold
        self.window = window
        self._clock = clock
        self._events: Dict[str, Deque[Tuple[float, float, str]]] = {}
        self._quarantined: Dict[str, str] = {}
        self._lock = threading.Lock()

    def record(self, worker: str, kind: str) -> bool:
        """Fold one event in; True when this event quarantines ``worker``."""
        if not worker or worker == "?":
            return False
        weight = REPUTATION_WEIGHTS.get(kind, 1.0)
        now = self._clock()
        with self._lock:
            events = self._events.setdefault(worker, deque())
            events.append((now, weight, kind))
            if worker in self._quarantined:
                return False
            if self._score_locked(worker, now) >= self.threshold:
                kinds = sorted({k for _, _, k in events})
                self._quarantined[worker] = "+".join(kinds)
                return True
        return False

    def _score_locked(self, worker: str, now: float) -> float:
        events = self._events.get(worker)
        if not events:
            return 0.0
        while events and now - events[0][0] > self.window:
            events.popleft()
        return sum(w for _, w, _ in events)

    def score(self, worker: str) -> float:
        with self._lock:
            return self._score_locked(worker, self._clock())

    def is_quarantined(self, worker: str) -> bool:
        with self._lock:
            return worker in self._quarantined

    def quarantined(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._quarantined)


@dataclass
class AuditRecord:
    """One sampled point's in-memory audit state."""

    campaign: str
    key: str
    original_worker: str
    original_fingerprint: str
    status: str = "pending"   # -> running -> passed | arbitrating
    #                            -> repaired | rejected | unresolved
    audit_worker: Optional[str] = None
    attempts: int = 0
    generation: int = 0


class IntegrityMonitor:
    """The daemon's integrity brain: audit book + reputation + counters.

    Thread-safe; the daemon calls in from the scheduler loop (sampling),
    the HTTP handler threads (claim/renew/complete routing), the reaper
    (lease-expiry blame), and the supervisor (crash blame).
    ``run_config`` is the arbitration executor — ``RunConfig -> entry``;
    the default (installed by the daemon) simulates locally, tests
    inject a stub.
    """

    def __init__(self, config: Optional[IntegrityConfig] = None,
                 run_config: Optional[Callable] = None,
                 events=None, log: Optional[Callable[[str], None]] = None):
        self.config = config or IntegrityConfig()
        self.run_config = run_config
        self.events = events
        self._log = log or (lambda msg: None)
        self.reputation = WorkerReputation(
            threshold=self.config.quarantine_threshold,
            window=self.config.reputation_window)
        self._records: Dict[Tuple[str, str], AuditRecord] = {}
        self._lock = threading.RLock()
        self._seq = 0
        # Counters behind the repro_service_audit_* metrics.
        self.audits_scheduled = 0
        self.audits_passed = 0
        self.audit_mismatches = 0
        self.audits_repaired = 0
        self.audits_rejected = 0
        self.audits_unresolved = 0
        self.complete_rejects = 0

    # ---------------------------------------------------------- sampling
    def consider(self, campaign: str, journal: CampaignJournal, key: str,
                 shard: Dict) -> bool:
        """Maybe schedule one done point for audit; True when scheduled.

        Only worker-sourced completions are sampled: cache hits were
        verified when first computed, and audit completions are the
        verification.  Idempotent — a shard that already carries an
        ``audit`` sub-document is never re-sampled.
        """
        if shard.get("status") != "done" or shard.get("entry") is None:
            return False
        if shard.get("source", "worker") != "worker":
            return False
        if shard.get("audit") is not None:
            return False
        if not should_audit(key, self.config.audit_rate,
                            self.config.audit_seed):
            journal.mark(key, "done", audit={"status": "skipped"})
            return False
        record = AuditRecord(
            campaign=campaign, key=key,
            original_worker=str(shard.get("completed_by") or "?"),
            original_fingerprint=entry_fingerprint(shard["entry"]))
        with self._lock:
            if (campaign, key) in self._records:
                return False
            self._seq += 1
            record.generation = _AUDIT_GENERATION_BASE + self._seq
            self._records[(campaign, key)] = record
            self.audits_scheduled += 1
        journal.mark(key, "done", audit={"status": "pending"})
        self._log(f"audit scheduled for {campaign}/{key} "
                  f"(completed by {record.original_worker})")
        return True

    def adopt(self, campaign: str, journal: CampaignJournal) -> int:
        """Re-adopt persisted audit state after a daemon restart.

        ``pending``/``running``/``arbitrating`` audits restart from
        ``pending`` — the in-flight execution (if any) will be fenced by
        the monitor simply not knowing its worker.
        """
        adopted = 0
        manifest = journal.load_manifest() or {}
        for point in manifest.get("points", ()):
            key = point["key"]
            shard = journal.read_point(key) or {}
            audit = shard.get("audit") or {}
            if audit.get("status") not in AUDIT_ACTIVE_STATUSES:
                continue
            if shard.get("status") != "done" or shard.get("entry") is None:
                continue
            record = AuditRecord(
                campaign=campaign, key=key,
                original_worker=str(shard.get("completed_by") or "?"),
                original_fingerprint=entry_fingerprint(shard["entry"]))
            with self._lock:
                if (campaign, key) in self._records:
                    continue
                self._seq += 1
                record.generation = _AUDIT_GENERATION_BASE + self._seq
                self._records[(campaign, key)] = record
            journal.mark(key, "done", audit={"status": "pending"})
            adopted += 1
        return adopted

    # -------------------------------------------------------- assignment
    def pending_audits(self, campaign: str) -> int:
        """Audits still holding this campaign open (any active status)."""
        with self._lock:
            return sum(1 for (cid, _), r in self._records.items()
                       if cid == campaign
                       and r.status in AUDIT_ACTIVE_STATUSES)

    def assignable(self, campaign: str, worker: str) -> bool:
        """Is there a pending audit this worker may legally run?"""
        if self.reputation.is_quarantined(worker):
            return False
        with self._lock:
            return any(r.status == "pending" and r.original_worker != worker
                       for (cid, _), r in self._records.items()
                       if cid == campaign)

    def assign(self, campaign: str, journal: CampaignJournal,
               worker: str) -> Optional[Tuple[str, Dict]]:
        """Hand one pending audit to ``worker``; ``(key, shard)`` or None.

        The audit is pinned away from the original completer — a worker
        cannot vouch for itself — and the returned shard carries
        ``audit: true`` plus a synthetic generation so the worker's
        idempotency keys cannot collide with the original completion's.
        """
        if self.reputation.is_quarantined(worker):
            return None
        with self._lock:
            candidates = sorted(
                (key for (cid, key), r in self._records.items()
                 if cid == campaign and r.status == "pending"
                 and r.original_worker != worker))
            if not candidates:
                return None
            key = candidates[0]
            record = self._records[(campaign, key)]
            record.status = "running"
            record.audit_worker = worker
            record.attempts += 1
            generation = record.generation
        journal.mark(key, "done", audit={"status": "running",
                                         "worker": worker})
        shard = {"key": key, "status": "done", "audit": True,
                 "generation": generation, "worker": worker}
        self._log(f"audit of {campaign}/{key} assigned to {worker}")
        return key, shard

    def audit_renew(self, campaign: str, key: str,
                    worker: str) -> Optional[bool]:
        """Route an audit-run renew: True ok, False fenced, None not ours."""
        with self._lock:
            record = self._records.get((campaign, key))
            if record is None or record.status != "running":
                return None
            return record.audit_worker == worker

    def is_auditing(self, campaign: str, key: str) -> bool:
        with self._lock:
            record = self._records.get((campaign, key))
            return record is not None and record.status in ("running",
                                                            "arbitrating")

    # -------------------------------------------------------- completion
    def on_audit_complete(self, campaign: str, journal: CampaignJournal,
                          key: str, worker: str, entry: Dict,
                          cache=None, config=None,
                          arbitrate_async: bool = True) -> Optional[Dict]:
        """Fold an audit run's result in; None when (cid, key) isn't ours.

        A fingerprint match closes the audit (``passed``).  A mismatch
        opens arbitration: a third, daemon-local execution votes, and
        :meth:`_arbitrate` repairs or rejects accordingly.  Arbitration
        runs on a background thread by default so the completing
        worker's HTTP request is never blocked on a simulation.
        """
        with self._lock:
            record = self._records.get((campaign, key))
            if record is None or record.status != "running":
                return None
            if record.audit_worker != worker:
                # A late completion from some fenced-out third worker is
                # not the audit vote; let first-done-wins dispose of it.
                return None
            fingerprint = entry_fingerprint(entry)
            if fingerprint == record.original_fingerprint:
                record.status = "passed"
                self.audits_passed += 1
                matched = True
            else:
                record.status = "arbitrating"
                self.audit_mismatches += 1
                matched = False
        if matched:
            journal.mark(key, "done", audit={"status": "passed",
                                             "worker": worker})
            self._log(f"audit passed for {campaign}/{key} (by {worker})")
            return {"audit": "passed"}
        journal.mark(key, "done", audit={"status": "arbitrating",
                                         "worker": worker})
        if self.events is not None:
            self.events.audit_mismatch(campaign, key,
                                       record.original_worker, worker)
        self._log(f"AUDIT MISMATCH on {campaign}/{key}: "
                  f"{record.original_worker} vs {worker}; arbitrating")
        if arbitrate_async:
            threading.Thread(
                target=self._arbitrate_safely,
                args=(campaign, journal, key, worker, entry, cache, config),
                name=f"repro-arbitrate-{key[:12]}", daemon=True).start()
        else:
            self._arbitrate_safely(campaign, journal, key, worker, entry,
                                   cache, config)
        return {"audit": "mismatch"}

    def on_audit_fail(self, campaign: str, journal: CampaignJournal,
                      key: str, worker: str, error: str) -> Optional[Dict]:
        """An audit run errored: requeue it (bounded) — not a mismatch."""
        with self._lock:
            record = self._records.get((campaign, key))
            if record is None or record.status != "running":
                return None
            if record.audit_worker != worker:
                return None
            if record.attempts >= _MAX_AUDIT_ATTEMPTS:
                record.status = "unresolved"
                self.audits_unresolved += 1
                status = "unresolved"
            else:
                record.status = "pending"
                record.audit_worker = None
                status = "pending"
        journal.mark(key, "done", audit={"status": status, "error": error})
        self._log(f"audit run of {campaign}/{key} failed on {worker} "
                  f"({error}); {status}")
        return {"audit": status}

    # ------------------------------------------------------- arbitration
    def _arbitrate_safely(self, *args) -> None:
        try:
            self._arbitrate(*args)
        except Exception as exc:  # noqa: BLE001 - must never kill the daemon
            self._log(f"arbitration error: {exc}")

    def _arbitrate(self, campaign: str, journal: CampaignJournal, key: str,
                   audit_worker: str, audit_entry: Dict,
                   cache=None, config=None) -> None:
        """Third execution + majority vote; repair or reject accordingly."""
        with self._lock:
            record = self._records.get((campaign, key))
        if record is None:
            return
        shard = journal.read_point(key) or {}
        original_entry = shard.get("entry")
        original_fp = record.original_fingerprint
        audit_fp = entry_fingerprint(audit_entry)
        tie_fp = None
        tie_error = None
        if self.run_config is not None and config is not None:
            try:
                tie_fp = entry_fingerprint(self.run_config(config))
            except Exception as exc:  # noqa: BLE001
                tie_error = f"{type(exc).__name__}: {exc}"

        if tie_fp == audit_fp:
            verdict = "repaired"       # 2:1 against the original entry
            loser_worker = record.original_worker
            winner_entry, loser_entry = audit_entry, original_entry
        elif tie_fp == original_fp:
            verdict = "rejected"       # 2:1 against the audit entry
            loser_worker = audit_worker
            winner_entry, loser_entry = original_entry, audit_entry
        else:
            verdict = "unresolved"     # three-way split (or no tie-break)
            loser_worker = None
            winner_entry, loser_entry = original_entry, audit_entry

        report = {
            "kind": "integrity_violation",
            "campaign": campaign, "key": key, "verdict": verdict,
            "original_worker": record.original_worker,
            "audit_worker": audit_worker,
            "original_fingerprint_sha256":
                hashlib.sha256(original_fp.encode()).hexdigest(),
            "audit_fingerprint_sha256":
                hashlib.sha256(audit_fp.encode()).hexdigest(),
            "tiebreak_fingerprint_sha256":
                (hashlib.sha256(tie_fp.encode()).hexdigest()
                 if tie_fp is not None else None),
            "tiebreak_error": tie_error,
            "blamed_worker": loser_worker,
            "unix": round(time.time(), 3),
        }
        violation = IntegrityViolation(campaign, key, report)

        # Quarantine the losing entry's bytes (evidence, not deletion),
        # then atomically install the winner in the journal (+ cache).
        if loser_entry is not None and verdict in ("repaired", "rejected"):
            evidence = journal.root / f"{key}.audit-loser.json"
            atomic_write_json(evidence,
                              {"entry": loser_entry, "worker": loser_worker,
                               "verdict": verdict}, indent=1, sort_keys=True)
            quarantine_shard(evidence, self.events, "integrity")
        if verdict == "repaired":
            repaired = {k: v for k, v in shard.items()
                        if k not in ("entry", "completed_by", "source")}
            repaired["entry"] = winner_entry
            repaired["completed_by"] = audit_worker
            repaired["source"] = "audit"
            repaired["repaired_from"] = record.original_worker
            repaired["audit"] = {"status": "repaired",
                                 "worker": audit_worker}
            journal.write_point(key, repaired)
            if cache is not None and config is not None:
                # The cache shard holds the corrupted bytes: quarantine
                # it for the post-mortem, then publish the winner.
                quarantine_shard(cache.path_for(config), self.events,
                                 "runcache-integrity")
                cache.put(config, winner_entry)
        else:
            journal.mark(key, "done",
                         audit={"status": verdict, "worker": audit_worker})

        atomic_write_json(journal.root / f"{key}.integrity.json",
                          report, indent=1, sort_keys=True)

        with self._lock:
            record.status = verdict
            if verdict == "repaired":
                self.audits_repaired += 1
            elif verdict == "rejected":
                self.audits_rejected += 1
            else:
                self.audits_unresolved += 1
        if loser_worker is not None:
            self.record_misbehaviour(loser_worker, "mismatch")
        self._log(f"arbitration on {campaign}/{key}: {verdict} "
                  f"(blamed: {loser_worker}): {violation}")

    # -------------------------------------------------------- reputation
    def record_misbehaviour(self, worker: str, kind: str) -> bool:
        """Fold one reputation event in; True when it quarantines."""
        newly = self.reputation.record(worker, kind)
        if newly:
            score = self.reputation.score(worker)
            if self.events is not None:
                self.events.worker_quarantined(worker, score, kind)
            self._log(f"worker {worker} QUARANTINED "
                      f"(score {score:.1f} >= "
                      f"{self.reputation.threshold:.1f}, last: {kind})")
        return newly

    def is_quarantined(self, worker: str) -> bool:
        return self.reputation.is_quarantined(worker)

    # ----------------------------------------------------------- metrics
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "audits_scheduled": self.audits_scheduled,
                "audits_passed": self.audits_passed,
                "audit_mismatches": self.audit_mismatches,
                "audits_repaired": self.audits_repaired,
                "audits_rejected": self.audits_rejected,
                "audits_unresolved": self.audits_unresolved,
                "complete_rejects": self.complete_rejects,
            }

    def records(self) -> List[AuditRecord]:
        with self._lock:
            return list(self._records.values())
