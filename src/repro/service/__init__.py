"""Campaign service: simulation-as-a-service on top of the journal.

The harness packages built every single-host primitive — the sharded
atomic :class:`~repro.harness.runcache.RunCache`, the write-ahead
:class:`~repro.harness.campaign.CampaignJournal` with bit-identical
resume, and the live telemetry endpoint.  This package lifts them into a
standing service:

* :mod:`repro.service.lease` — the lease layer: workers *claim* journal
  points through an atomic exclusive-create protocol, renew a lease while
  simulating, and a reaper requeues points whose lease lapsed, so a
  SIGKILLed worker loses its in-flight work but never strands it.
* :mod:`repro.service.queue` — submission specs, tenants, quotas,
  priorities, weighted fair scheduling, and back-pressure accounting.
* :mod:`repro.service.worker` — the pull-model worker loop: claim a
  point, simulate it (renewing the lease from the heartbeat hook), flush
  the result to the journal and run cache, repeat.  Runs against a
  journal directory directly or connected to a daemon over HTTP.
* :mod:`repro.service.daemon` — the long-running asyncio daemon: an
  HTTP/JSON API (``POST /campaigns``, status/results/stream routes, the
  five ``POST`` lease endpoints of the remote-execution protocol), an
  in-daemon worker pool, the lease reaper, and Prometheus service gauges.
* :mod:`repro.service.httpclient` — the resilient worker-side HTTP
  client: timeouts, deterministic-jitter retries, status-aware error
  handling, a circuit breaker, idempotency keys.
* :mod:`repro.service.transport` — the worker's execution surface:
  :class:`~repro.service.transport.LocalJournal` over a mounted campaign
  directory, :class:`~repro.service.transport.RemoteJournal` over the
  daemon's lease protocol (filesystem-free workers).
* :mod:`repro.service.chaosproxy` — a seeded network-fault proxy
  (latency, drops, 500s, truncation, duplicate delivery, response-body
  corruption) the chaos suites and CI put between workers and the
  daemon.
* :mod:`repro.service.integrity` — the result-integrity subsystem:
  seeded sampled audit re-execution on a *different* worker, fingerprint
  voting with a daemon-side tie-break on mismatch, per-worker reputation
  scores that quarantine misbehaving workers, and the poison-point
  breaker that stops a crash-looping config from burning the fleet.
"""

from repro.service.lease import (DEFAULT_LEASE_SECONDS, LeaseLost,
                                 claim_next, claim_point, complete_point,
                                 fail_point, reap_expired, release_point,
                                 renew_lease)
from repro.service.queue import (BackPressure, CampaignRecord, ServiceState,
                                 SweepSpec, TenantPolicy, ValidationError,
                                 configs_from_spec)
from repro.service.httpclient import (CircuitOpen, ClientStats,
                                      HttpStatusError, NotFound,
                                      ServiceClient, TransportError)
from repro.service.transport import (LocalJournal, RemoteJournal,
                                     config_from_doc, config_to_doc)
from repro.service.chaosproxy import ChaosProxy, FaultPlan
from repro.service.integrity import (IntegrityConfig, IntegrityMonitor,
                                     IntegrityViolation, WorkerReputation,
                                     should_audit)
from repro.service.worker import WorkerOptions, work_campaign_dir, work_service
from repro.service.daemon import CampaignService, ServiceConfig

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "LeaseLost",
    "claim_point",
    "claim_next",
    "renew_lease",
    "complete_point",
    "fail_point",
    "release_point",
    "reap_expired",
    "SweepSpec",
    "ValidationError",
    "BackPressure",
    "TenantPolicy",
    "CampaignRecord",
    "ServiceState",
    "configs_from_spec",
    "ServiceClient",
    "ClientStats",
    "HttpStatusError",
    "NotFound",
    "TransportError",
    "CircuitOpen",
    "LocalJournal",
    "RemoteJournal",
    "config_to_doc",
    "config_from_doc",
    "ChaosProxy",
    "FaultPlan",
    "IntegrityConfig",
    "IntegrityMonitor",
    "IntegrityViolation",
    "WorkerReputation",
    "should_audit",
    "WorkerOptions",
    "work_campaign_dir",
    "work_service",
    "CampaignService",
    "ServiceConfig",
]
