"""In-process network-chaos proxy for the worker<->daemon protocol.

A tiny TCP proxy that sits between workers and the campaign daemon and
injects the failures a real network provides for free, from a *seeded*
fault plan so every chaos run is reproducible:

* **latency** — a drawn delay before the request is forwarded;
* **drop** — the client connection is closed before anything is
  forwarded (connection-reset / empty-response territory);
* **error** — an HTTP 500 is synthesized and returned without the
  request ever reaching the daemon;
* **truncate** — the request is forwarded but only half of the daemon's
  response bytes come back before the connection closes (the
  dropped-response shape that makes idempotency keys earn their keep);
* **duplicate** — the request is delivered to the daemon *twice* and the
  client sees only the second response — exactly what a retried publish
  looks like daemon-side, so first-done-wins and the idempotency store
  get exercised against real double deliveries;
* **corrupt** — one byte of the daemon's response *body* to a
  ``POST /complete`` is flipped in flight (length-preserving XOR, so
  Content-Length still matches).  The garbled JSON fails to parse
  client-side and is retried under the same idempotency key — wire
  corruption that a checksumless protocol would swallow becomes just
  another retriable failure, distinct from the *silent* worker-side
  corruption (``REPRO_SERVICE_INJECT`` ``corrupt_after_claims``) that
  only the audit subsystem can catch.

The proxy assumes one HTTP request per connection, which is what both
``urllib`` clients and the daemon's HTTP/1.0 responses produce; it reads
one request (headers + ``Content-Length`` body), forwards it, and
streams the response until the daemon closes.  ``retarget()`` repoints
the backend — how the chaos suites restart a daemon on a new port while
workers keep hammering one stable proxy URL.

Also runnable as a process for CI::

    python -m repro.service.chaosproxy --port 8342 \\
        --backend 127.0.0.1:8341 --seed 7 --error-rate 0.15 \\
        --drop-rate 0.10 --truncate-rate 0.10 --duplicate-rate 0.10 \\
        --latency-rate 0.3 --latency-seconds 0.05
"""

import argparse
import random
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultPlan", "ChaosProxy"]

_MAX_HEAD = 64 * 1024
_IO_TIMEOUT = 30.0

# The order faults are drawn per connection. Fixed so a (seed, plan)
# pair names one exact fault sequence regardless of host or run.
# "corrupt" was appended (never insert mid-tuple: existing seeded runs
# must keep replaying the same drop/error/... prefix).
FAULTS = ("drop", "error", "truncate", "duplicate", "latency", "corrupt")


@dataclass
class FaultPlan:
    """Seeded per-connection fault probabilities.

    Each accepted connection draws one uniform variate per fault kind,
    in :data:`FAULTS` order, from a single ``random.Random(seed)``
    stream — the plan is a pure function of (seed, connection index), so
    a failing chaos run replays exactly.
    """

    seed: int = 0
    drop_rate: float = 0.0
    error_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.05
    corrupt_rate: float = 0.0

    def __post_init__(self):
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def draw(self) -> Dict[str, bool]:
        """The fault set for the next connection (deterministic order)."""
        with self._lock:
            rolls = {name: self._rng.random() for name in FAULTS}
        return {
            "drop": rolls["drop"] < self.drop_rate,
            "error": rolls["error"] < self.error_rate,
            "truncate": rolls["truncate"] < self.truncate_rate,
            "duplicate": rolls["duplicate"] < self.duplicate_rate,
            "latency": rolls["latency"] < self.latency_rate,
            "corrupt": rolls["corrupt"] < self.corrupt_rate,
        }


_ERROR_BODY = b'{"error": "chaos-injected 500"}\n'
_ERROR_RESPONSE = (b"HTTP/1.0 500 Internal Server Error\r\n"
                   b"Content-Type: application/json\r\n"
                   b"Content-Length: " + str(len(_ERROR_BODY)).encode()
                   + b"\r\nConnection: close\r\n\r\n" + _ERROR_BODY)


class ChaosProxy:
    """One listening socket in front of one (retargetable) backend."""

    def __init__(self, backend_host: str, backend_port: int,
                 plan: Optional[FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 log: bool = False):
        self.plan = plan or FaultPlan()
        self.host = host
        self._requested_port = port
        self._backend = (backend_host, int(backend_port))
        self._backend_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._log_enabled = log
        self.connections = 0
        self.injected: Dict[str, int] = {name: 0 for name in FAULTS}
        self.forwarded = 0
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------ control
    @property
    def port(self) -> int:
        return self._listener.getsockname()[1] if self._listener else 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def backend(self) -> Tuple[str, int]:
        with self._backend_lock:
            return self._backend

    def retarget(self, host: str, port: int) -> None:
        """Point at a new backend (daemon restarted on another port)."""
        with self._backend_lock:
            self._backend = (host, int(port))

    def start(self) -> "ChaosProxy":
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self._requested_port))
        self._listener.listen(64)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-proxy", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def counters(self) -> Dict:
        with self._counters_lock:
            return {"connections": self.connections,
                    "forwarded": self.forwarded,
                    "injected": dict(self.injected)}

    def _log(self, msg: str) -> None:
        if self._log_enabled:
            print(f"chaosproxy: {msg}", file=sys.stderr, flush=True)

    def _count(self, name: str) -> None:
        with self._counters_lock:
            self.injected[name] += 1

    # ------------------------------------------------------- connections
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._counters_lock:
                self.connections += 1
            faults = self.plan.draw()
            threading.Thread(target=self._serve, args=(conn, faults),
                             daemon=True).start()

    def _serve(self, conn: socket.socket, faults: Dict[str, bool]) -> None:
        try:
            conn.settimeout(_IO_TIMEOUT)
            if faults["latency"]:
                self._count("latency")
                time.sleep(self.plan.latency_seconds)
            if faults["drop"]:
                self._count("drop")
                self._log("drop: closing client connection unforwarded")
                return
            request = _read_http_message(conn)
            if request is None:
                return
            if faults["error"]:
                self._count("error")
                self._log("error: synthesizing 500")
                conn.sendall(_ERROR_RESPONSE)
                return
            deliveries = 2 if faults["duplicate"] else 1
            if faults["duplicate"]:
                self._count("duplicate")
                self._log("duplicate: delivering request twice")
            response = b""
            for _ in range(deliveries):
                response = self._exchange(request)
                if response is None:
                    return  # backend unreachable: client sees the reset
            with self._counters_lock:
                self.forwarded += 1
            if faults["truncate"] and len(response) > 1:
                self._count("truncate")
                self._log(f"truncate: sending {len(response) // 2}"
                          f"/{len(response)} bytes")
                conn.sendall(response[:len(response) // 2])
                return
            if faults["corrupt"]:
                corrupted = _corrupt_complete_response(request, response)
                if corrupted is not None:
                    self._count("corrupt")
                    self._log("corrupt: flipping one /complete "
                              "response-body byte")
                    response = corrupted
            conn.sendall(response)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _exchange(self, request: bytes) -> Optional[bytes]:
        """One full request/response round-trip with the backend."""
        host, port = self.backend()
        try:
            with socket.create_connection((host, port),
                                          timeout=_IO_TIMEOUT) as upstream:
                upstream.sendall(request)
                chunks: List[bytes] = []
                while True:
                    chunk = upstream.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                return b"".join(chunks)
        except OSError:
            return None


def _corrupt_complete_response(request: bytes,
                               response: bytes) -> Optional[bytes]:
    """Flip one body byte of a ``POST /complete`` response, or None.

    Length-preserving (XOR 0x01 on the first body byte), so the
    Content-Length header stays truthful and the client reads the full
    — garbled — body.  Only ``/complete`` responses are touched: that is
    the exchange whose loss-or-garbling the publish retry loop must
    absorb without double-applying.
    """
    if not request.startswith(b"POST /complete"):
        return None
    head, sep, body = response.partition(b"\r\n\r\n")
    if not sep or not body:
        return None
    flipped = bytes([body[0] ^ 0x01]) + body[1:]
    return head + sep + flipped


def _read_http_message(conn: socket.socket) -> Optional[bytes]:
    """Read one HTTP request (head + Content-Length body) off ``conn``."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        if len(buf) > _MAX_HEAD:
            return None
        try:
            chunk = conn.recv(65536)
        except OSError:
            return None
        if not chunk:
            return buf or None
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    body = rest
    while len(body) < length:
        try:
            chunk = conn.recv(65536)
        except OSError:
            return None
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaosproxy",
        description="seeded network-chaos proxy for the campaign service")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, printed)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--backend", required=True, metavar="HOST:PORT",
                        help="daemon address to forward to")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--drop-rate", type=float, default=0.0)
    parser.add_argument("--error-rate", type=float, default=0.0)
    parser.add_argument("--truncate-rate", type=float, default=0.0)
    parser.add_argument("--duplicate-rate", type=float, default=0.0)
    parser.add_argument("--latency-rate", type=float, default=0.0)
    parser.add_argument("--latency-seconds", type=float, default=0.05)
    parser.add_argument("--corrupt-rate", type=float, default=0.0,
                        help="byte-flip rate for /complete response "
                             "bodies")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    backend_host, _, backend_port = args.backend.partition(":")
    plan = FaultPlan(seed=args.seed, drop_rate=args.drop_rate,
                     error_rate=args.error_rate,
                     truncate_rate=args.truncate_rate,
                     duplicate_rate=args.duplicate_rate,
                     latency_rate=args.latency_rate,
                     latency_seconds=args.latency_seconds,
                     corrupt_rate=args.corrupt_rate)
    proxy = ChaosProxy(backend_host, int(backend_port or 80), plan=plan,
                       host=args.host, port=args.port, log=args.verbose)
    proxy.start()
    print(f"chaosproxy: {proxy.url} -> {args.backend} "
          f"(seed={args.seed})", flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
        print(f"chaosproxy: {proxy.counters()}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
