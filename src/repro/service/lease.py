"""Lease layer: crash-safe multi-worker work-claiming on the journal.

The campaign journal's per-point atomic status shards already make
*completion* crash-safe (a ``done`` shard survives anything), but the
single-operator sweep left *claiming* to the parent process: a point
stuck ``running`` after a worker crash was only recovered by a manual
``sweep --resume``.  This module turns the shards into a shared work
queue that any number of worker processes — in the daemon's pool or on
other hosts over a shared filesystem — can pull from safely:

* **Claiming** is atomic and generation-scoped.  Every shard carries a
  ``generation`` counter (bumped on every requeue); to claim a pending
  point a worker exclusively creates the marker file
  ``<key>.g<generation>.claim`` (``O_CREAT | O_EXCL`` — the one
  filesystem primitive that cannot double-fire), and only the winner
  rewrites the shard to ``running`` with its worker id and lease expiry.
  Two processes racing the same point resolve to exactly one winner; the
  loser moves on to the next key.
* **Leases** bound how long a claim is trusted.  The owning worker
  renews from its simulation heartbeat hook (folding the latest
  heartbeat payload into the shard, so watchers see live progress); a
  worker that discovers its lease was reaped gets :class:`LeaseLost` and
  abandons the point instead of fighting the new owner.
* **The reaper** (:func:`reap_expired`) requeues points whose lease
  lapsed — SIGKILLed workers lose their in-flight work but never strand
  it — and heals the two rarer wounds: a claim marker orphaned by a
  worker that died between marker and shard write, and a shard file that
  vanished entirely.
* **Completion is idempotent.**  Simulations are deterministic, so a
  worker whose lease was stolen may still finish and publish: the first
  ``done`` wins, every later completion of the same point is a no-op
  (:func:`complete_point` returns False).  Duplicate compute is the
  worst case; divergent or stranded state is impossible.
* **Poison points stop crash loops.**  Every failed attempt (an
  explicit :func:`fail_point` or a lease that lapsed mid-run) records
  its worker in the shard's ``failed_workers`` list; when
  :func:`reap_expired` is given ``poison_distinct`` and a point has now
  failed under that many *distinct* workers, the fault is the point's,
  not the fleet's, and the shard transitions to the terminal
  ``poisoned`` status instead of requeueing forever and burning every
  worker in turn.
"""

import os
import pathlib
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.campaign import CampaignJournal

__all__ = ["DEFAULT_LEASE_SECONDS", "LeaseLost", "claim_point", "claim_next",
           "renew_lease", "complete_point", "fail_point", "release_point",
           "reap_expired", "lease_fields"]

DEFAULT_LEASE_SECONDS = 30.0

# Shard fields owned by the lease layer; stripped when a point leaves
# ``running`` so stale lease data can never shadow a fresh claim.
_LEASE_FIELDS = ("worker", "lease_expires_unix", "lease_renewed_unix", "hb")


class LeaseLost(RuntimeError):
    """This worker's lease on a point was reaped or stolen.

    Raised from :func:`renew_lease` (typically inside the simulation
    heartbeat hook) so the worker can abandon the point promptly instead
    of racing the new owner to completion.
    """

    def __init__(self, key: str, worker: str, holder: Optional[str] = None):
        self.key = key
        self.worker = worker
        self.holder = holder
        super().__init__(f"lease on {key} lost by {worker}"
                         + (f" (now held by {holder})" if holder else ""))


def _marker_path(journal: CampaignJournal, key: str,
                 generation: int) -> pathlib.Path:
    return journal.root / f"{key}.g{generation}.claim"


def lease_fields(worker: str, lease_seconds: float,
                 now: Optional[float] = None) -> Dict:
    now = time.time() if now is None else now
    return {
        "worker": worker,
        "lease_renewed_unix": round(now, 3),
        "lease_expires_unix": round(now + lease_seconds, 3),
    }


def _strip_lease(doc: Dict) -> Dict:
    for field in _LEASE_FIELDS:
        doc.pop(field, None)
    return doc


def claim_point(journal: CampaignJournal, key: str, worker: str,
                lease_seconds: float = DEFAULT_LEASE_SECONDS,
                now: Optional[float] = None) -> Optional[Dict]:
    """Try to claim one ``pending`` point; returns the running shard or None.

    The claim is atomic: the marker file for the shard's current
    generation is created with ``O_CREAT | O_EXCL``, so of any number of
    racing claimers exactly one proceeds.  Only pending shards are
    claimable — an expired ``running`` shard must be requeued first
    (see :func:`reap_expired` / :func:`claim_next`), which bumps the
    generation and thereby invalidates the old owner's renewals.
    """
    now = time.time() if now is None else now
    doc = journal.read_point(key)
    if doc is None or doc.get("status") != "pending":
        return None
    generation = int(doc.get("generation", 0))
    marker = _marker_path(journal, key, generation)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None  # somebody else holds (or held) this generation
    except OSError:
        return None
    with os.fdopen(fd, "w") as fh:
        fh.write(f"{worker} {now:.3f}\n")
    # We own generation `generation` exclusively: every pending->running
    # transition goes through this marker, and requeues only touch
    # running/failed shards, so this write cannot race another claimer.
    doc = _strip_lease(dict(doc))
    doc["status"] = "running"
    doc["generation"] = generation
    doc["attempts"] = int(doc.get("attempts", 0)) + 1
    doc.update(lease_fields(worker, lease_seconds, now))
    claimed = journal.write_point(key, doc)
    try:
        os.unlink(marker)
    except OSError:
        pass
    return claimed


def _blame(fields: Dict, worker: Optional[str]) -> List[str]:
    """Append ``worker`` to the shard's distinct ``failed_workers`` list."""
    workers = [w for w in fields.get("failed_workers", ()) if w]
    if worker and worker not in workers:
        workers.append(worker)
    fields["failed_workers"] = workers
    return workers


def _requeue(journal: CampaignJournal, key: str, doc: Dict,
             reason: str) -> Dict:
    """Requeue one shard to ``pending`` in place, bumping the generation.

    The bump is what fences the old owner: its renewals check worker
    identity against the rewritten shard and raise :class:`LeaseLost`.
    Idempotent under races — two reapers writing the same requeue produce
    identical shards.  A ``lease_expired`` requeue blames the dead
    worker in ``failed_workers`` (it cannot report its own failure), so
    the poison-point breaker sees crash loops, not just clean failures.
    """
    fields = _strip_lease(dict(doc))
    if reason == "lease_expired":
        _blame(fields, doc.get("worker"))
    fields["status"] = "pending"
    fields["generation"] = int(doc.get("generation", 0)) + 1
    fields["requeued"] = reason
    fields.pop("error", None)
    return journal.write_point(key, fields)


def _poison(journal: CampaignJournal, key: str, doc: Dict,
            error: Optional[str] = None) -> Dict:
    """Terminal ``poisoned`` transition: this point eats workers."""
    fields = _strip_lease(dict(doc))
    fields["status"] = "poisoned"
    fields["poisoned_unix"] = round(time.time(), 3)
    if error:
        fields["error"] = error
    return journal.write_point(key, fields)


def claim_next(journal: CampaignJournal, keys: Sequence[str], worker: str,
               lease_seconds: float = DEFAULT_LEASE_SECONDS,
               now: Optional[float] = None) -> Optional[Tuple[str, Dict]]:
    """Claim the first claimable point among ``keys``; ``(key, shard)`` or None.

    Pending points are claimed directly; a ``running`` point whose lease
    has lapsed is requeued in place first (lazy reaping — standalone
    workers get dead-worker recovery even with no daemon reaper running)
    and then contested like any pending point.
    """
    now = time.time() if now is None else now
    for key in keys:
        doc = journal.read_point(key)
        if doc is None:
            continue
        status = doc.get("status")
        if status == "running":
            expires = doc.get("lease_expires_unix")
            if expires is not None and expires < now:
                _requeue(journal, key, doc, "lease_expired")
            else:
                continue
        elif status != "pending":
            continue
        claimed = claim_point(journal, key, worker, lease_seconds, now)
        if claimed is not None:
            return key, claimed
    return None


def renew_lease(journal: CampaignJournal, key: str, worker: str,
                lease_seconds: float = DEFAULT_LEASE_SECONDS,
                hb: Optional[Dict] = None,
                now: Optional[float] = None) -> Dict:
    """Extend this worker's lease; raises :class:`LeaseLost` if it lapsed.

    ``hb`` (a :class:`~repro.obs.live.HeartbeatTicker` payload) is folded
    into the shard so journal watchers see live progress — for leased
    points the shard, not ``live.json``, is the heartbeat channel,
    because each point has exactly one owner and therefore no write
    contention.
    """
    doc = journal.read_point(key)
    if (doc is None or doc.get("status") != "running"
            or doc.get("worker") != worker):
        raise LeaseLost(key, worker,
                        holder=doc.get("worker") if doc else None)
    doc = dict(doc)
    doc.update(lease_fields(worker, lease_seconds, now))
    if hb is not None:
        doc["hb"] = hb
    return journal.write_point(key, doc)


def complete_point(journal: CampaignJournal, key: str, worker: str,
                   entry: Dict, source: str = "worker") -> bool:
    """Publish a finished result; returns False if already ``done``.

    First completion wins; later completions (a worker whose lease was
    stolen finishing anyway) are no-ops.  Results are deterministic, so
    which copy lands is immaterial — idempotence just keeps attempt
    provenance honest.
    """
    doc = journal.read_point(key) or {}
    if doc.get("status") == "done" and doc.get("entry") is not None:
        return False
    fields = _strip_lease(dict(doc))
    fields["status"] = "done"
    fields["entry"] = entry
    fields["source"] = source
    fields["completed_by"] = worker
    fields["attempts_taken"] = int(fields.get("attempts", 1) or 1)
    fields.pop("error", None)
    journal.write_point(key, fields)
    return True


def fail_point(journal: CampaignJournal, key: str, worker: str,
               error: str) -> Dict:
    """Record a failed attempt (the reaper retries up to its cap)."""
    doc = journal.read_point(key) or {}
    fields = _strip_lease(dict(doc))
    fields["status"] = "failed"
    fields["error"] = error
    fields["failed_by"] = worker
    _blame(fields, worker)
    return journal.write_point(key, fields)


def release_point(journal: CampaignJournal, key: str, worker: str) -> bool:
    """Cooperatively hand a claimed-but-unfinished point back (shutdown)."""
    doc = journal.read_point(key)
    if (doc is None or doc.get("status") != "running"
            or doc.get("worker") != worker):
        return False
    _requeue(journal, key, doc, "released")
    return True


def _stale_markers(journal: CampaignJournal, key: str, generation: int,
                   horizon: float) -> List[pathlib.Path]:
    """Claim markers for ``generation`` older than ``horizon`` seconds —
    the signature of a claimer killed between marker and shard write."""
    marker = _marker_path(journal, key, generation)
    try:
        age = time.time() - marker.stat().st_mtime
    except OSError:
        return []
    return [marker] if age > horizon else []


def _distinct_failures(doc: Dict, extra: Optional[str] = None) -> int:
    workers = {w for w in doc.get("failed_workers", ()) if w}
    if extra:
        workers.add(extra)
    return len(workers)


def reap_expired(journal: CampaignJournal,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 now: Optional[float] = None,
                 max_attempts: int = 0,
                 keys: Optional[Iterable[str]] = None,
                 poison_distinct: int = 0
                 ) -> List[Tuple[str, str, Optional[str]]]:
    """Requeue every point whose lease (or claim) lapsed.

    Returns ``(key, reason, worker)`` triples — ``worker`` is the one
    the event implicates (the dead lease owner, the failing worker) or
    None when nobody is (stale claim markers are anonymous), so callers
    can attribute blame without re-reading shards.

    Three wounds heal here, all in place (no ``--resume`` needed):

    * ``running`` with ``lease_expires_unix`` in the past — the owning
      worker is dead or wedged; requeue with reason ``lease_expired``;
    * ``pending`` with a stale claim marker for its generation — a
      claimer died inside the claim window; bump the generation (with
      reason ``stale_claim``) so the orphaned marker can never block the
      point again;
    * ``failed`` with ``attempts`` below ``max_attempts`` (0 disables) —
      requeue with reason ``retry``.

    And one wound is declared incurable: with ``poison_distinct`` > 0, a
    point about to requeue that has already failed under that many
    *distinct* workers transitions to the terminal ``poisoned`` status
    (reason ``poisoned``) instead — the crash-loop breaker that stops
    one pathological config from burning the whole fleet.

    ``keys`` restricts the sweep (default: every manifest point).
    """
    now = time.time() if now is None else now
    if keys is None:
        manifest = journal.load_manifest() or {}
        keys = [p["key"] for p in manifest.get("points", ())]
    reaped: List[Tuple[str, str, Optional[str]]] = []
    for key in keys:
        doc = journal.read_point(key)
        if doc is None:
            continue
        status = doc.get("status")
        if status == "running":
            expires = doc.get("lease_expires_unix")
            if expires is not None and expires < now:
                worker = doc.get("worker")
                if (poison_distinct
                        and _distinct_failures(doc, extra=worker)
                        >= poison_distinct):
                    blamed = dict(doc)
                    _blame(blamed, worker)
                    _poison(journal, key, blamed,
                            error="lease expired under "
                                  f"{_distinct_failures(doc, extra=worker)}"
                                  " distinct workers")
                    reaped.append((key, "poisoned", worker))
                else:
                    _requeue(journal, key, doc, "lease_expired")
                    reaped.append((key, "lease_expired", worker))
        elif status == "pending":
            generation = int(doc.get("generation", 0))
            for marker in _stale_markers(journal, key, generation,
                                         lease_seconds):
                _requeue(journal, key, doc, "stale_claim")
                try:
                    os.unlink(marker)
                except OSError:
                    pass
                reaped.append((key, "stale_claim", None))
        elif status == "failed":
            worker = doc.get("failed_by")
            if (poison_distinct
                    and _distinct_failures(doc) >= poison_distinct):
                _poison(journal, key, doc)
                reaped.append((key, "poisoned", worker))
            elif max_attempts and int(doc.get("attempts", 0)) < max_attempts:
                _requeue(journal, key, doc, "retry")
                reaped.append((key, "retry", worker))
    return reaped
