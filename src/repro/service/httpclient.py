"""Resilient HTTP/JSON client for the worker<->daemon protocol.

``urllib`` alone treats the network as either perfect or fatal; a fleet
of remote workers needs the middle ground.  :class:`ServiceClient` wraps
every request with:

* **per-request timeouts** — a wedged daemon costs one timeout, not a
  hung worker;
* **bounded retries with deterministic backoff** — delays come from
  :func:`repro.harness.parallel.retry_delay` (exponential backoff scaled
  by jitter seeded from the request sequence number), so two reruns of
  the same worker sleep identically: retry storms decorrelate without
  sacrificing reproducibility;
* **status-aware error handling** — ``429`` sleeps the server's
  ``Retry-After`` hint, ``404`` raises :class:`NotFound` immediately
  (the resource is authoritatively gone; retrying is noise), other 4xx
  raise :class:`HttpStatusError` without retry (the request is wrong,
  not the network), and 5xx / connection-refused / timeouts / truncated
  bodies are retried;
* **a circuit breaker** — after ``breaker_threshold`` consecutive
  transport failures the breaker *opens* and requests fail fast with
  :class:`CircuitOpen` for ``breaker_reset_seconds``; then one probe is
  allowed through (*half-open*) and a success closes the breaker.  A
  dead daemon therefore degrades a worker to a slow reconnect loop
  instead of an exit;
* **idempotency keys** — callers tag mutating requests
  (``Idempotency-Key`` header) so a retried publish whose first response
  was dropped mid-flight cannot double-apply daemon-side.

Every request also carries ``X-Repro-Worker``, ``X-Repro-Attempt`` (1 on
the first try) and ``X-Repro-Breaker-Opens`` headers, which is how the
daemon's ``repro_service_http_*`` metrics see client-side retries and
breaker trips without a separate push channel.
"""

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.harness.parallel import retry_delay

__all__ = ["ServiceClient", "ClientStats", "HttpStatusError", "NotFound",
           "TransportError", "CircuitOpen", "BREAKER_CLOSED", "BREAKER_OPEN",
           "BREAKER_HALF_OPEN"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# Ceiling on how long a 429 Retry-After hint is honoured: a confused (or
# hostile) server must not be able to park a worker for an hour.
_MAX_RETRY_AFTER = 30.0


class HttpStatusError(RuntimeError):
    """The daemon answered with a non-2xx status (carried on ``status``)."""

    def __init__(self, status: int, url: str, body: str = "",
                 retry_after: Optional[float] = None):
        self.status = status
        self.url = url
        self.body = body
        self.retry_after = retry_after
        super().__init__(f"HTTP {status} from {url}")

    def json(self) -> Optional[Dict]:
        try:
            doc = json.loads(self.body)
        except (json.JSONDecodeError, TypeError):
            return None
        return doc if isinstance(doc, dict) else None


class NotFound(HttpStatusError):
    """404: the campaign (or route) is authoritatively gone."""


class TransportError(RuntimeError):
    """The network failed on every allowed attempt (connection refused,
    timeout, reset, truncated body)."""

    def __init__(self, url: str, attempts: int, last: BaseException):
        self.url = url
        self.attempts = attempts
        self.last = last
        super().__init__(f"{url} unreachable after {attempts} attempt(s): "
                         f"{type(last).__name__}: {last}")


class CircuitOpen(RuntimeError):
    """The breaker is open: the daemon looked dead recently; fail fast."""

    def __init__(self, base_url: str, retry_in: float):
        self.base_url = base_url
        self.retry_in = max(0.0, retry_in)
        super().__init__(f"circuit open for {base_url}; "
                         f"retry in {self.retry_in:.1f}s")


@dataclass
class ClientStats:
    """Counters one client accumulated (folded into worker reports)."""

    requests: int = 0        # logical requests (not attempts)
    attempts: int = 0
    retries: int = 0         # attempts beyond the first
    failures: int = 0        # requests that exhausted every attempt
    status_429: int = 0
    breaker_opens: int = 0
    breaker_fast_fails: int = 0
    slept_seconds: float = 0.0
    by_status: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        doc = dict(self.__dict__)
        doc["by_status"] = {str(k): v for k, v in self.by_status.items()}
        doc["slept_seconds"] = round(self.slept_seconds, 3)
        return doc


class ServiceClient:
    """One daemon endpoint, wrapped in retries + a circuit breaker.

    Thread-compatible for the worker's use (one loop thread plus the
    heartbeat hook running in the same thread); the breaker state is
    plain attributes guarded by the GIL, and the deterministic-jitter
    sequence number only orders delays, so benign races cost nothing.
    """

    def __init__(self, base_url: str,
                 worker_id: str = "",
                 timeout: float = 10.0,
                 retries: int = 4,
                 backoff: float = 0.25,
                 max_delay: float = 4.0,
                 breaker_threshold: int = 5,
                 breaker_reset_seconds: float = 5.0,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic):
        self.base_url = base_url.rstrip("/")
        self.worker_id = worker_id
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.max_delay = max_delay
        self.breaker_threshold = max(1, breaker_threshold)
        self.breaker_reset_seconds = breaker_reset_seconds
        self.stats = ClientStats()
        self._sleep = sleep
        self._clock = clock
        self._seq = 0                 # deterministic-jitter request index
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None

    # ----------------------------------------------------------- breaker
    def breaker_state(self) -> str:
        if self._opened_at is None:
            return BREAKER_CLOSED
        if self._clock() - self._opened_at >= self.breaker_reset_seconds:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def breaker_retry_in(self) -> float:
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.breaker_reset_seconds
                   - (self._clock() - self._opened_at))

    def _record_transport_failure(self) -> None:
        self._consecutive_failures += 1
        if (self._consecutive_failures >= self.breaker_threshold
                and self._opened_at is None):
            self._opened_at = self._clock()
            self.stats.breaker_opens += 1

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None

    def _reopen(self) -> None:
        """A half-open probe failed: open again for a fresh reset window."""
        self._opened_at = self._clock()
        self.stats.breaker_opens += 1

    # ---------------------------------------------------------- requests
    def get(self, path: str) -> Dict:
        return self.request("GET", path)

    def post(self, path: str, doc: Optional[Dict] = None,
             idempotency_key: Optional[str] = None) -> Dict:
        return self.request("POST", path, doc=doc,
                            idempotency_key=idempotency_key)

    def request(self, method: str, path: str, doc: Optional[Dict] = None,
                idempotency_key: Optional[str] = None) -> Dict:
        """One logical request; returns the parsed JSON body.

        Raises :class:`NotFound` / :class:`HttpStatusError` for
        authoritative server answers, :class:`TransportError` when every
        attempt failed on the wire, :class:`CircuitOpen` without touching
        the network while the breaker is open.
        """
        state = self.breaker_state()
        if state == BREAKER_OPEN:
            self.stats.breaker_fast_fails += 1
            raise CircuitOpen(self.base_url, self.breaker_retry_in())
        half_open_probe = state == BREAKER_HALF_OPEN

        url = self.base_url + path
        self.stats.requests += 1
        self._seq += 1
        seq = self._seq
        # A half-open probe gets exactly one attempt: its job is to test
        # the daemon, not to grind through a retry budget.
        budget = 1 if half_open_probe else self.retries + 1
        last_exc: BaseException = RuntimeError("no attempt made")
        attempt = 0
        while attempt < budget:
            attempt += 1
            self.stats.attempts += 1
            if attempt > 1:
                self.stats.retries += 1
            try:
                body = self._attempt(method, url, doc, attempt,
                                     idempotency_key)
            except HttpStatusError as exc:
                self.stats.by_status[exc.status] = \
                    self.stats.by_status.get(exc.status, 0) + 1
                if exc.status == 429:
                    # The server is alive and telling us to slow down.
                    self._record_success()
                    self.stats.status_429 += 1
                    hint = min(exc.retry_after
                               if exc.retry_after is not None else
                               retry_delay(seq, attempt, self.backoff,
                                           self.max_delay),
                               _MAX_RETRY_AFTER)
                    last_exc = exc
                    if attempt < budget:
                        self._do_sleep(hint)
                        continue
                    raise TransportError(url, attempt, exc) from exc
                if exc.status >= 500:
                    last_exc = exc
                    if half_open_probe:
                        self._reopen()
                        raise TransportError(url, attempt, exc) from exc
                    self._record_transport_failure()
                    if (attempt < budget
                            and self.breaker_state() != BREAKER_OPEN):
                        self._do_sleep(retry_delay(seq, attempt,
                                                   self.backoff,
                                                   self.max_delay))
                        continue
                    self.stats.failures += 1
                    raise TransportError(url, attempt, exc) from exc
                # Authoritative 4xx: the daemon is healthy, the request
                # (or the resource) is not. Never retried.
                self._record_success()
                raise
            except (urllib.error.URLError, OSError, EOFError,
                    http.client.HTTPException,
                    json.JSONDecodeError) as exc:
                # Connection refused/reset, timeout, truncated body
                # (http.client.IncompleteRead) or garbled body: the wire
                # failed, not the protocol.
                last_exc = exc
                if half_open_probe:
                    self._reopen()
                    raise TransportError(url, attempt, exc) from exc
                self._record_transport_failure()
                if (attempt < budget
                        and self.breaker_state() != BREAKER_OPEN):
                    self._do_sleep(retry_delay(seq, attempt, self.backoff,
                                               self.max_delay))
                    continue
                self.stats.failures += 1
                raise TransportError(url, attempt, exc) from exc
            else:
                self._record_success()
                self.stats.by_status[200] = \
                    self.stats.by_status.get(200, 0) + 1
                return body
        self.stats.failures += 1
        raise TransportError(url, attempt, last_exc)

    # ----------------------------------------------------------- plumbing
    def _attempt(self, method: str, url: str, doc: Optional[Dict],
                 attempt: int, idempotency_key: Optional[str]) -> Dict:
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Worker": self.worker_id or "?",
            "X-Repro-Attempt": str(attempt),
            "X-Repro-Breaker-Opens": str(self.stats.breaker_opens),
        }
        if idempotency_key:
            headers["Idempotency-Key"] = idempotency_key
        data = None
        if method != "GET":
            data = json.dumps(doc or {}).encode()
        req = urllib.request.Request(url, data=data, method=method,
                                     headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            try:
                body = exc.read().decode(errors="replace")
            except OSError:
                body = ""
            retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
            if exc.code == 404:
                raise NotFound(404, url, body) from exc
            raise HttpStatusError(exc.code, url, body,
                                  retry_after=retry_after) from exc
        # A truncated body parses as a JSON error -> retried upstream.
        parsed = json.loads(raw.decode())
        if not isinstance(parsed, dict):
            raise json.JSONDecodeError("expected a JSON object", "", 0)
        return parsed

    def _do_sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self.stats.slept_seconds += seconds
        self._sleep(seconds)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
