"""The campaign daemon: simulation-as-a-service over HTTP.

:class:`CampaignService` is a long-running process built from three
asyncio control loops plus a threaded stdlib HTTP server:

* the **scheduler** activates queued campaigns (write-ahead journal +
  run-cache dedup) and folds journal scans back into the in-memory
  records, so campaign status/completion is always derived from the
  same shards a ``sweep --resume`` would read;
* the **reaper** requeues points whose lease lapsed (dead workers) and
  retries failed points up to ``max_attempts``;
* the **supervisor** keeps the in-daemon worker pool populated — the
  pool is just ``python -m repro worker --connect <own-url>``
  subprocesses, byte-for-byte the same worker an operator would start on
  another host, so there is exactly one execution path to trust.

HTTP API (JSON unless noted)::

    GET    /                      index (text)
    GET    /campaigns             all campaigns + queue gauges
    POST   /campaigns             submit a sweep spec -> 201 {id}
                                  (400 invalid, 429 + Retry-After full)
    GET    /campaigns/<id>        one campaign's record + live counts
    GET    /campaigns/<id>/results  key -> result entry for done points
    GET    /campaigns/<id>/stream   SSE: one status frame per interval
    DELETE /campaigns/<id>        cooperative cancel
    GET    /schedule?worker=ID    worker pull: which campaign to claim from
    POST   /claim                 {campaign, worker, keys?, lease_seconds?}
                                  -> {key, config, shard} or {key: null}
    POST   /renew                 {campaign, worker, key, lease_seconds, hb?}
                                  -> 200 ok / 409 lease lost
    POST   /complete              {campaign, worker, key, entry, source?}
                                  -> {accepted} (idempotent; publishes to
                                  journal + run cache)
    POST   /fail                  {campaign, worker, key, error}
    POST   /release               {campaign, worker, key} -> {released}
    GET    /metrics               Prometheus text (service gauges)
    GET    /healthz               liveness probe

The five ``POST`` lease endpoints are the remote-execution protocol: the
daemon performs the :mod:`repro.service.lease` file operations on the
workers' behalf (generation-fenced, idempotent first-done-wins
preserved), so connected workers need no shared filesystem.
``complete``/``fail`` honour ``Idempotency-Key`` headers through a
bounded replay store — a retried publish whose first response was lost
returns the recorded answer instead of re-applying.

On SIGTERM (or :meth:`CampaignService.drain`) the daemon drains
gracefully: ``/schedule`` answers ``{"shutdown": true}`` and ``/claim``
stops handing out wins, leased points get up to ``drain_seconds`` to
complete or lapse (renew/complete stay served), unfinished active
campaigns receive the manifest interruption record a SIGINT'd sweep
writes, and only then does the daemon exit — so a restart resumes
bit-identically.

Every response carries ``Cache-Control: no-store`` — these are live
views; a cached 404 or stale counts would actively mislead.
"""

import asyncio
import collections
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import repro
from repro.harness.campaign import CampaignJournal
from repro.harness.runcache import RunCache, entry_from_result
from repro.harness.simulator import simulate
from repro.obs.events import EventTrace
from repro.obs.live import read_campaign
from repro.obs.promtext import CONTENT_TYPE, prom_line, render_prometheus
from repro.service.integrity import IntegrityConfig, IntegrityMonitor
from repro.service.lease import (LeaseLost, _distinct_failures, claim_next,
                                 complete_point, fail_point, reap_expired,
                                 release_point, renew_lease)
from repro.service.queue import (BackPressure, CampaignRecord, ServiceState,
                                 TenantPolicy, ValidationError,
                                 configs_from_spec)
from repro.service.transport import config_from_doc, config_to_doc
from repro.workloads import workload_names

__all__ = ["CampaignService", "ServiceConfig"]

_INDEX = """repro campaign service
  GET    /campaigns             list campaigns + queue gauges
  POST   /campaigns             submit {workloads, engines, instructions,
                                tenant?, priority?} -> {id}
  GET    /campaigns/<id>        status
  GET    /campaigns/<id>/results  done-point result entries
  GET    /campaigns/<id>/stream   SSE status frames
  DELETE /campaigns/<id>        cooperative cancel
  GET    /schedule?worker=ID    worker pull endpoint
  GET    /metrics               Prometheus service gauges
"""


@dataclass
class ServiceConfig:
    """Daemon configuration (all durations in seconds)."""

    root: str = "campaigns"        # one subdirectory per campaign
    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral (bound port on .port)
    workers: int = 2               # in-daemon worker pool size (0 = none)
    lease_seconds: float = 30.0
    reap_interval: float = 2.0
    tick_interval: float = 0.2     # scheduler cadence
    stream_interval: float = 1.0   # SSE frame period
    heartbeat_interval: float = 1.0
    cache_dir: Optional[str] = None
    max_queued_points: int = 100_000
    max_active_campaigns: int = 4
    max_attempts: int = 3          # failed-point retries (reaper)
    retry_after: float = 5.0       # the 429 Retry-After hint
    drain_seconds: float = 30.0    # SIGTERM: grace for leased points
    expose_dir: bool = True        # include the campaign dir in /schedule
    #                                (False enforces filesystem-free
    #                                workers: the path is never revealed)
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    log: bool = True
    # Result-integrity subsystem (repro.service.integrity).
    audit_rate: float = 0.0        # fraction of completions re-executed
    audit_seed: int = 0
    quarantine_threshold: float = 5.0
    reputation_window: float = 600.0
    poison_workers: int = 3        # distinct failing workers -> poisoned
    #                                (0 disables the breaker)


class CampaignService:
    """One daemon instance; ``start()``/``stop()`` or ``with`` it."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.root = pathlib.Path(self.config.root)
        self.state = ServiceState(
            workload_names(),
            max_queued_points=self.config.max_queued_points,
            max_active_campaigns=self.config.max_active_campaigns,
            retry_after=self.config.retry_after,
            tenants=self.config.tenants)
        self.events = EventTrace()
        self.cache = (RunCache(self.config.cache_dir)
                      if self.config.cache_dir else None)
        self.lease_expirations = 0
        self.stale_claims = 0
        self.retries = 0
        self.worker_respawns = 0
        self.points_poisoned = 0
        # Result integrity: the audit book, worker reputation, and the
        # daemon-local arbitration executor (a straight deterministic
        # re-simulation; tests inject a stub via integrity.run_config).
        self.integrity = IntegrityMonitor(
            IntegrityConfig(
                audit_rate=self.config.audit_rate,
                audit_seed=self.config.audit_seed,
                quarantine_threshold=self.config.quarantine_threshold,
                reputation_window=self.config.reputation_window,
                poison_workers=self.config.poison_workers),
            run_config=lambda config: entry_from_result(simulate(config)),
            events=self.events, log=self._log)
        # HTTP-protocol health (the repro_service_http_* metrics).
        self.http_requests: Dict[str, int] = {}
        self.http_retries = 0        # requests arriving with Attempt > 1
        self.http_duplicates = 0     # idempotent replays suppressed
        self._worker_breaker_opens: Dict[str, int] = {}
        self._http_lock = threading.Lock()
        # Idempotency replay store: key -> (status, response doc).
        self._idem: "collections.OrderedDict[str, Tuple[int, Dict]]" = \
            collections.OrderedDict()
        self._idem_cap = 4096
        self._config_maps: Dict[str, Dict] = {}   # cid -> key -> RunConfig
        self._draining = threading.Event()
        self._spawned = 0        # monotonic: worker ids never repeat
        self._workers: List[Tuple[str, subprocess.Popen]] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------ control
    @property
    def port(self) -> int:
        return self._httpd.server_address[1] if self._httpd else 0

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _log(self, msg: str) -> None:
        if self.config.log:
            print(f"service: {msg}", file=sys.stderr, flush=True)

    def start(self) -> "CampaignService":
        self.root.mkdir(parents=True, exist_ok=True)
        self._recover()
        try:
            self._httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), self._handler_class())
        except OSError as exc:
            # Same policy as TelemetryServer: a busy port degrades to an
            # ephemeral one with a log line, never a dead daemon.
            self._log(f"cannot bind {self.config.host}:{self.config.port} "
                      f"({exc}); retrying on an ephemeral port")
            self._httpd = ThreadingHTTPServer(
                (self.config.host, 0), self._handler_class())
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._http_thread.start()
        self._loop_thread = threading.Thread(
            target=self._run_control_loop, name="repro-service-control",
            daemon=True)
        self._loop_thread.start()
        self._log(f"listening at {self.url} "
                  f"(root={self.root}, workers={self.config.workers})")
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._loop is not None:
            try:
                # Wake the control loops so they observe the stop flag.
                self._loop.call_soon_threadsafe(lambda: None)
            except RuntimeError:
                pass  # loop already closed: stop() is idempotent
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        for _wid, proc in self._workers:
            if proc.poll() is None:
                proc.terminate()
        for _wid, proc in self._workers:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        if self._httpd is not None:
            self._httpd.shutdown()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
            self._httpd.server_close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until interrupted (the ``repro service`` foreground mode).

        SIGINT stops immediately (journals make that loss-free); SIGTERM
        triggers the graceful drain first, so an orchestrated shutdown
        (systemd, Kubernetes, CI teardown) lets leased points land.
        """
        term = threading.Event()
        previous = None
        try:
            previous = signal.signal(signal.SIGTERM,
                                     lambda *_: term.set())
        except ValueError:
            pass  # not the main thread: no handler, SIGINT still works
        try:
            while not self._stopping.is_set():
                if term.is_set():
                    self.drain()
                    break
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
            if previous is not None:
                try:
                    signal.signal(signal.SIGTERM, previous)
                except ValueError:
                    pass

    # -------------------------------------------------------------- drain
    def drain(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful shutdown: no new offers/claims, wait for leases.

        ``/schedule`` starts answering ``{"shutdown": true}`` and
        ``/claim`` declines, while renew/complete stay served; then the
        daemon waits up to ``drain_seconds`` for every unexpired lease to
        complete or lapse, and finally writes the manifest interruption
        record (the PR-5 shape a SIGINT'd sweep leaves) for each active
        campaign with work remaining, so a restart — daemon or ``sweep
        --resume`` — continues bit-identically.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        grace = (self.config.drain_seconds if drain_seconds is None
                 else drain_seconds)
        self._log(f"draining: no new claims; waiting up to {grace:.0f}s "
                  "for leased points")
        deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < deadline:
            leased = 0
            for record in self.state.snapshot()["campaigns"]:
                if record["status"] not in ("active", "cancelled"):
                    continue
                _counts, live, _expired, _retrying = self._scan_journal(
                    CampaignJournal(record["dir"]))
                leased += live
            if leased == 0:
                break
            time.sleep(0.25)
        self._refresh_all()
        for record in self.state.snapshot()["campaigns"]:
            if record["status"] != "active":
                continue
            done = record["counts"].get("done", 0)
            total = record["total_points"]
            finished = (done + record["counts"].get("failed", 0)
                        + record["counts"].get("poisoned", 0))
            if total and finished >= total:
                continue
            CampaignJournal(record["dir"]).note_interrupted(done, total)
            self._log(f"drain: {record['id']} interrupted at "
                      f"{done}/{total} done")
        self._log("drained")

    # ----------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Re-adopt campaigns journaled by a previous daemon incarnation.

        Everything needed to resume lives in ``campaign.json`` (the spec
        plus the ``service`` submission metadata written at activation);
        counts come from the shards, like every other status read.
        """
        for manifest_path in sorted(self.root.glob("*/campaign.json")):
            journal = CampaignJournal(manifest_path.parent)
            manifest = journal.load_manifest()
            if manifest is None:
                continue
            spec = manifest.get("spec") or {}
            meta = spec.get("service") or {}
            cid = meta.get("id") or manifest_path.parent.name
            record = CampaignRecord(
                id=cid, tenant=meta.get("tenant", "default"),
                priority=int(meta.get("priority", 0)),
                spec={k: spec.get(k) for k in
                      ("workloads", "engines", "instructions")},
                dir=str(manifest_path.parent),
                submitted_unix=float(meta.get("submitted_unix", 0.0)),
                seq=int(meta.get("seq", 0)) or self._seq_from_id(cid),
                status="active",
                total_points=len(manifest.get("points", ())))
            counts, leased, expired, retrying = self._scan_journal(journal)
            record.counts = counts
            record.leased = leased
            record.lease_expired = expired
            finished = (counts.get("done", 0) + counts.get("failed", 0)
                        + counts.get("poisoned", 0) - retrying)
            if record.total_points and finished >= record.total_points:
                record.status = ("failed"
                                 if counts.get("failed")
                                 or counts.get("poisoned") else "done")
            self.state.adopt(record)
            adopted_audits = self.integrity.adopt(cid, journal)
            if adopted_audits:
                record.status = "active"  # audits still hold it open
                self._log(f"re-adopted {adopted_audits} in-flight "
                          f"audit(s) for {cid}")
            self._log(f"recovered campaign {cid} "
                      f"({record.status}, {record.total_points} points)")

    @staticmethod
    def _seq_from_id(cid: str) -> int:
        try:
            return int(cid.lstrip("c"))
        except ValueError:
            return 0

    # ------------------------------------------------------- control loops
    def _run_control_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._control())
        finally:
            self._loop.close()

    async def _control(self) -> None:
        tasks = [asyncio.ensure_future(self._scheduler_loop()),
                 asyncio.ensure_future(self._reaper_loop()),
                 asyncio.ensure_future(self._supervisor_loop())]
        while not self._stopping.is_set():
            await asyncio.sleep(0.05)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    async def _scheduler_loop(self) -> None:
        while True:
            try:
                if not self._draining.is_set():
                    for record in self.state.to_activate():
                        self._activate(record)
                self._refresh_all()
            except Exception as exc:  # noqa: BLE001 - loops must survive
                self._log(f"scheduler error: {exc}")
            await asyncio.sleep(self.config.tick_interval)

    async def _reaper_loop(self) -> None:
        while True:
            try:
                self._reap()
            except Exception as exc:  # noqa: BLE001
                self._log(f"reaper error: {exc}")
            await asyncio.sleep(self.config.reap_interval)

    async def _supervisor_loop(self) -> None:
        while True:
            try:
                self._supervise()
            except Exception as exc:  # noqa: BLE001
                self._log(f"supervisor error: {exc}")
            await asyncio.sleep(0.5)

    # --------------------------------------------------------- activation
    def _activate(self, record: CampaignRecord) -> None:
        """Write-ahead setup for one queued campaign + run-cache dedup."""
        journal = CampaignJournal(record.dir)
        journal.root.mkdir(parents=True, exist_ok=True)
        configs = configs_from_spec(record.spec)
        spec_doc = dict(record.spec)
        spec_doc["cache_dir"] = self.config.cache_dir
        spec_doc["service"] = {
            "id": record.id, "tenant": record.tenant,
            "priority": record.priority, "seq": record.seq,
            "submitted_unix": record.submitted_unix,
        }
        journal.prepare(configs, spec=spec_doc)
        deduped = 0
        if self.cache is not None:
            for config in configs:
                key = config.cache_key()
                doc = journal.read_point(key)
                if doc and doc.get("status") == "done":
                    continue
                hit = self.cache.get(config)
                if hit is not None:
                    journal.mark(key, "done", entry=hit, source="cache")
                    deduped += 1
        self.state.mark_active(record.id, deduped=deduped)
        self.events.campaign_activated(record.id, len(configs), deduped)
        self._log(f"activated {record.id}: {len(configs)} points"
                  + (f", {deduped} from cache" if deduped else ""))

    # ----------------------------------------------------------- scanning
    def _scan_journal(self, journal: CampaignJournal,
                      sample_for: Optional[str] = None):
        """One journal pass: (counts, leased, lease_expired, retrying).

        With ``sample_for`` (a campaign id) and a nonzero audit rate,
        every done shard is offered to the audit sampler *in the same
        pass that counts it* — the ordering that makes "terminal" and
        "sampled" atomic per point, so a completion can never slip
        between a separate sampling sweep and the terminal-status
        refresh unaudited.

        ``retrying`` counts ``failed`` shards the reaper still owes a
        verdict — retry budget left, or enough distinct failures that
        the poison breaker will fire.  Those are in flight, not
        terminal; without the carve-out a refresh landing between a
        worker's /fail and the next reap would end the campaign with
        retries unserved.
        """
        now = time.time()
        counts: Dict[str, int] = {}
        leased = 0
        expired = 0
        retrying = 0
        manifest = journal.load_manifest() or {}
        for point in manifest.get("points", ()):
            doc = journal.read_point(point["key"]) or {}
            if sample_for is not None and self.config.audit_rate > 0.0 \
                    and doc:
                self.integrity.consider(sample_for, journal,
                                        point["key"], doc)
            status = doc.get("status", "pending")
            counts[status] = counts.get(status, 0) + 1
            if status == "running":
                expires = doc.get("lease_expires_unix")
                if expires is not None and expires < now:
                    expired += 1
                else:
                    leased += 1
            elif status == "failed":
                # Mirror reap_expired's failed-branch conditions.
                if (self.config.poison_workers
                        and _distinct_failures(doc)
                        >= self.config.poison_workers):
                    retrying += 1
                elif (self.config.max_attempts
                      and int(doc.get("attempts", 0))
                      < self.config.max_attempts):
                    retrying += 1
        return counts, leased, expired, retrying

    def _refresh_all(self) -> None:
        for record in self.state.snapshot()["campaigns"]:
            if record["status"] != "active":
                continue
            cid = record["id"]
            live = self.state.get(cid)
            if live is None:
                continue
            counts, leased, expired, retrying = self._scan_journal(
                CampaignJournal(live.dir), sample_for=cid)
            self.state.refresh_counts(
                cid, counts, leased, expired,
                audits_pending=self.integrity.pending_audits(cid),
                retrying=retrying)
            refreshed = self.state.get(cid)
            if refreshed is not None and refreshed.status in ("done",
                                                              "failed"):
                self.events.campaign_completed(cid, refreshed.status)
                self._log(f"campaign {cid} {refreshed.status} "
                          f"({refreshed.counts})")

    # ------------------------------------------------------------- reaper
    def _reap(self) -> None:
        for record in self.state.snapshot()["campaigns"]:
            if record["status"] not in ("active", "cancelled"):
                continue
            journal = CampaignJournal(record["dir"])
            reaped = reap_expired(
                journal, lease_seconds=self.config.lease_seconds,
                max_attempts=(0 if record["status"] == "cancelled"
                              else self.config.max_attempts),
                poison_distinct=self.config.poison_workers)
            for key, reason, worker in reaped:
                if reason == "lease_expired":
                    self.lease_expirations += 1
                    # The dead worker cannot report itself; the reaper
                    # is its obituary and its reputation hit.
                    if worker:
                        self.integrity.record_misbehaviour(
                            worker, "lease_expired")
                elif reason == "stale_claim":
                    self.stale_claims += 1
                elif reason == "poisoned":
                    self.points_poisoned += 1
                    shard = journal.read_point(key) or {}
                    self.events.point_poisoned(
                        record["id"], key,
                        shard.get("failed_workers", []))
                else:
                    self.retries += 1
                self.events.lease_reaped(record["id"], key, reason)
                self._log(f"reaped {record['id']}/{key}: {reason}")

    # --------------------------------------------------------- supervisor
    def _supervise(self) -> None:
        if self._stopping.is_set() or self._draining.is_set():
            return  # draining: let the pool wind down, respawn nothing
        live = []
        for worker_id, proc in self._workers:
            if proc.poll() is None:
                live.append((worker_id, proc))
            else:
                self.worker_respawns += 1
                # Exit 0 is a clean shutdown (idle exit, or a quarantined
                # worker obeying /schedule); anything else — injection
                # os._exit, a signal's negative code, a crash — counts
                # against the worker's reputation.
                if proc.returncode != 0:
                    self.integrity.record_misbehaviour(worker_id, "crash")
                self._log(f"worker {worker_id} pid={proc.pid} exited "
                          f"(code {proc.returncode}); respawning")
        self._workers = live
        env = dict(os.environ)
        pkg_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [pkg_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
        while len(self._workers) < self.config.workers:
            self._spawned += 1
            worker_id = f"svc-w{self._spawned}"
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", self.url, "--id", worker_id,
                 "--lease-seconds", str(self.config.lease_seconds),
                 "--heartbeat-interval",
                 str(self.config.heartbeat_interval),
                 "--poll-interval", "0.2"],
                env=env)
            self._workers.append((worker_id, proc))
            self._log(f"spawned worker {worker_id} (pid {proc.pid})")

    def live_workers(self) -> int:
        return sum(1 for _wid, p in self._workers if p.poll() is None)

    # -------------------------------------------------------------- views
    def _submit(self, doc: Dict) -> CampaignRecord:
        record = self.state.submit(
            doc, make_dir=lambda cid: self.root / cid)
        self.events.campaign_submitted(record.id, record.tenant,
                                       record.total_points)
        self._log(f"submitted {record.id} by {record.tenant}: "
                  f"{record.total_points} points")
        return record

    def _cancel(self, cid: str) -> Optional[CampaignRecord]:
        record = self.state.cancel(cid)
        if record is not None and record.status == "cancelled":
            # The PR-5 interruption record: the manifest remembers the
            # cut, exactly like a SIGINT'd sweep, so a later
            # ``sweep --resume`` knows this was a deliberate stop.
            journal = CampaignJournal(record.dir)
            done = record.counts.get("done", 0)
            journal.note_interrupted(done, record.total_points)
            self.events.campaign_cancelled(cid)
            self._log(f"cancelled {cid} ({done}/{record.total_points} done)")
        return record

    def _campaign_doc(self, cid: str) -> Optional[Dict]:
        record = self.state.get(cid)
        if record is None:
            return None
        doc = record.to_dict()
        # The journal view (read_campaign) carries the per-point lease
        # fields + derived lease_expired flags, so the HTTP status doc
        # and a local ``repro watch`` of the same directory agree.
        camp = read_campaign(record.dir)
        if camp is not None:
            doc["points"] = camp["points"]
            doc["counts"] = camp["counts"]
            doc["total"] = camp["total"]
            doc["lease_expired"] = camp["lease_expired"]
        return doc

    def _results_doc(self, cid: str) -> Optional[Dict]:
        record = self.state.get(cid)
        if record is None:
            return None
        journal = CampaignJournal(record.dir)
        manifest = journal.load_manifest() or {}
        results = {}
        for point in manifest.get("points", ()):
            shard = journal.read_point(point["key"]) or {}
            if shard.get("status") == "done" and shard.get("entry"):
                results[point["key"]] = shard["entry"]
        return {"id": cid, "status": record.status,
                "total_points": record.total_points,
                "done": len(results), "results": results}

    def _schedule_doc(self, worker: str) -> Dict:
        if self._stopping.is_set() or self._draining.is_set():
            return {"dir": None, "shutdown": True}
        if self.integrity.is_quarantined(worker):
            # A quarantined worker gets no work, ever: the shutdown
            # answer makes a pool worker exit cleanly, and the
            # supervisor replaces the slot under a fresh identity.
            return {"dir": None, "shutdown": True, "quarantined": True}
        eligible = self.state.schedule()
        # Skip campaigns whose only remaining work is audits this worker
        # cannot legally run (it completed the originals itself).
        head = None
        for candidate in eligible:
            if candidate.counts.get("pending", 0) > 0 \
                    or self.integrity.assignable(candidate.id, worker):
                head = candidate
                break
        if head is None:
            return {"dir": None,
                    "retry_after": self.config.tick_interval * 2}
        journal = CampaignJournal(head.dir)
        manifest = journal.load_manifest() or {}
        keys = []
        for point in manifest.get("points", ()):
            doc = journal.read_point(point["key"]) or {}
            if doc.get("status") in ("pending", "running"):
                keys.append(point["key"])
        return {"dir": head.dir if self.config.expose_dir else None,
                "campaign_id": head.id, "keys": keys,
                "lease_seconds": self.config.lease_seconds,
                "cache_dir": self.config.cache_dir, "worker": worker,
                "audits": self.integrity.assignable(head.id, worker)}

    # --------------------------------------------- remote lease protocol
    def _count_http(self, endpoint: str, headers) -> None:
        """Fold one request's protocol headers into the http_* metrics.

        The retry count deliberately lives daemon-side, derived from the
        client's ``X-Repro-Attempt`` header: a chaos-injected 500 never
        reaches us, but the retried request that follows it does — so
        ``repro_service_http_retries_total`` is scrapeable evidence the
        resilient client actually retried.
        """
        with self._http_lock:
            self.http_requests[endpoint] = \
                self.http_requests.get(endpoint, 0) + 1
            try:
                if int(headers.get("X-Repro-Attempt", 1)) > 1:
                    self.http_retries += 1
            except (TypeError, ValueError):
                pass
            worker = headers.get("X-Repro-Worker")
            if worker:
                try:
                    opens = int(headers.get("X-Repro-Breaker-Opens", 0))
                except (TypeError, ValueError):
                    opens = 0
                self._worker_breaker_opens[worker] = max(
                    self._worker_breaker_opens.get(worker, 0), opens)

    def _idem_lookup(self, idem: Optional[str]) -> Optional[Tuple[int, Dict]]:
        if not idem:
            return None
        with self._http_lock:
            hit = self._idem.get(idem)
            if hit is not None:
                self._idem.move_to_end(idem)
                self.http_duplicates += 1
        return hit

    def _idem_store(self, idem: Optional[str], status: int,
                    doc: Dict) -> None:
        if not idem:
            return
        with self._http_lock:
            self._idem[idem] = (status, doc)
            self._idem.move_to_end(idem)
            while len(self._idem) > self._idem_cap:
                self._idem.popitem(last=False)

    def _config_for(self, record: CampaignRecord, key: str):
        """The RunConfig behind one journal key (memoised per campaign)."""
        cmap = self._config_maps.get(record.id)
        if cmap is None:
            cmap = {c.cache_key(): c for c in
                    configs_from_spec(record.spec)}
            self._config_maps[record.id] = cmap
        return cmap.get(key)

    @staticmethod
    def _entry_config_mismatch(key: str, entry: Dict) -> Optional[str]:
        """Zeroth-line integrity check on a completion's embedded config.

        A worker-produced entry carries the full config it actually ran
        (:func:`~repro.harness.runcache.entry_from_result`); rebuilding
        the sweep-point :class:`RunConfig` from it must mint the claimed
        journal key, or the entry is for a *different* point — a buggy
        or lying worker — and publishing it would poison the store.
        Entries without an embedded config (hand-rolled test fixtures,
        legacy cache adoptions) are not checkable and pass through.
        """
        embedded = entry.get("config")
        if not isinstance(embedded, dict):
            return None
        wire = {"workload": embedded.get("workload"),
                "engine": embedded.get("engine"),
                "instructions": embedded.get("max_instructions")}
        if not all(wire[f] is not None for f in wire):
            return None
        try:
            minted = config_from_doc(wire).cache_key()
        except (ValueError, TypeError) as exc:
            return f"embedded config does not rebuild: {exc}"
        if minted != key:
            return (f"embedded config mints {minted}, "
                    f"not the claimed {key}")
        return None

    def _lease_rpc(self, op: str, doc: Dict,
                   idem: Optional[str] = None) -> Tuple[int, Dict]:
        """One remote lease operation -> (status, response document).

        Performs the :mod:`repro.service.lease` file operation the worker
        would have done over a shared filesystem, preserving its exact
        semantics: generation-fenced claims, 409 on a fenced renew,
        idempotent first-done-wins completion.  ``complete``/``fail``
        with an idempotency key replay the recorded response instead of
        re-applying — a duplicated delivery (retry whose first response
        was dropped) is therefore indistinguishable from a single one.
        """
        cid = doc.get("campaign")
        record = self.state.get(cid) if cid else None
        if record is None:
            return 404, {"error": "no such campaign", "campaign": cid}
        worker = str(doc.get("worker") or "?")
        journal = CampaignJournal(record.dir)

        if op == "claim":
            if self._draining.is_set() or self._stopping.is_set():
                return 200, {"key": None, "draining": True}
            if self.integrity.is_quarantined(worker):
                return 200, {"key": None, "quarantined": True}
            if record.status != "active":
                return 200, {"key": None, "status": record.status}
            lease_seconds = float(doc.get("lease_seconds")
                                  or self.config.lease_seconds)
            keys = doc.get("keys")
            if keys is None:
                manifest = journal.load_manifest() or {}
                keys = [p["key"] for p in manifest.get("points", ())]
            candidates = [k for k in keys
                          if self._config_for(record, k) is not None]
            got = claim_next(journal, candidates, worker,
                             lease_seconds=lease_seconds)
            if got is None:
                # No claimable point: maybe an audit run instead.  The
                # assignment is pinned away from the original completer
                # and carries ``audit: true`` plus a synthetic
                # generation, so the worker re-executes with the cache
                # bypassed and publishes with ``source="audit"``.
                assigned = self.integrity.assign(cid, journal, worker)
                if assigned is not None:
                    akey, ashard = assigned
                    config = self._config_for(record, akey)
                    if config is not None:
                        self.events.point_claimed(cid, akey, worker)
                        return 200, {"key": akey, "shard": ashard,
                                     "config": config_to_doc(config),
                                     "audit": True}
                return 200, {"key": None}
            key, shard = got
            self.events.point_claimed(cid, key, worker)
            return 200, {"key": key, "shard": shard,
                         "config": config_to_doc(
                             self._config_for(record, key))}

        key = doc.get("key")
        if not key:
            return 400, {"error": "missing key"}

        if op == "renew":
            lease_seconds = float(doc.get("lease_seconds")
                                  or self.config.lease_seconds)
            # Audit runs lease from the audit book, not the shard (the
            # shard is already ``done``; renew_lease would fence them).
            audit_ok = self.integrity.audit_renew(cid, key, worker)
            if audit_ok is True:
                return 200, {"ok": True, "audit": True}
            if audit_ok is False:
                return 409, {"error": "lease_lost", "key": key,
                             "holder": None}
            try:
                shard = renew_lease(journal, key, worker,
                                    lease_seconds=lease_seconds,
                                    hb=doc.get("hb"))
            except LeaseLost as exc:
                return 409, {"error": "lease_lost", "key": key,
                             "holder": exc.holder}
            return 200, {"ok": True, "lease_expires_unix":
                         shard.get("lease_expires_unix")}

        if op == "complete":
            replay = self._idem_lookup(idem)
            if replay is not None:
                return replay
            entry = doc.get("entry")
            if not isinstance(entry, dict):
                return 400, {"error": "missing entry"}
            problem = self._entry_config_mismatch(key, entry)
            if problem is not None:
                self.integrity.complete_rejects += 1
                self._log(f"rejected completion of {cid}/{key} from "
                          f"{worker}: {problem}")
                response = (422, {"error": "entry_config_mismatch",
                                  "detail": problem, "key": key})
                self._idem_store(idem, *response)
                return response
            config = self._config_for(record, key)
            verdict = self.integrity.on_audit_complete(
                cid, journal, key, worker, entry,
                cache=self.cache, config=config)
            if verdict is not None:
                response = (200, {"accepted": True, "key": key,
                                  **verdict})
                self._idem_store(idem, *response)
                return response
            accepted = complete_point(journal, key, worker, entry,
                                      source=doc.get("source", "worker"))
            if accepted and self.cache is not None and config is not None:
                self.cache.put(config, entry)
            response = (200, {"accepted": accepted, "key": key})
            self._idem_store(idem, *response)
            return response

        if op == "fail":
            replay = self._idem_lookup(idem)
            if replay is not None:
                return replay
            error = str(doc.get("error") or "unknown error")
            verdict = self.integrity.on_audit_fail(cid, journal, key,
                                                   worker, error)
            if verdict is not None:
                response = (200, {"ok": True, "key": key, **verdict})
                self._idem_store(idem, *response)
                return response
            fail_point(journal, key, worker, error)
            response = (200, {"ok": True, "key": key})
            self._idem_store(idem, *response)
            return response

        if op == "release":
            released = release_point(journal, key, worker)
            return 200, {"released": released, "key": key}

        return 404, {"error": f"unknown operation {op!r}"}

    def _metrics_text(self) -> str:
        snap = self.state.snapshot()
        lines = [prom_line("repro_service_up", 1),
                 prom_line("repro_service_queued_points",
                           snap["queued_points"]),
                 prom_line("repro_service_queue_bound",
                           snap["max_queued_points"]),
                 prom_line("repro_service_lease_expirations_total",
                           self.lease_expirations),
                 prom_line("repro_service_stale_claims_total",
                           self.stale_claims),
                 prom_line("repro_service_retries_total", self.retries),
                 prom_line("repro_service_worker_respawns_total",
                           self.worker_respawns),
                 prom_line("repro_service_workers", self.live_workers()),
                 prom_line("repro_service_draining",
                           1 if self._draining.is_set() else 0)]
        with self._http_lock:
            http_requests = dict(self.http_requests)
            http_retries = self.http_retries
            http_duplicates = self.http_duplicates
            breaker_opens = dict(self._worker_breaker_opens)
        for endpoint, n in sorted(http_requests.items()):
            lines.append(prom_line("repro_service_http_requests_total", n,
                                   {"endpoint": endpoint}))
        lines.append(prom_line("repro_service_http_retries_total",
                               http_retries))
        lines.append(prom_line("repro_service_http_duplicates_total",
                               http_duplicates))
        for worker, opens in sorted(breaker_opens.items()):
            lines.append(prom_line(
                "repro_service_worker_breaker_opens_total", opens,
                {"worker": worker}))
        audits = self.integrity.counters()
        lines.append(prom_line("repro_service_audit_scheduled_total",
                               audits["audits_scheduled"]))
        lines.append(prom_line("repro_service_audit_passed_total",
                               audits["audits_passed"]))
        lines.append(prom_line("repro_service_audit_mismatches_total",
                               audits["audit_mismatches"]))
        lines.append(prom_line("repro_service_audit_repaired_total",
                               audits["audits_repaired"]))
        lines.append(prom_line("repro_service_audit_rejected_total",
                               audits["audits_rejected"]))
        lines.append(prom_line("repro_service_audit_unresolved_total",
                               audits["audits_unresolved"]))
        lines.append(prom_line("repro_service_complete_rejects_total",
                               audits["complete_rejects"]))
        lines.append(prom_line("repro_service_points_poisoned_total",
                               self.points_poisoned))
        quarantined = self.integrity.reputation.quarantined()
        lines.append(prom_line("repro_service_workers_quarantined",
                               len(quarantined)))
        for worker in sorted(quarantined):
            lines.append(prom_line("repro_service_worker_quarantined", 1,
                                   {"worker": worker}))
        for status, n in sorted(snap["by_status"].items()):
            lines.append(prom_line("repro_service_campaigns", n,
                                   {"status": status}))
        for tenant, depth in sorted(self.state.tenant_queue_depth().items()):
            lines.append(prom_line("repro_service_tenant_queue_depth",
                                   depth, {"tenant": tenant}))
        for tenant, peak in sorted(snap["peak_leased"].items()):
            lines.append(prom_line("repro_service_tenant_peak_leased",
                                   peak, {"tenant": tenant}))
        for c in snap["campaigns"]:
            labels = {"campaign": c["id"], "tenant": c["tenant"]}
            for status in ("pending", "running", "done", "failed",
                           "poisoned"):
                lines.append(prom_line(
                    "repro_service_campaign_points",
                    c["counts"].get(status, 0),
                    {**labels, "status": status}))
            lines.append(prom_line("repro_service_campaign_leased",
                                   c["leased"], labels))
            lines.append(prom_line("repro_service_campaign_lease_expired",
                                   c["lease_expired"], labels))
            lines.append(prom_line("repro_service_campaign_audits_pending",
                                   c.get("audits_pending", 0), labels))
        return render_prometheus({}, extra_lines=lines)

    # ------------------------------------------------------------ handler
    def _handler_class(self):
        service = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def _send(self, code: int, content_type: str, body: bytes,
                      headers: Optional[Dict[str, str]] = None) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.send_header("Cache-Control", "no-store")
                for k, v in (headers or {}).items():
                    self.send_header(k, v)
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, doc, code: int = 200,
                           headers: Optional[Dict[str, str]] = None) -> None:
                if doc is None:
                    self._send(404, "application/json",
                               b'{"error": "no such campaign"}\n')
                    return
                body = json.dumps(doc, indent=1, sort_keys=True)
                self._send(code, "application/json", body.encode() + b"\n",
                           headers=headers)

            def _route(self):
                parsed = urllib.parse.urlparse(self.path)
                parts = [p for p in parsed.path.split("/") if p]
                query = dict(urllib.parse.parse_qsl(parsed.query))
                return parts, query

            def do_GET(self):
                parts, query = self._route()
                try:
                    if not parts:
                        self._send(200, "text/plain; charset=utf-8",
                                   _INDEX.encode())
                    elif parts == ["healthz"]:
                        self._send_json({"ok": True})
                    elif parts == ["metrics"]:
                        self._send(200, CONTENT_TYPE,
                                   service._metrics_text().encode())
                    elif parts == ["schedule"]:
                        service._count_http("schedule", self.headers)
                        self._send_json(service._schedule_doc(
                            query.get("worker", "?")))
                    elif parts == ["campaigns"]:
                        self._send_json(service.state.snapshot())
                    elif len(parts) == 2 and parts[0] == "campaigns":
                        self._send_json(service._campaign_doc(parts[1]))
                    elif (len(parts) == 3 and parts[0] == "campaigns"
                          and parts[2] == "results"):
                        self._send_json(service._results_doc(parts[1]))
                    elif (len(parts) == 3 and parts[0] == "campaigns"
                          and parts[2] == "stream"):
                        self._stream(parts[1])
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   b"not found\n")
                except (BrokenPipeError, ConnectionResetError):
                    pass

            _LEASE_OPS = ("claim", "renew", "complete", "fail", "release")

            def do_POST(self):
                parts, _query = self._route()
                if len(parts) == 1 and parts[0] in self._LEASE_OPS:
                    self._lease_op(parts[0])
                    return
                if parts != ["campaigns"]:
                    self._send(404, "text/plain; charset=utf-8",
                               b"not found\n")
                    return
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                    try:
                        doc = json.loads(self.rfile.read(length) or b"{}")
                    except json.JSONDecodeError as exc:
                        raise ValidationError(f"invalid JSON: {exc}")
                    record = service._submit(doc)
                except ValidationError as exc:
                    self._send_json({"error": str(exc)}, code=400)
                except BackPressure as exc:
                    self._send_json(
                        {"error": str(exc), "queued_points": exc.depth,
                         "retry_after": exc.retry_after},
                        code=429,
                        headers={"Retry-After":
                                 str(int(max(1, exc.retry_after)))})
                except (BrokenPipeError, ConnectionResetError):
                    pass
                else:
                    self._send_json(record.to_dict(), code=201)

            def _lease_op(self, op: str) -> None:
                """One remote lease endpoint: parse JSON, dispatch, reply."""
                service._count_http(op, self.headers)
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                    try:
                        doc = json.loads(self.rfile.read(length) or b"{}")
                    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                        self._send_json({"error": f"invalid JSON: {exc}"},
                                        code=400)
                        return
                    if not isinstance(doc, dict):
                        self._send_json({"error": "body must be an object"},
                                        code=400)
                        return
                    status, response = service._lease_rpc(
                        op, doc, idem=self.headers.get("Idempotency-Key"))
                    self._send_json(response, code=status)
                except (BrokenPipeError, ConnectionResetError):
                    pass

            def do_DELETE(self):
                parts, _query = self._route()
                try:
                    if len(parts) == 2 and parts[0] == "campaigns":
                        record = service._cancel(parts[1])
                        self._send_json(
                            record.to_dict() if record else None)
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   b"not found\n")
                except (BrokenPipeError, ConnectionResetError):
                    pass

            def _stream(self, cid: str) -> None:
                if service.state.get(cid) is None:
                    self._send_json(None)
                    return
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-store")
                self.end_headers()
                while True:
                    record = service.state.get(cid)
                    if record is None:
                        return
                    doc = record.to_dict()
                    frame = ("data: " + json.dumps(doc, sort_keys=True)
                             + "\n\n")
                    self.wfile.write(frame.encode())
                    self.wfile.flush()
                    if doc["status"] in ("done", "failed", "cancelled"):
                        return
                    time.sleep(service.config.stream_interval)

        return Handler
