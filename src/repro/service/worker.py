"""Pull-model campaign worker: claim, simulate, publish, repeat.

One worker process runs one point at a time: it claims a pending point
through the lease layer, simulates it with the lease renewed from the
simulation heartbeat hook (so a healthy worker's lease never lapses and
watchers see live progress in the point shard), publishes the result to
the journal and run cache, and claims the next.  The same loop serves
both deployments:

* :func:`work_campaign_dir` — aimed straight at a campaign directory
  (``repro worker --dir CAMP``): drains that one campaign and exits.
* :func:`work_service` — connected to a daemon
  (``repro worker --connect URL``): polls ``GET /schedule`` for which
  campaign to claim from next, so the daemon's tenant quotas and fair
  ordering decide *where* the worker's capacity goes while the journal's
  lease protocol decides *whether* a given claim wins.  Workers claim at
  most one point per schedule poll — that is what makes the daemon's
  weighted-fair ordering hold at point granularity.

A worker that loses its lease mid-simulation (the reaper requeued it, or
a resume fenced it out) gets :class:`~repro.service.lease.LeaseLost`
from the renewal inside its heartbeat hook, abandons the point, and
moves on; the new owner's result is the one that lands.

Fault injection (CI only): ``REPRO_SERVICE_INJECT`` is a JSON object
``{"worker": "w1", "die_after_claims": 2, "flag": "/path"}`` — the named
worker hard-exits (``os._exit``, no cleanup, exactly like SIGKILL) right
after its Nth successful claim, once per flag file, which is how the
service smoke test manufactures a deterministic mid-campaign worker
death for the reaper to heal.
"""

import json
import os
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.campaign import CampaignJournal
from repro.harness.runcache import RunCache, entry_from_result
from repro.harness.simulator import RunConfig, simulate
from repro.service.lease import (DEFAULT_LEASE_SECONDS, LeaseLost,
                                 claim_next, complete_point, fail_point,
                                 release_point, renew_lease)
from repro.service.queue import configs_from_spec

__all__ = ["WorkerOptions", "work_campaign_dir", "work_service"]

INJECT_ENV = "REPRO_SERVICE_INJECT"


@dataclass
class WorkerOptions:
    """Knobs for one worker process."""

    worker_id: str = ""
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.5     # idle wait between schedule polls
    max_idle_polls: int = 0        # 0 = poll forever (daemon pool mode)
    max_points: int = 0            # 0 = unbounded
    cache_dir: Optional[str] = None
    log: bool = True

    def __post_init__(self):
        if not self.worker_id:
            self.worker_id = f"w{os.getpid()}"


@dataclass
class WorkerReport:
    """What one worker loop did, for logs and tests."""

    worker_id: str = ""
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lease_lost: int = 0
    cache_hits: int = 0
    idle_polls: int = 0
    campaigns: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


def _log(options: WorkerOptions, msg: str) -> None:
    if options.log:
        print(f"worker[{options.worker_id}]: {msg}", file=sys.stderr,
              flush=True)


class _Injection:
    """The ``REPRO_SERVICE_INJECT`` crash plan for this process, if any."""

    def __init__(self, worker_id: str):
        self.die_after_claims = 0
        self.flag: Optional[str] = None
        raw = os.environ.get(INJECT_ENV)
        if not raw:
            return
        try:
            plan = json.loads(raw)
        except json.JSONDecodeError:
            return
        if not isinstance(plan, dict) or plan.get("worker") != worker_id:
            return
        self.die_after_claims = int(plan.get("die_after_claims", 0))
        self.flag = plan.get("flag")

    def maybe_die(self, claims: int) -> None:
        if not self.die_after_claims or claims < self.die_after_claims:
            return
        if self.flag:
            # Once only: the flag file arbitrates which incarnation dies
            # (a respawned worker with the same id must survive).
            try:
                fd = os.open(self.flag,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except OSError:
                return
        # SIGKILL semantics: no journal cleanup, no lease release — the
        # point this worker holds must be healed by the reaper.
        os._exit(37)


def _run_point(journal: CampaignJournal, key: str, config: RunConfig,
               options: WorkerOptions, report: WorkerReport,
               cache: Optional[RunCache]) -> None:
    """Simulate one claimed point and publish the outcome."""
    worker = options.worker_id
    if cache is not None:
        hit = cache.get(config)
        if hit is not None:
            if complete_point(journal, key, worker, hit, source="cache"):
                report.cache_hits += 1
                report.completed += 1
            return

    # Renewing from the heartbeat hook gives the lease exactly the
    # liveness the lease protocol wants: a simulating worker renews every
    # heartbeat_interval << lease_seconds, a SIGKILLed worker stops
    # renewing instantly, and a fenced-out worker aborts mid-simulation
    # because LeaseLost propagates out of core.run.
    last_renew = [0.0]

    def on_heartbeat(payload: Dict) -> None:
        now = time.monotonic()
        if now - last_renew[0] < options.heartbeat_interval / 2.0:
            return
        last_renew[0] = now
        renew_lease(journal, key, worker,
                    lease_seconds=options.lease_seconds, hb=payload)

    try:
        result = simulate(config, on_heartbeat=on_heartbeat,
                          heartbeat_interval=options.heartbeat_interval)
    except LeaseLost:
        report.lease_lost += 1
        _log(options, f"lease lost on {key}; abandoning")
        return
    except Exception as exc:  # noqa: BLE001 - a point must never kill the loop
        report.failed += 1
        fail_point(journal, key, worker, f"{type(exc).__name__}: {exc}")
        _log(options, f"FAILED {key}: {exc}")
        return
    entry = entry_from_result(result)
    if cache is not None:
        cache.put(config, entry)
    if complete_point(journal, key, worker, entry):
        report.completed += 1
        _log(options, f"done {key} ({result.wall_seconds:.1f}s)")
    else:
        _log(options, f"done {key} (duplicate; first completion kept)")


def _campaign_configs(journal: CampaignJournal) -> Dict[str, RunConfig]:
    """``key -> RunConfig`` for every point the manifest spec names."""
    manifest = journal.load_manifest() or {}
    spec = manifest.get("spec") or {}
    if not spec.get("workloads") or not spec.get("engines"):
        return {}
    return {c.cache_key(): c for c in configs_from_spec(spec)}


def work_campaign_dir(campaign_dir, options: Optional[WorkerOptions] = None
                      ) -> WorkerReport:
    """Drain one campaign directory: claim until nothing is claimable.

    Safe to run many of these concurrently against the same directory
    (that is the whole point); each returns once every manifest point is
    done/failed or leased to somebody else.
    """
    options = options or WorkerOptions()
    report = WorkerReport(worker_id=options.worker_id)
    journal = CampaignJournal(campaign_dir)
    injection = _Injection(options.worker_id)
    configs = _campaign_configs(journal)
    if not configs:
        _log(options, f"no runnable manifest under {campaign_dir}")
        return report
    cache = RunCache(options.cache_dir) if options.cache_dir else None
    report.campaigns.append(str(campaign_dir))
    keys = list(configs)
    while True:
        if options.max_points and report.claimed >= options.max_points:
            break
        got = claim_next(journal, keys, options.worker_id,
                         lease_seconds=options.lease_seconds)
        if got is None:
            break
        key, _shard = got
        report.claimed += 1
        injection.maybe_die(report.claimed)
        _run_point(journal, key, configs[key], options, report, cache)
    return report


# ----------------------------------------------------------------------
# Connected mode: the daemon picks the campaign, the journal settles the
# claim.
# ----------------------------------------------------------------------
def _http_json(url: str, timeout: float = 10.0) -> Optional[Dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except (urllib.error.URLError, OSError, json.JSONDecodeError):
        return None


def work_service(base_url: str, options: Optional[WorkerOptions] = None
                 ) -> WorkerReport:
    """Work for a daemon: poll ``/schedule``, claim one point, repeat.

    The loop ends when the daemon asks (``{"shutdown": true}``), the
    daemon becomes unreachable, ``max_idle_polls`` consecutive polls
    offer nothing (0 = never), or ``max_points`` claims were made.
    """
    options = options or WorkerOptions()
    report = WorkerReport(worker_id=options.worker_id)
    injection = _Injection(options.worker_id)
    base = base_url.rstrip("/")
    caches: Dict[str, RunCache] = {}
    idle = 0
    misses = 0
    while True:
        if options.max_points and report.claimed >= options.max_points:
            break
        doc = _http_json(f"{base}/schedule?worker={options.worker_id}")
        if doc is None:
            misses += 1
            if misses >= 5:
                _log(options, f"daemon at {base} unreachable; exiting")
                break
            time.sleep(options.poll_interval)
            continue
        misses = 0
        if doc.get("shutdown"):
            _log(options, "daemon asked for shutdown")
            break
        campaign_dir = doc.get("dir")
        if not campaign_dir:
            idle += 1
            report.idle_polls += 1
            if options.max_idle_polls and idle >= options.max_idle_polls:
                break
            time.sleep(float(doc.get("retry_after",
                                      options.poll_interval)))
            continue
        journal = CampaignJournal(campaign_dir)
        configs = _campaign_configs(journal)
        keys = [k for k in doc.get("keys") or configs if k in configs]
        lease_seconds = float(doc.get("lease_seconds",
                                      options.lease_seconds))
        got = claim_next(journal, keys, options.worker_id,
                         lease_seconds=lease_seconds)
        if got is None:
            # Lost every race (or the offer went stale): not idleness,
            # just contention; poll again immediately.
            continue
        idle = 0
        key, _shard = got
        report.claimed += 1
        if campaign_dir not in report.campaigns:
            report.campaigns.append(campaign_dir)
        injection.maybe_die(report.claimed)
        cache = None
        cache_dir = doc.get("cache_dir") or options.cache_dir
        if cache_dir:
            cache = caches.setdefault(str(cache_dir), RunCache(cache_dir))
        opts = options if lease_seconds == options.lease_seconds else \
            WorkerOptions(worker_id=options.worker_id,
                          lease_seconds=lease_seconds,
                          heartbeat_interval=options.heartbeat_interval,
                          log=options.log)
        _run_point(journal, key, configs[key], opts, report, cache)
    # Courtesy: hand back anything still leased (crash paths skip this
    # by construction; the reaper covers them).
    for campaign_dir in report.campaigns:
        journal = CampaignJournal(campaign_dir)
        manifest = journal.load_manifest() or {}
        for point in manifest.get("points", ()):
            release_point(journal, point["key"], options.worker_id)
    return report
