"""Pull-model campaign worker: claim, simulate, publish, repeat.

One worker process runs one point at a time: it claims a pending point
through a transport, simulates it with the lease renewed from the
simulation heartbeat hook (so a healthy worker's lease never lapses and
watchers see live progress in the point shard), publishes the result,
and claims the next.  The point loop (:func:`_run_point`) is
transport-agnostic; the two deployments differ only in which
:mod:`repro.service.transport` implementation hands points out:

* :func:`work_campaign_dir` — aimed straight at a campaign directory
  (``repro worker --dir CAMP``): drains that one campaign through the
  local lease layer (:class:`~repro.service.transport.LocalJournal`)
  and exits.
* :func:`work_service` — connected to a daemon
  (``repro worker --connect URL``): polls ``GET /schedule`` for which
  campaign to claim from next, then claims/renews/publishes through the
  daemon's ``POST /claim``/``/renew``/``/complete``/``/fail`` protocol
  (:class:`~repro.service.transport.RemoteJournal`).  A connected
  worker **never touches the campaign root** — it is never even told
  the path — so worker hosts need no shared filesystem.  All HTTP goes
  through the resilient :class:`~repro.service.httpclient.ServiceClient`
  (retries, backoff, circuit breaker): a daemon restart or a flaky link
  degrades the worker to a breaker-paced reconnect loop instead of an
  exit.  ``WorkerOptions.max_misses`` (0 = never) bounds how many
  consecutive failed schedule polls are tolerated before giving up.

A worker that loses its lease mid-simulation (the reaper requeued it, or
a resume fenced it out) gets :class:`~repro.service.lease.LeaseLost`
from the renewal inside its heartbeat hook, abandons the point, and
moves on; the new owner's result is the one that lands.  On exit the
worker courteously releases exactly the points it still holds —
transports track held keys, so the release is O(held), not a
release-everything sweep over the manifest.

Fault injection (CI only): ``REPRO_SERVICE_INJECT`` is a JSON object
``{"worker": "w1", "die_after_claims": 2, "flag": "/path"}`` — the named
worker hard-exits (``os._exit``, no cleanup, exactly like SIGKILL) right
after its Nth successful claim, once per flag file, which is how the
service smoke tests manufacture a deterministic mid-campaign worker
death for the reaper to heal.  Two further plan keys exercise the
result-integrity path: ``"corrupt_after_claims": N`` makes the worker
silently perturb one SimStats field of every entry from its Nth claim
on before publishing (the silent-data-corruption failure mode audits
exist to catch), and ``"fail_workload": "name"`` makes it report every
point of that workload as failed (a deterministic crash-looping point
for the poison breaker).  ``"worker": "*"`` matches any worker id, for
fleet-wide plans.
"""

import json
import os
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.harness.campaign import CampaignJournal
from repro.harness.runcache import RunCache, entry_from_result
from repro.harness.simulator import RunConfig, simulate
from repro.service.httpclient import (CircuitOpen, HttpStatusError, NotFound,
                                      ServiceClient, TransportError)
from repro.service.lease import DEFAULT_LEASE_SECONDS, LeaseLost
from repro.service.queue import configs_from_spec
from repro.service.transport import LocalJournal, RemoteJournal

__all__ = ["WorkerOptions", "work_campaign_dir", "work_service"]

INJECT_ENV = "REPRO_SERVICE_INJECT"


@dataclass
class WorkerOptions:
    """Knobs for one worker process."""

    worker_id: str = ""
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.5     # idle wait between schedule polls
    max_idle_polls: int = 0        # 0 = poll forever (daemon pool mode)
    max_points: int = 0            # 0 = unbounded
    max_misses: int = 0            # consecutive failed polls before exit
    #                                (0 = never die: the circuit breaker
    #                                paces reconnection instead)
    cache_dir: Optional[str] = None
    log: bool = True
    # Resilient-client knobs (connected mode).
    http_timeout: float = 10.0
    http_retries: int = 4
    http_backoff: float = 0.25
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 5.0
    publish_retry_seconds: float = 120.0

    def __post_init__(self):
        if not self.worker_id:
            self.worker_id = f"w{os.getpid()}"


@dataclass
class WorkerReport:
    """What one worker loop did, for logs and tests."""

    worker_id: str = ""
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lease_lost: int = 0
    cache_hits: int = 0
    idle_polls: int = 0
    released: int = 0
    campaigns: List[str] = field(default_factory=list)
    # Connected-mode transport health.
    http_retries: int = 0
    breaker_opens: int = 0
    renew_misses: int = 0
    publish_retries: int = 0

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


def _log(options: WorkerOptions, msg: str) -> None:
    if options.log:
        print(f"worker[{options.worker_id}]: {msg}", file=sys.stderr,
              flush=True)


class _Injection:
    """The ``REPRO_SERVICE_INJECT`` fault plan for this process, if any."""

    def __init__(self, worker_id: str):
        self.die_after_claims = 0
        self.corrupt_after_claims = 0
        self.fail_workload: Optional[str] = None
        self.flag: Optional[str] = None
        raw = os.environ.get(INJECT_ENV)
        if not raw:
            return
        try:
            plan = json.loads(raw)
        except json.JSONDecodeError:
            return
        if not isinstance(plan, dict):
            return
        target = plan.get("worker")
        if target != worker_id and target != "*":
            return
        self.die_after_claims = int(plan.get("die_after_claims", 0))
        self.corrupt_after_claims = int(plan.get("corrupt_after_claims", 0))
        self.fail_workload = plan.get("fail_workload")

        self.flag = plan.get("flag")

    def maybe_die(self, claims: int) -> None:
        if not self.die_after_claims or claims < self.die_after_claims:
            return
        if self.flag:
            # Once only: the flag file arbitrates which incarnation dies
            # (a respawned worker with the same id must survive).
            try:
                fd = os.open(self.flag,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except OSError:
                return
        # SIGKILL semantics: no journal cleanup, no lease release — the
        # point this worker holds must be healed by the reaper.
        os._exit(37)

    def maybe_corrupt(self, claims: int, entry: Dict) -> bool:
        """Perturb one SimStats field in-place; True if it corrupted.

        Silent-data-corruption semantics: the worker believes the run
        succeeded and publishes a well-formed entry whose payload is
        off by one — exactly what a bad host or bit-rot produces, and
        exactly what the daemon's sampled audits must catch.
        """
        if not self.corrupt_after_claims or \
                claims < self.corrupt_after_claims:
            return False
        entry["cycles"] = int(entry.get("cycles", 0)) + 1
        return True

    def should_fail(self, config: RunConfig) -> bool:
        return (self.fail_workload is not None and
                config.workload == self.fail_workload)


def _run_point(transport, key: str, config: RunConfig,
               options: WorkerOptions, report: WorkerReport,
               cache: Optional[RunCache],
               injection: Optional[_Injection] = None,
               audit: bool = False) -> None:
    """Simulate one claimed point and publish the outcome.

    Transport-agnostic: ``transport`` is a
    :class:`~repro.service.transport.LocalJournal` or
    :class:`~repro.service.transport.RemoteJournal`; both renew from the
    heartbeat hook, raise :class:`LeaseLost` only on authoritative
    fencing, and publish idempotently (first done wins).

    ``audit`` runs re-execute an already-done point for the daemon's
    integrity monitor: the local RunCache is bypassed in both directions
    (a cache hit would just echo the entry under audit back at the
    daemon, and the audit result must not clobber a good cached entry
    before arbitration settles who is right).
    """
    if injection is not None and injection.should_fail(config):
        report.failed += 1
        transport.fail(key, "InjectedFailure: fail_workload plan")
        _log(options, f"FAILED {key} (injected)")
        return
    if cache is not None and not audit:
        hit = cache.get(config)
        if hit is not None:
            if transport.complete(key, hit, source="cache"):
                report.cache_hits += 1
                report.completed += 1
            return

    # Renewing from the heartbeat hook gives the lease exactly the
    # liveness the lease protocol wants: a simulating worker renews every
    # heartbeat_interval << lease_seconds, a SIGKILLed worker stops
    # renewing instantly, and a fenced-out worker aborts mid-simulation
    # because LeaseLost propagates out of core.run.
    last_renew = [0.0]

    def on_heartbeat(payload: Dict) -> None:
        now = time.monotonic()
        if now - last_renew[0] < options.heartbeat_interval / 2.0:
            return
        last_renew[0] = now
        transport.renew(key, options.lease_seconds, hb=payload)

    try:
        result = simulate(config, on_heartbeat=on_heartbeat,
                          heartbeat_interval=options.heartbeat_interval)
    except LeaseLost:
        report.lease_lost += 1
        _log(options, f"lease lost on {key}; abandoning")
        return
    except Exception as exc:  # noqa: BLE001 - a point must never kill the loop
        report.failed += 1
        transport.fail(key, f"{type(exc).__name__}: {exc}")
        _log(options, f"FAILED {key}: {exc}")
        return
    entry = entry_from_result(result)
    corrupted = (injection is not None and
                 injection.maybe_corrupt(report.claimed, entry))
    if cache is not None and not audit and not corrupted:
        cache.put(config, entry)
    source = "audit" if audit else "worker"
    if transport.complete(key, entry, source=source):
        report.completed += 1
        _log(options, f"done {key} ({result.wall_seconds:.1f}s)")
    else:
        _log(options, f"done {key} (duplicate; first completion kept)")


def _campaign_configs(journal: CampaignJournal) -> Dict[str, RunConfig]:
    """``key -> RunConfig`` for every point the manifest spec names."""
    manifest = journal.load_manifest() or {}
    spec = manifest.get("spec") or {}
    if not spec.get("workloads") or not spec.get("engines"):
        return {}
    return {c.cache_key(): c for c in configs_from_spec(spec)}


def work_campaign_dir(campaign_dir, options: Optional[WorkerOptions] = None
                      ) -> WorkerReport:
    """Drain one campaign directory: claim until nothing is claimable.

    Safe to run many of these concurrently against the same directory
    (that is the whole point); each returns once every manifest point is
    done/failed or leased to somebody else.
    """
    options = options or WorkerOptions()
    report = WorkerReport(worker_id=options.worker_id)
    journal = CampaignJournal(campaign_dir)
    injection = _Injection(options.worker_id)
    configs = _campaign_configs(journal)
    if not configs:
        _log(options, f"no runnable manifest under {campaign_dir}")
        return report
    cache = RunCache(options.cache_dir) if options.cache_dir else None
    report.campaigns.append(str(campaign_dir))
    transport = LocalJournal(journal, options.worker_id, configs)
    while True:
        if options.max_points and report.claimed >= options.max_points:
            break
        got = transport.claim(lease_seconds=options.lease_seconds)
        if got is None:
            break
        key, config, _shard = got
        report.claimed += 1
        injection.maybe_die(report.claimed)
        _run_point(transport, key, config, options, report, cache,
                   injection=injection)
    # Courtesy: hand back anything still held (crash paths skip this by
    # construction; the reaper covers them). O(held) — normally zero.
    report.released = transport.release_held()
    return report


# ----------------------------------------------------------------------
# Connected mode: the daemon picks the campaign, the daemon's lease
# endpoints settle the claim. No filesystem in sight.
# ----------------------------------------------------------------------
def work_service(base_url: str, options: Optional[WorkerOptions] = None
                 ) -> WorkerReport:
    """Work for a daemon: poll ``/schedule``, claim one point, repeat.

    The loop ends when the daemon asks (``{"shutdown": true}``),
    ``max_idle_polls`` consecutive polls offer nothing (0 = never),
    ``max_points`` claims were made, or — only when ``max_misses`` is
    nonzero — that many consecutive polls failed outright.  With the
    default ``max_misses=0`` an unreachable daemon never kills the
    worker: the circuit breaker fails polls fast and the loop becomes a
    slow reconnect loop until the daemon returns.
    """
    options = options or WorkerOptions()
    report = WorkerReport(worker_id=options.worker_id)
    injection = _Injection(options.worker_id)
    client = ServiceClient(
        base_url, worker_id=options.worker_id,
        timeout=options.http_timeout, retries=options.http_retries,
        backoff=options.http_backoff,
        breaker_threshold=options.breaker_threshold,
        breaker_reset_seconds=options.breaker_reset_seconds)
    remotes: Dict[str, RemoteJournal] = {}
    cache = RunCache(options.cache_dir) if options.cache_dir else None
    idle = 0
    misses = 0

    def miss(why: str) -> bool:
        """Count one failed poll; True when the loop should give up."""
        nonlocal misses
        misses += 1
        if options.max_misses and misses >= options.max_misses:
            _log(options, f"daemon unreachable ({why}) for {misses} "
                          "consecutive polls; exiting")
            return True
        return False

    while True:
        if options.max_points and report.claimed >= options.max_points:
            break
        try:
            doc = client.get(f"/schedule?worker={options.worker_id}"
                             "&remote=1")
        except CircuitOpen as exc:
            if miss("circuit open"):
                break
            time.sleep(min(max(exc.retry_in, 0.05), 2.0))
            continue
        except (TransportError, HttpStatusError) as exc:
            if miss(str(exc)):
                break
            time.sleep(options.poll_interval)
            continue
        misses = 0
        if doc.get("shutdown"):
            _log(options, "daemon asked for shutdown")
            break
        cid = doc.get("campaign_id")
        if not cid:
            idle += 1
            report.idle_polls += 1
            if options.max_idle_polls and idle >= options.max_idle_polls:
                break
            time.sleep(float(doc.get("retry_after",
                                      options.poll_interval)))
            continue
        lease_seconds = float(doc.get("lease_seconds",
                                      options.lease_seconds))
        remote = remotes.get(cid)
        if remote is None:
            remote = RemoteJournal(
                client, cid, options.worker_id,
                publish_retry_seconds=options.publish_retry_seconds,
                log=lambda msg: _log(options, msg))
            remotes[cid] = remote
        try:
            got = remote.claim(doc.get("keys"),
                               lease_seconds=lease_seconds)
        except NotFound:
            # The campaign is authoritatively gone (daemon restarted
            # without it, or it was deleted): drop it and move on.
            _log(options, f"campaign {cid} gone; dropping it")
            remotes.pop(cid, None)
            continue
        except CircuitOpen as exc:
            if miss("circuit open"):
                break
            time.sleep(min(max(exc.retry_in, 0.05), 2.0))
            continue
        except (TransportError, HttpStatusError) as exc:
            if miss(str(exc)):
                break
            time.sleep(options.poll_interval)
            continue
        if got is None:
            # Lost every race (or the offer went stale): not idleness,
            # just contention; poll again immediately.
            continue
        idle = 0
        key, config, _shard = got
        report.claimed += 1
        if cid not in report.campaigns:
            report.campaigns.append(cid)
        injection.maybe_die(report.claimed)
        opts = options if lease_seconds == options.lease_seconds else \
            replace(options, lease_seconds=lease_seconds)
        _run_point(remote, key, config, opts, report, cache,
                   injection=injection,
                   audit=bool((_shard or {}).get("audit")))
    # Courtesy: hand back exactly the points still held (normally none).
    for remote in remotes.values():
        report.released += remote.release_held()
    report.http_retries = client.stats.retries
    report.breaker_opens = client.stats.breaker_opens
    report.renew_misses = sum(r.renew_misses for r in remotes.values())
    report.publish_retries = sum(r.publish_retries
                                 for r in remotes.values())
    return report
