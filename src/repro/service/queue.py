"""Submission queue: specs, tenants, quotas, fairness, back-pressure.

Pure bookkeeping — no HTTP, no filesystem — so every scheduling rule is
unit-testable in microseconds.  The daemon owns one :class:`ServiceState`
and funnels every submission, cancellation, and scheduling decision
through it under its lock.

Scheduling model
----------------
A campaign is submitted by a *tenant* with a *priority*.  Campaigns are
*activated* (journal prepared, points claimable) up to a cap, and active
campaigns are offered to pulling workers in **weighted fair order**: the
tenant with the smallest ``leased / weight`` deficit goes first, ties
break by priority (higher first) then submission order.  A tenant at its
``max_leased`` quota is skipped entirely — its campaigns stay queued or
idle-active while other tenants' workers proceed, which is exactly the
isolation property the quotas exist to give.

Because workers *pull*, quota enforcement has a read-claim window; the
state closes it with short-lived **offers**: every scheduling response
counts against the tenant's quota for a few seconds (or until the
journal shows the lease), so two workers racing the same quota slot
cannot both be offered it.

Back-pressure
-------------
``max_queued_points`` bounds the total not-yet-done points across queued
and active campaigns.  A submission that would cross the bound raises
:class:`BackPressure`, which the HTTP layer maps to ``429 Retry-After``.
"""

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.simulator import ENGINES, RunConfig

__all__ = ["SweepSpec", "ValidationError", "BackPressure", "TenantPolicy",
           "CampaignRecord", "ServiceState", "configs_from_spec"]

# Hard ceiling on points per submission: a cross product past this is a
# spec mistake, not a workload (the queue bound handles real volume).
MAX_POINTS_PER_CAMPAIGN = 4096
MAX_INSTRUCTIONS = 50_000_000


class ValidationError(ValueError):
    """A submission spec is malformed (HTTP 400)."""


class BackPressure(RuntimeError):
    """The queue is full; retry after ``retry_after`` seconds (HTTP 429)."""

    def __init__(self, depth: int, bound: int, retry_after: float):
        self.depth = depth
        self.bound = bound
        self.retry_after = retry_after
        super().__init__(f"queue depth {depth} at bound {bound}; "
                         f"retry after {retry_after:.0f}s")


@dataclass
class SweepSpec:
    """A validated sweep submission: the cross product it names."""

    workloads: List[str]
    engines: List[str]
    instructions: int

    @classmethod
    def validate(cls, doc: Dict, known_workloads) -> "SweepSpec":
        if not isinstance(doc, dict):
            raise ValidationError("submission body must be a JSON object")
        workloads = doc.get("workloads")
        engines = doc.get("engines")
        instructions = doc.get("instructions", 100_000)
        if (not isinstance(workloads, list) or not workloads
                or not all(isinstance(w, str) for w in workloads)):
            raise ValidationError("'workloads' must be a non-empty list "
                                  "of names")
        unknown = [w for w in workloads if w not in known_workloads]
        if unknown:
            raise ValidationError(f"unknown workloads: {unknown}")
        if (not isinstance(engines, list) or not engines
                or not all(isinstance(e, str) for e in engines)):
            raise ValidationError("'engines' must be a non-empty list")
        bad = [e for e in engines if e not in ENGINES]
        if bad:
            raise ValidationError(f"unknown engines: {bad} "
                                  f"(known: {list(ENGINES)})")
        if not isinstance(instructions, int) or isinstance(instructions, bool) \
                or not 1 <= instructions <= MAX_INSTRUCTIONS:
            raise ValidationError("'instructions' must be an int in "
                                  f"[1, {MAX_INSTRUCTIONS}]")
        if len(workloads) * len(engines) > MAX_POINTS_PER_CAMPAIGN:
            raise ValidationError(
                f"{len(workloads) * len(engines)} points exceeds the "
                f"per-campaign cap of {MAX_POINTS_PER_CAMPAIGN}")
        # Dedup while preserving order: a repeated name would mint
        # duplicate journal keys.
        workloads = list(dict.fromkeys(workloads))
        engines = list(dict.fromkeys(engines))
        return cls(workloads=workloads, engines=engines,
                   instructions=instructions)

    def to_dict(self) -> Dict:
        return {"workloads": list(self.workloads),
                "engines": list(self.engines),
                "instructions": self.instructions}

    @property
    def points(self) -> int:
        return len(self.workloads) * len(self.engines)


def configs_from_spec(spec: Dict) -> List[RunConfig]:
    """The point set a manifest/submission spec names, in sweep order.

    The single shared derivation: the daemon (at activation), every
    worker (rebuilding configs from the manifest), and the CLI ``sweep``
    path must mint identical :class:`RunConfig` objects — and therefore
    identical ``cache_key()``s — from the same spec, or results stop
    being content-addressed.
    """
    return [RunConfig(workload=w, engine=e,
                      max_instructions=int(spec["instructions"]))
            for w in spec["workloads"] for e in spec["engines"]]


@dataclass
class TenantPolicy:
    """Per-tenant scheduling policy.

    ``weight`` scales the fair-share deficit (2.0 = entitled to twice
    the leased points of a weight-1.0 tenant under contention);
    ``max_leased`` hard-caps concurrently leased points (None = no cap).
    """

    weight: float = 1.0
    max_leased: Optional[int] = None


@dataclass
class CampaignRecord:
    """One submitted campaign's service-side state."""

    id: str
    tenant: str
    priority: int
    spec: Dict
    dir: str
    submitted_unix: float
    seq: int
    status: str = "queued"   # queued -> active -> done|failed|cancelled
    total_points: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    leased: int = 0          # running points with an unexpired lease
    lease_expired: int = 0
    deduped: int = 0         # points served from the run cache at activation
    audits_pending: int = 0  # integrity audits still holding us open
    finished_unix: Optional[float] = None
    error: Optional[str] = None

    def finished_points(self) -> int:
        """Points in a terminal status (done, failed, or poisoned)."""
        return (self.counts.get("done", 0) + self.counts.get("failed", 0)
                + self.counts.get("poisoned", 0))

    def remaining(self) -> int:
        return max(0, self.total_points - self.finished_points())

    def to_dict(self) -> Dict:
        return {
            "id": self.id, "tenant": self.tenant, "priority": self.priority,
            "spec": self.spec, "dir": self.dir, "status": self.status,
            "submitted_unix": self.submitted_unix,
            "finished_unix": self.finished_unix,
            "total_points": self.total_points, "counts": dict(self.counts),
            "leased": self.leased, "lease_expired": self.lease_expired,
            "deduped": self.deduped, "audits_pending": self.audits_pending,
            "error": self.error,
        }


class ServiceState:
    """Thread-safe campaign registry + scheduler (the daemon's brain)."""

    def __init__(self, known_workloads,
                 max_queued_points: int = 100_000,
                 max_active_campaigns: int = 4,
                 retry_after: float = 5.0,
                 offer_ttl: float = 2.0,
                 tenants: Optional[Dict[str, TenantPolicy]] = None,
                 default_policy: Optional[TenantPolicy] = None):
        self.known_workloads = set(known_workloads)
        self.max_queued_points = max_queued_points
        self.max_active_campaigns = max_active_campaigns
        self.retry_after = retry_after
        self.offer_ttl = offer_ttl
        self.tenants = dict(tenants or {})
        self.default_policy = default_policy or TenantPolicy()
        self.campaigns: Dict[str, CampaignRecord] = {}
        self.peak_leased: Dict[str, int] = {}
        self._offers: Dict[str, List[float]] = {}  # tenant -> offer deadlines
        self._seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------ intake
    def policy(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)

    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth_locked()

    def _queue_depth_locked(self) -> int:
        return sum(c.remaining() for c in self.campaigns.values()
                   if c.status in ("queued", "active"))

    def tenant_queue_depth(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for c in self.campaigns.values():
                if c.status in ("queued", "active"):
                    out[c.tenant] = out.get(c.tenant, 0) + c.remaining()
            return out

    def submit(self, doc: Dict, make_dir) -> CampaignRecord:
        """Validate + enqueue one submission; raises
        :class:`ValidationError` / :class:`BackPressure`.

        ``make_dir(campaign_id)`` maps the minted id to a journal
        directory (the daemon owns the filesystem layout).
        """
        spec = SweepSpec.validate(doc, self.known_workloads)
        tenant = doc.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant \
                or len(tenant) > 64 or "/" in tenant:
            raise ValidationError("'tenant' must be a short name")
        priority = doc.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValidationError("'priority' must be an int")
        with self._lock:
            depth = self._queue_depth_locked()
            if depth + spec.points > self.max_queued_points:
                raise BackPressure(depth, self.max_queued_points,
                                   self.retry_after)
            self._seq += 1
            cid = f"c{self._seq:04d}"
            record = CampaignRecord(
                id=cid, tenant=tenant, priority=priority,
                spec=spec.to_dict(), dir=str(make_dir(cid)),
                submitted_unix=round(time.time(), 3), seq=self._seq,
                total_points=spec.points)
            record.counts = {"pending": spec.points}
            self.campaigns[cid] = record
            return record

    def adopt(self, record: CampaignRecord) -> None:
        """Register a campaign recovered from disk at daemon startup."""
        with self._lock:
            self.campaigns[record.id] = record
            self._seq = max(self._seq, record.seq)

    def get(self, cid: str) -> Optional[CampaignRecord]:
        with self._lock:
            return self.campaigns.get(cid)

    def cancel(self, cid: str) -> Optional[CampaignRecord]:
        """Cooperative cancel: no new claims; in-flight points finish."""
        with self._lock:
            record = self.campaigns.get(cid)
            if record is None:
                return None
            if record.status in ("queued", "active"):
                record.status = "cancelled"
                record.finished_unix = round(time.time(), 3)
            return record

    # -------------------------------------------------------- scheduling
    def _tenant_leased_locked(self) -> Dict[str, float]:
        now = time.monotonic()
        leased: Dict[str, float] = {}
        for c in self.campaigns.values():
            if c.status == "active":
                leased[c.tenant] = leased.get(c.tenant, 0) + c.leased
        for tenant, deadlines in self._offers.items():
            live = [d for d in deadlines if d > now]
            self._offers[tenant] = live
            leased[tenant] = leased.get(tenant, 0) + len(live)
        return leased

    def _fair_order_locked(self, records: List[CampaignRecord],
                           leased: Dict[str, float]) -> List[CampaignRecord]:
        def sort_key(c: CampaignRecord):
            deficit = leased.get(c.tenant, 0) / max(
                self.policy(c.tenant).weight, 1e-9)
            return (deficit, -c.priority, c.seq)
        return sorted(records, key=sort_key)

    def to_activate(self) -> List[CampaignRecord]:
        """Queued campaigns that should activate now, in fair order."""
        with self._lock:
            active = [c for c in self.campaigns.values()
                      if c.status == "active"]
            slots = self.max_active_campaigns - len(active)
            if slots <= 0:
                return []
            queued = [c for c in self.campaigns.values()
                      if c.status == "queued"]
            leased = self._tenant_leased_locked()
            return self._fair_order_locked(queued, leased)[:slots]

    def schedule(self, offer: bool = True) -> List[CampaignRecord]:
        """Active campaigns a worker may claim from, weighted-fair order.

        Quota-capped tenants are filtered out; with ``offer`` each
        returned campaign's tenant is charged one short-lived offer so
        concurrent pollers cannot oversubscribe a quota slot.
        """
        with self._lock:
            leased = self._tenant_leased_locked()
            claimable = [c for c in self.campaigns.values()
                         if c.status == "active"
                         and (c.counts.get("pending", 0) > 0
                              or c.audits_pending > 0)]
            eligible = []
            for c in self._fair_order_locked(claimable, leased):
                cap = self.policy(c.tenant).max_leased
                if cap is not None and leased.get(c.tenant, 0) >= cap:
                    continue
                eligible.append(c)
            if offer and eligible:
                head = eligible[0]
                self._offers.setdefault(head.tenant, []).append(
                    time.monotonic() + self.offer_ttl)
            return eligible

    # -------------------------------------------------------- refreshing
    def refresh_counts(self, cid: str, counts: Dict[str, int],
                       leased: int, lease_expired: int,
                       audits_pending: int = 0,
                       retrying: int = 0) -> None:
        """Fold one journal scan into the record (scheduler loop).

        A campaign is terminal only when every point reached a terminal
        status *and* no integrity audit is still in flight — a campaign
        must not report ``done`` while a sampled result is unverified.
        Poisoned points count as finished (that is the whole point of
        the breaker: the campaign completes around them) but make the
        terminal status ``failed``, like failed points do.  ``retrying``
        discounts failed points the reaper still owes a retry (or a
        poison verdict) — they are in flight, not terminal.
        """
        with self._lock:
            record = self.campaigns.get(cid)
            if record is None:
                return
            record.counts = dict(counts)
            record.leased = leased
            record.lease_expired = lease_expired
            record.audits_pending = audits_pending
            if record.status == "active":
                finished = (counts.get("done", 0) + counts.get("failed", 0)
                            + counts.get("poisoned", 0) - retrying)
                if (record.total_points and finished >= record.total_points
                        and audits_pending == 0):
                    record.status = ("failed"
                                     if counts.get("failed")
                                     or counts.get("poisoned")
                                     else "done")
                    record.finished_unix = round(time.time(), 3)
            tenant_leased: Dict[str, int] = {}
            for c in self.campaigns.values():
                if c.status == "active":
                    tenant_leased[c.tenant] = (tenant_leased.get(c.tenant, 0)
                                               + c.leased)
            for tenant, n in tenant_leased.items():
                if n > self.peak_leased.get(tenant, 0):
                    self.peak_leased[tenant] = n

    def mark_active(self, cid: str, deduped: int = 0) -> None:
        with self._lock:
            record = self.campaigns.get(cid)
            if record is not None and record.status == "queued":
                record.status = "active"
                record.deduped = deduped

    def snapshot(self) -> Dict:
        """The ``GET /campaigns`` document (and the metrics substrate)."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for c in self.campaigns.values():
                by_status[c.status] = by_status.get(c.status, 0) + 1
            return {
                "campaigns": [c.to_dict() for c in
                              sorted(self.campaigns.values(),
                                     key=lambda c: c.seq)],
                "by_status": by_status,
                "queued_points": self._queue_depth_locked(),
                "max_queued_points": self.max_queued_points,
                "peak_leased": dict(self.peak_leased),
            }
