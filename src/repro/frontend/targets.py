"""Branch-target structures: BTB, return-address stack, indirect predictor.

Our simulator pre-decodes instructions at fetch (the code image is a Python
object), so direct branch targets are always known; the BTB is still
modelled because Phelps' Delinquent Branch Table training and the fetch
unit's loop-bound checks use its hit/miss behaviour, and because indirect
jumps (JALR) genuinely need target prediction.
"""

from typing import List, Optional


class BranchTargetBuffer:
    """Set-associative PC -> target cache for taken control transfers."""

    def __init__(self, sets: int = 1024, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self._sets = sets
        self._ways = ways
        # Per set: list of [tag, target], most-recently-used first.
        self._table: List[List[List[int]]] = [[] for _ in range(sets)]

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self._sets - 1)

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for ``pc``, or None on miss."""
        s = self._table[self._set_index(pc)]
        for i, (tag, target) in enumerate(s):
            if tag == pc:
                if i:
                    s.insert(0, s.pop(i))
                return target
        return None

    def insert(self, pc: int, target: int) -> None:
        s = self._table[self._set_index(pc)]
        for i, entry in enumerate(s):
            if entry[0] == pc:
                entry[1] = target
                if i:
                    s.insert(0, s.pop(i))
                return
        s.insert(0, [pc, target])
        if len(s) > self._ways:
            s.pop()


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry lost)."""

    def __init__(self, depth: int = 32):
        self._depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self._depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def checkpoint(self) -> List[int]:
        return list(self._stack)

    def restore(self, state: List[int]) -> None:
        self._stack = list(state)


class IndirectTargetPredictor:
    """Last-target table for JALR (other than returns)."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._targets: List[Optional[int]] = [None] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        return self._targets[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        self._targets[self._index(pc)] = target
