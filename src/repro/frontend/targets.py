"""Branch-target structures: BTB, return-address stack, indirect predictor.

Our simulator pre-decodes instructions at fetch (the code image is a Python
object), so direct branch targets are always known; the BTB is still
modelled because Phelps' Delinquent Branch Table training and the fetch
unit's loop-bound checks use its hit/miss behaviour, and because indirect
jumps (JALR) genuinely need target prediction.

Columnar layout: each BTB set is a pair of parallel flat int lists
(tags / targets, MRU first) probed with C-speed ``list.index``; the RAS
checkpoint is copy-on-write, so the per-fetched-uop checkpoint is a cached
shared list invalidated only when the stack actually mutates.  The
pre-refactor BTB lives in :mod:`repro.core.legacy`.
"""

from typing import List, Optional


class BranchTargetBuffer:
    """Set-associative PC -> target cache for taken control transfers."""

    def __init__(self, sets: int = 1024, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self._sets = sets
        self._ways = ways
        # Parallel per-set columns, most-recently-used first.
        self._tags: List[List[int]] = [[] for _ in range(sets)]
        self._targets: List[List[int]] = [[] for _ in range(sets)]

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self._sets - 1)

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for ``pc``, or None on miss."""
        idx = (pc >> 2) & (self._sets - 1)
        tags = self._tags[idx]
        try:
            i = tags.index(pc)
        except ValueError:
            return None
        targets = self._targets[idx]
        if i:
            tags.insert(0, tags.pop(i))
            targets.insert(0, targets.pop(i))
            return targets[0]
        return targets[i]

    def insert(self, pc: int, target: int) -> None:
        idx = (pc >> 2) & (self._sets - 1)
        tags = self._tags[idx]
        targets = self._targets[idx]
        try:
            i = tags.index(pc)
        except ValueError:
            tags.insert(0, pc)
            targets.insert(0, target)
            if len(tags) > self._ways:
                tags.pop()
                targets.pop()
            return
        targets[i] = target
        if i:
            tags.insert(0, tags.pop(i))
            targets.insert(0, targets.pop(i))


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry lost).

    ``checkpoint`` is copy-on-write: the main pipeline checkpoints the RAS
    on *every* fetched uop, but the stack only mutates on call/return, so
    consecutive checkpoints share one frozen copy.  ``restore`` copies the
    incoming state, so shared checkpoint lists are never mutated.
    """

    def __init__(self, depth: int = 32):
        self._depth = depth
        self._stack: List[int] = []
        self._ckpt: Optional[List[int]] = None

    def push(self, return_pc: int) -> None:
        self._ckpt = None
        self._stack.append(return_pc)
        if len(self._stack) > self._depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        if self._stack:
            self._ckpt = None
            return self._stack.pop()
        return None

    def checkpoint(self) -> List[int]:
        ckpt = self._ckpt
        if ckpt is None:
            ckpt = self._ckpt = list(self._stack)
        return ckpt

    def restore(self, state: List[int]) -> None:
        self._ckpt = None
        self._stack = list(state)


class IndirectTargetPredictor:
    """Last-target table for JALR (other than returns)."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._targets: List[Optional[int]] = [None] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        return self._targets[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        self._targets[self._index(pc)] = target
