"""TAGE-SC-L-lite: the core's default direction predictor.

A scaled-down but structurally faithful TAGE-SC-L (Seznec, CBP-5):

* ``TAGE``: a bimodal base table plus ``num_tables`` partially-tagged
  tables with geometrically increasing history lengths, usefulness
  counters, alt-prediction, and use-alt-on-newly-allocated policy.
* ``SC`` (statistical corrector lite): perceptron-style bias tables that
  can override a weak TAGE prediction when the statistical evidence
  disagrees.
* ``L`` (loop predictor): detects constant trip counts and predicts the
  loop-exit instance exactly.

The paper's evaluation uses the 64 KB championship configuration; ours is
scaled to match the scaled workload footprints (see DESIGN.md §3).  What
matters for reproducing the paper is preserved: branches whose outcomes are
regular functions of control history are predicted nearly perfectly, while
*delinquent* branches (outcomes driven by arbitrary data values) stay
unpredictable no matter the history length.
"""

from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.frontend.base import BranchPredictor, PredictorMeta
from repro.utils.bits import fold_bits


@dataclass
class TageConfig:
    """Geometry of the TAGE-SC-L-lite predictor."""

    num_tables: int = 6
    table_entries: int = 1024
    base_entries: int = 4096
    tag_bits: int = 9
    min_history: int = 4
    max_history: int = 128
    counter_bits: int = 3
    useful_bits: int = 2
    use_sc: bool = True
    use_loop: bool = True
    loop_entries: int = 64
    loop_confidence: int = 2
    useful_reset_period: int = 32768

    def history_lengths(self) -> List[int]:
        """Geometric series of history lengths, one per tagged table."""
        if self.num_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1.0 / (self.num_tables - 1))
        lengths = []
        for i in range(self.num_tables):
            lengths.append(max(1, int(round(self.min_history * (ratio ** i)))))
        return lengths


class _TaggedTable:
    """One TAGE component table.

    Index/tag hashing is memoised per ``(pc, masked-history)`` pair: loop
    workloads revisit a small set of branch PCs under recurring history
    patterns, so the XOR-fold chains (six ``fold_bits`` calls per probe)
    collapse to one dict hit.  The cache is a pure-function memo — it never
    changes results — and is bounded (cleared when it outgrows its cap) and
    dropped from pickles.
    """

    __slots__ = ("entries", "index_bits", "tag_bits", "history_len",
                 "tags", "ctrs", "useful", "_mask", "_hist_mask", "_memo",
                 "_pc_fold")

    _MEMO_CAP = 1 << 16

    def __init__(self, entries: int, tag_bits: int, history_len: int):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.history_len = history_len
        self._mask = entries - 1
        # ``fold_bits`` truncates its input to 64 bits, so histories longer
        # than that cannot influence the hash — clamping the memo key's
        # mask to 64 bits is exact and stops >64-bit tables from
        # fragmenting their cache across hash-identical histories.
        self._hist_mask = (1 << min(history_len, 64)) - 1
        self._memo = {}
        self._pc_fold = {}
        self.tags = [0] * entries
        self.ctrs = [4] * entries  # 3-bit, 0..7, taken when >= 4
        self.useful = [0] * entries

    def _hash(self, pc: int, h: int) -> tuple:
        # Two differently-folded history images (one shifted) so that short
        # histories cannot cancel out of the index.  The PC folds do not
        # depend on the history, so they memoise per PC.
        pcf = self._pc_fold.get(pc)
        if pcf is None:
            pcf = self._pc_fold[pc] = (fold_bits(pc >> 2, self.index_bits),
                                       fold_bits(pc >> 2, self.tag_bits))
        idx = (pcf[0]
               ^ fold_bits(h, self.index_bits)
               ^ (fold_bits(h, max(1, self.index_bits - 2)) << 1)) & self._mask
        t = (pcf[1]
             ^ fold_bits(h, self.tag_bits)
             ^ (fold_bits(h, self.tag_bits - 1) << 1))
        tag = t & ((1 << self.tag_bits) - 1) or 1  # tag 0 means "invalid"
        return idx, tag

    def index_tag(self, pc: int, history: int) -> tuple:
        """Memoised (index, tag) for a probe."""
        key = (pc, history & self._hist_mask)
        hit = self._memo.get(key)
        if hit is None:
            memo = self._memo
            if len(memo) >= self._MEMO_CAP:
                memo.clear()
            hit = memo[key] = self._hash(key[0], key[1])
        return hit

    def index(self, pc: int, history: int) -> int:
        return self.index_tag(pc, history)[0]

    def tag(self, pc: int, history: int) -> int:
        return self.index_tag(pc, history)[1]

    def __getstate__(self):
        return {
            "entries": self.entries,
            "tag_bits": self.tag_bits,
            "history_len": self.history_len,
            "tags": array("i", self.tags).tobytes(),
            "ctrs": bytes(self.ctrs),
            "useful": bytes(self.useful),
        }

    def __setstate__(self, state):
        self.__init__(state["entries"], state["tag_bits"], state["history_len"])
        tags = array("i")
        tags.frombytes(state["tags"])
        self.tags = tags.tolist()
        self.ctrs = list(state["ctrs"])
        self.useful = list(state["useful"])


class _LoopEntry:
    __slots__ = ("pc", "trip", "confidence", "arch_iter")

    def __init__(self, pc: int):
        self.pc = pc
        self.trip = -1
        self.confidence = 0
        self.arch_iter = 0


class TageSCL(BranchPredictor):
    """TAGE + statistical corrector + loop predictor."""

    def __init__(self, config: Optional[TageConfig] = None):
        self.config = config or TageConfig()
        cfg = self.config
        self._tables = [
            _TaggedTable(cfg.table_entries, cfg.tag_bits, hist)
            for hist in cfg.history_lengths()
        ]
        self._base = [2] * cfg.base_entries  # 2-bit counters
        self._base_mask = cfg.base_entries - 1
        self._ghr = 0
        self._ghr_mask = (1 << cfg.max_history) - 1
        self._use_alt_on_na = 7  # 4-bit centered counter, 0..15 (>=8 favours alt)
        self._update_count = 0
        # Statistical corrector: two tables of centered weights.
        self._sc_pc = [0] * 1024
        self._sc_hist = [0] * 1024
        self._sc_threshold = 6
        # Loop predictor: committed state per PC, speculative iteration dict.
        self._loops: Dict[int, _LoopEntry] = {}
        self._loop_spec_iter: Dict[int, int] = {}
        # Copy-on-write checkpoint cache: the pipeline checkpoints the
        # predictor on every fetched uop, but speculative state only
        # mutates on branches, so consecutive checkpoints share one frozen
        # (ghr, dict-copy) tuple.  Invalidated by every mutation of the
        # ghr or the speculative loop iterators; ``restore`` copies, so a
        # shared checkpoint is never mutated through the live dict.
        self._ckpt = None
        # Per-PC fold memo for the statistical corrector (pure function).
        self._sc_fold: Dict[int, int] = {}
        # Stats observable by tests.
        self.predictions = 0
        self.provider_hits = 0

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------
    def _base_index(self, pc: int) -> int:
        return (pc >> 2) & self._base_mask

    def _tage_lookup(self, pc: int) -> Tuple[bool, dict]:
        ghr = self._ghr
        lookups = [table.index_tag(pc, ghr) for table in self._tables]
        # Provider = longest-history hit; alt = next-longest.
        provider, alt = None, None
        for t in range(len(self._tables) - 1, -1, -1):
            idx, tag = lookups[t]
            if self._tables[t].tags[idx] == tag:
                if provider is None:
                    provider = (t, idx)
                elif alt is None:
                    alt = (t, idx)
                    break
        base_idx = self._base_index(pc)
        base_pred = self._base[base_idx] >= 2

        if alt is not None:
            t, idx = alt
            alt_pred = self._tables[t].ctrs[idx] >= 4
        else:
            alt_pred = base_pred

        if provider is not None:
            t, idx = provider
            ctr = self._tables[t].ctrs[idx]
            provider_pred = ctr >= 4
            newly_allocated = self._tables[t].useful[idx] == 0 and ctr in (3, 4)
            if newly_allocated and self._use_alt_on_na >= 8:
                pred = alt_pred
                used_alt = True
            else:
                pred = provider_pred
                used_alt = False
        else:
            provider_pred = base_pred
            pred = base_pred
            used_alt = False

        info = {
            "lookups": lookups,
            "provider": provider,
            "alt": alt,
            "base_idx": base_idx,
            "provider_pred": provider_pred,
            "alt_pred": alt_pred,
            "used_alt": used_alt,
            "tage_pred": pred,
        }
        return pred, info

    def _sc_lookup(self, pc: int, tage_pred: bool, info: dict) -> Tuple[bool, dict]:
        """Statistical corrector: may invert a weak TAGE prediction."""
        i1 = self._sc_fold.get(pc)
        if i1 is None:
            i1 = self._sc_fold[pc] = fold_bits(pc >> 2, 10)
        # fold_bits(v, 10) is the identity for v < 1024, so the folded
        # 8-bit history image is just the raw low history byte.
        i2 = (i1 ^ (self._ghr & 0xFF)) & 1023
        total = self._sc_pc[i1] + self._sc_hist[i2] + (5 if tage_pred else -5)
        sc_pred = total >= 0
        use_sc = abs(total) > self._sc_threshold and sc_pred != tage_pred
        sc_info = {"i1": i1, "i2": i2, "total": total, "use_sc": use_sc}
        return (sc_pred if use_sc else tage_pred), sc_info

    def _loop_lookup(self, pc: int) -> Tuple[Optional[bool], bool]:
        """Returns (prediction, valid) from the loop predictor."""
        entry = self._loops.get(pc)
        if entry is None or entry.confidence < self.config.loop_confidence:
            return None, False
        spec_iter = self._loop_spec_iter.get(pc, entry.arch_iter)
        return spec_iter < entry.trip, True

    def predict(self, pc: int) -> PredictorMeta:
        self.predictions += 1
        pred, info = self._tage_lookup(pc)
        if info["provider"] is not None:
            self.provider_hits += 1
        sc_info = None
        if self.config.use_sc:
            pred, sc_info = self._sc_lookup(pc, pred, info)
        loop_used = False
        if self.config.use_loop:
            loop_pred, valid = self._loop_lookup(pc)
            if valid:
                pred = loop_pred
                loop_used = True
        info["sc"] = sc_info
        info["loop_used"] = loop_used
        return PredictorMeta(taken=pred, payload=info)

    # ------------------------------------------------------------------
    # Speculative history.
    # ------------------------------------------------------------------
    def spec_update(self, pc: int, taken: bool) -> None:
        self._ckpt = None
        self._ghr = ((self._ghr << 1) | int(taken)) & self._ghr_mask
        if self.config.use_loop and pc in self._loops:
            entry = self._loops[pc]
            cur = self._loop_spec_iter.get(pc, entry.arch_iter)
            self._loop_spec_iter[pc] = cur + 1 if taken else 0

    def checkpoint(self) -> Any:
        ckpt = self._ckpt
        if ckpt is None:
            ckpt = self._ckpt = (self._ghr, dict(self._loop_spec_iter))
        return ckpt

    def restore(self, state: Any) -> None:
        self._ckpt = None
        self._ghr, self._loop_spec_iter = state[0], dict(state[1])

    # ------------------------------------------------------------------
    # Retire-time training.
    # ------------------------------------------------------------------
    def _allocate(self, pc: int, taken: bool, info: dict) -> None:
        provider = info["provider"]
        start = (provider[0] + 1) if provider is not None else 0
        if start >= len(self._tables):
            return
        # Find an entry with useful == 0 in a longer table; decay otherwise.
        allocated = False
        for t in range(start, len(self._tables)):
            idx, tag = info["lookups"][t]
            table = self._tables[t]
            if table.useful[idx] == 0:
                table.tags[idx] = tag
                table.ctrs[idx] = 4 if taken else 3
                table.useful[idx] = 0
                allocated = True
                break
        if not allocated:
            for t in range(start, len(self._tables)):
                idx, _ = info["lookups"][t]
                if self._tables[t].useful[idx] > 0:
                    self._tables[t].useful[idx] -= 1

    def _update_tage(self, pc: int, taken: bool, info: dict) -> None:
        provider = info["provider"]
        tage_pred = info["tage_pred"]

        # Use-alt-on-newly-allocated policy training.
        if provider is not None:
            t, idx = provider
            table = self._tables[t]
            ctr = table.ctrs[idx]
            newly = table.useful[idx] == 0 and ctr in (3, 4)
            if newly and info["provider_pred"] != info["alt_pred"]:
                if info["provider_pred"] == taken and self._use_alt_on_na > 0:
                    self._use_alt_on_na -= 1
                elif info["provider_pred"] != taken and self._use_alt_on_na < 15:
                    self._use_alt_on_na += 1

        if tage_pred != taken:
            self._allocate(pc, taken, info)

        if provider is not None:
            t, idx = provider
            table = self._tables[t]
            ctr = table.ctrs[idx]
            if taken and ctr < 7:
                table.ctrs[idx] = ctr + 1
            elif not taken and ctr > 0:
                table.ctrs[idx] = ctr - 1
            if info["provider_pred"] != info["alt_pred"]:
                if info["provider_pred"] == taken:
                    if table.useful[idx] < (1 << self.config.useful_bits) - 1:
                        table.useful[idx] += 1
                elif table.useful[idx] > 0:
                    table.useful[idx] -= 1
            # Train the alt/base when the provider entry is weak.
            if ctr in (3, 4):
                self._train_alt(pc, taken, info)
        else:
            self._train_base(pc, taken, info)

        self._update_count += 1
        if self._update_count % self.config.useful_reset_period == 0:
            for table in self._tables:
                table.useful = [u >> 1 for u in table.useful]

    def _train_base(self, pc: int, taken: bool, info: dict) -> None:
        idx = info["base_idx"]
        v = self._base[idx]
        self._base[idx] = min(3, v + 1) if taken else max(0, v - 1)

    def _train_alt(self, pc: int, taken: bool, info: dict) -> None:
        alt = info["alt"]
        if alt is None:
            self._train_base(pc, taken, info)
        else:
            t, idx = alt
            table = self._tables[t]
            ctr = table.ctrs[idx]
            if taken and ctr < 7:
                table.ctrs[idx] = ctr + 1
            elif not taken and ctr > 0:
                table.ctrs[idx] = ctr - 1

    def _update_sc(self, taken: bool, info: dict) -> None:
        sc = info.get("sc")
        if sc is None:
            return
        # Perceptron-style: train on use or low confidence.
        if sc["use_sc"] or abs(sc["total"]) <= self._sc_threshold * 2:
            delta = 1 if taken else -1
            self._sc_pc[sc["i1"]] = max(-31, min(31, self._sc_pc[sc["i1"]] + delta))
            self._sc_hist[sc["i2"]] = max(-31, min(31, self._sc_hist[sc["i2"]] + delta))

    def _update_loop(self, pc: int, taken: bool) -> None:
        self._ckpt = None  # may mutate _loop_spec_iter (eviction below)
        entry = self._loops.get(pc)
        if entry is None:
            if not taken:
                return  # only start tracking branches seen taken (loop-like)
            if len(self._loops) >= self.config.loop_entries:
                # Evict an unconfident entry if possible.
                victim = next((k for k, e in self._loops.items() if e.confidence == 0), None)
                if victim is None:
                    return
                del self._loops[victim]
                self._loop_spec_iter.pop(victim, None)
            entry = _LoopEntry(pc)
            self._loops[pc] = entry
        if taken:
            entry.arch_iter += 1
            if entry.trip >= 0 and entry.arch_iter > entry.trip:
                # Ran past the learned trip count: trip is not constant.
                entry.confidence = 0
                entry.trip = -1
        else:
            if entry.arch_iter == entry.trip:
                entry.confidence = min(15, entry.confidence + 1)
            else:
                entry.trip = entry.arch_iter
                entry.confidence = 0
            entry.arch_iter = 0

    def update(self, pc: int, taken: bool, meta: PredictorMeta) -> None:
        info = meta.payload
        if info is None:  # defensive: prediction made without lookup
            return
        self._update_tage(pc, taken, info)
        if self.config.use_sc:
            self._update_sc(taken, info)
        if self.config.use_loop:
            self._update_loop(pc, taken)

    # ------------------------------------------------------------------
    # Compact serialization: counter columns pickle as packed bytes, and
    # the pure-function memos are dropped (rebuilt on demand).
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_base"] = bytes(state["_base"])
        state["_sc_pc"] = array("b", state["_sc_pc"]).tobytes()
        state["_sc_hist"] = array("b", state["_sc_hist"]).tobytes()
        state["_sc_fold"] = {}
        state["_ckpt"] = None
        return state

    def __setstate__(self, state):
        state["_base"] = list(state["_base"])
        for key in ("_sc_pc", "_sc_hist"):
            col = array("b")
            col.frombytes(state[key])
            state[key] = col.tolist()
        self.__dict__.update(state)
