"""Branch prediction stack.

The paper's baseline core uses a 64 KB TAGE-SC-L predictor; we provide a
scaled TAGE-SC-L-lite (:class:`TageSCL`), plus the bimodal predictor Branch
Runahead uses for speculative chain triggering, a gshare for tests, and the
target-prediction structures (BTB, return-address stack, indirect table).
"""

from repro.frontend.base import BranchPredictor, PredictorMeta
from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GsharePredictor
from repro.frontend.tage import TageSCL, TageConfig
from repro.frontend.targets import BranchTargetBuffer, ReturnAddressStack, IndirectTargetPredictor

__all__ = [
    "BranchPredictor",
    "PredictorMeta",
    "BimodalPredictor",
    "GsharePredictor",
    "TageSCL",
    "TageConfig",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "IndirectTargetPredictor",
]
