"""Gshare predictor: PC xor global-history indexed 2-bit counters."""

from repro.frontend.base import BranchPredictor, PredictorMeta
from repro.utils.bits import fold_bits
from repro.utils.counters import SaturatingCounter


class GsharePredictor(BranchPredictor):
    """Classic gshare with speculative global history."""

    def __init__(self, entries: int = 8192, history_bits: int = 12):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._index_bits = entries.bit_length() - 1
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._table = [SaturatingCounter(2) for _ in range(entries)]
        self._ghr = 0  # speculative global history

    def _index(self, pc: int, history: int) -> int:
        return (fold_bits(pc >> 2, self._index_bits) ^ fold_bits(history, self._index_bits)) & self._mask

    def predict(self, pc: int) -> PredictorMeta:
        idx = self._index(pc, self._ghr)
        return PredictorMeta(taken=self._table[idx].taken, payload=idx)

    def spec_update(self, pc: int, taken: bool) -> None:
        self._ghr = ((self._ghr << 1) | int(taken)) & self._history_mask

    def checkpoint(self):
        return self._ghr

    def restore(self, state) -> None:
        self._ghr = state

    def update(self, pc: int, taken: bool, meta: PredictorMeta) -> None:
        # Train the entry actually used at prediction time.
        idx = meta.payload if meta and meta.payload is not None else self._index(pc, self._ghr)
        self._table[idx].update(taken)
