"""Bimodal (per-PC 2-bit counter) predictor.

Branch Runahead (paper Section II / VI) uses a bimodal predictor inside the
helper engine to speculatively trigger child chains; it is also a useful
baseline in tests.
"""

from repro.frontend.base import BranchPredictor, PredictorMeta
from repro.utils.counters import SaturatingCounter


class BimodalPredictor(BranchPredictor):
    """A table of n-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._entries = entries
        self._mask = entries - 1
        self._bits = counter_bits
        self._table = [SaturatingCounter(counter_bits) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> PredictorMeta:
        return PredictorMeta(taken=self._table[self._index(pc)].taken)

    def update(self, pc: int, taken: bool, meta: PredictorMeta = None) -> None:
        self._table[self._index(pc)].update(taken)

    def confidence(self, pc: int) -> bool:
        """True when the counter is saturated (high-confidence direction)."""
        return self._table[self._index(pc)].is_saturated
