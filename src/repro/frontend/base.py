"""Common branch-predictor interface.

The out-of-order core drives predictors in three phases:

1. ``predict(pc)`` at fetch — returns the direction and an opaque
   :class:`PredictorMeta` that travels with the instruction.
2. ``spec_update(pc, taken)`` at fetch — speculatively shifts the predicted
   direction into the global history.  ``checkpoint()`` /
   ``restore(state)`` bracket this so squashes can repair the history.
3. ``update(pc, taken, meta)`` at retire — trains the tables with the
   architectural outcome.
"""

import abc
from dataclasses import dataclass, field
from typing import Any


@dataclass
class PredictorMeta:
    """Opaque per-prediction payload carried from fetch to retire."""

    taken: bool = False
    payload: Any = None


class BranchPredictor(abc.ABC):
    """Abstract conditional-branch direction predictor."""

    @abc.abstractmethod
    def predict(self, pc: int) -> PredictorMeta:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, meta: PredictorMeta) -> None:
        """Train with the resolved outcome (called at retire, in order)."""

    def warm(self, pc: int, taken: bool) -> None:
        """Train on one branch outcome outside simulation (checkpoint
        warmup): a full predict / speculative-history / retire-update
        round trip, so warmed state matches what an in-order execution of
        the same stream would have left behind."""
        meta = self.predict(pc)
        self.spec_update(pc, taken)
        self.update(pc, taken, meta)

    # History management — predictors without global history inherit no-ops.
    def spec_update(self, pc: int, taken: bool) -> None:
        """Speculatively push a predicted outcome into global history."""

    def checkpoint(self) -> Any:
        """Snapshot speculative history state (cheap, copy-on-write style)."""
        return None

    def restore(self, state: Any) -> None:
        """Restore history state captured by :meth:`checkpoint`."""
