"""Branch Runahead configuration."""

from dataclasses import dataclass, field

from repro.phelps.config import PhelpsConfig


@dataclass
class BRConfig:
    """BR-spec vs BR-non-spec (paper Fig. 11), plus shared training knobs.

    BR reuses the Phelps training pipeline (DBT/LT/HTCB/LPT/CDFSM) to find
    delinquent loops and slice chains; ``construction`` carries those
    parameters.  Stores are always excluded (the paper's choice for BR).
    """

    speculative_triggering: bool = True
    bimodal_entries: int = 4096
    queue_depth: int = 32
    construction: PhelpsConfig = field(default_factory=lambda: PhelpsConfig(
        include_stores=False))

    def __post_init__(self):
        if self.construction.include_stores:
            raise ValueError("Branch Runahead chains exclude stores (Section VI)")
