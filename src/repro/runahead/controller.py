"""Branch Runahead engine.

Shares the Phelps training pipeline (DBT / LT / HTCB / LPT / slice growth)
— the two techniques find the same delinquent loops — but deploys
BR-style chains: real control flow predicted by a bimodal trigger
predictor, per-PC FIFO queues, queue-flush rollbacks on consumed-wrong
outcomes, always one chain engine (no dual decoupled threads), stores
excluded.
"""

import dataclasses
from typing import Optional

from repro.core.thread import ThreadContext, ThreadKind
from repro.core.uop import Uop
from repro.frontend import BimodalPredictor
from repro.isa.opcodes import Opcode
from repro.phelps.controller import PhelpsEngine
from repro.phelps.loop_table import LoopTableEntry
from repro.phelps.slicer import HelperThreadBuilder

from repro.runahead.config import BRConfig
from repro.runahead.fetch import BRFetchUnit
from repro.runahead.queues import BRQueueFile


def _flatten_loop(entry: LoopTableEntry) -> LoopTableEntry:
    """BR has no dual decoupled threads: treat every loop as one region."""
    flat = LoopTableEntry(entry.loop_branch, entry.loop_target)
    flat.delinquent_branches = list(entry.delinquent_branches)
    flat.mispredicts = entry.mispredicts
    return flat


class BranchRunaheadEngine(PhelpsEngine):
    def __init__(self, config: Optional[BRConfig] = None):
        self.br_cfg = config or BRConfig()
        super().__init__(self.br_cfg.construction)
        self.brqueues = BRQueueFile(self.br_cfg.queue_depth)
        self.bimodal = BimodalPredictor(self.br_cfg.bimodal_entries)
        self.rollbacks = 0

    # ----------------------------------------------------- observability
    def _register_metrics(self, registry) -> None:
        super()._register_metrics(registry)
        registry.register_provider("br.queues", lambda: self.brqueues.per_pc)

    # ------------------------------------------------------------ fetch
    def fetch_override(self, thread: ThreadContext, inst):
        if self.active_row is None or not self.brqueues.has_queue(inst.pc):
            return None
        result = self.brqueues.consume(inst.pc)
        if result is None and self.events is not None:
            self.events.queue_not_timely(self.core.cycle, inst.pc)
        return result

    def _spec_head_advance(self, inst) -> None:
        pass  # no loop-iteration lockstep in BR

    def checkpoint(self):
        if self.active_row is None:
            return None
        return self.brqueues.checkpoint()

    def restore(self, state) -> None:
        if state is not None and self.active_row is not None:
            self.brqueues.restore(state)

    def retire_blocked(self, thread: ThreadContext, uop: Uop) -> bool:
        return False  # BR queues drop outcomes when full instead of stalling

    # ----------------------------------------------------- construction
    def _make_builder(self, candidate: LoopTableEntry) -> HelperThreadBuilder:
        return HelperThreadBuilder(self.cfg, _flatten_loop(candidate),
                                   keep_branches=True)

    # ------------------------------------------------------------ retire
    def _on_retire_main(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        row = self.active_row

        if inst.is_cond_branch:
            self.dbt.note_retired(inst.pc, bool(uop.taken), inst.imm, uop.mispredicted)
            if uop.mispredicted:
                self._classify_mispredict(inst.pc)
            if uop.queue_token is not None:
                qpc, _idx, predicted = uop.queue_token
                self.brqueues.retire_consumed(qpc)
                if predicted != bool(uop.taken):
                    # Selective chain-group rollback (Fig. 10b): flush only
                    # the affected group's queues; independent groups keep
                    # their outcomes (chain-group-level parallelism).
                    self.queue_wrong += 1
                    self.rollbacks += 1
                    self.brqueues.note_consumed_wrong(qpc)
                    if self.events is not None:
                        self.events.emit(self.core.cycle, "br_rollback",
                                         "queues", pc=f"{qpc:#x}")
                    self.brqueues.flush(row.chain_group(qpc) if row else None)

        if self.builder is not None:
            self.builder.note_retired(inst, uop.taken, uop.mem_addr)

        if row is not None and not row.contains(inst.pc):
            self._terminate(reason="region_exit")
            row = None

        if row is None and self.active_row is None:
            trigger_row = self.htc.lookup_trigger(inst.pc)
            if trigger_row is not None:
                self._trigger(trigger_row)

        self.epoch_retired += 1
        if self.epoch_retired >= self.cfg.epoch_length:
            self._end_epoch()

    def _on_retire_helper(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        if self.active_row is None:
            return
        if inst.opcode is Opcode.MOV_LIVEIN:
            if uop.livein_value is None and self._trigger_moves_pending > 0:
                self._trigger_moves_pending -= 1
                if self._trigger_moves_pending == 0:
                    self.core.main.wait_for_moves = False
            return
        if inst.is_cond_branch:
            self.bimodal.update(inst.pc, bool(uop.taken))
            if self.brqueues.has_queue(inst.pc):
                self.brqueues.deposit(inst.pc, bool(uop.taken))
            unit = thread.fetch
            if isinstance(unit, BRFetchUnit):
                unit.resume(inst.pc, bool(uop.taken), uop.actual_target or 0)
            if inst.pc == self.active_row.loop_branch and uop.taken is False:
                thread.fetch.stop()

    def on_helper_branch_mispredicted(self, thread: ThreadContext, uop: Uop) -> None:
        if self.active_row is None:
            return
        unit = thread.fetch
        if uop.pc == self.active_row.loop_branch and uop.taken is False:
            unit.stop()
            return
        if isinstance(unit, BRFetchUnit):
            unit.redirect_after_branch(uop)

    # ------------------------------------------------------- trigger/stop
    def _trigger(self, row) -> None:
        core = self.core
        self.brqueues.configure(row.queue_assignment.keys())
        core.full_squash()
        core.set_partition_mode("MT_ITO")
        self.active_row = row
        self.activations += 1
        self.loop_status[row.start_pc] = "deployed"
        if self.events is not None:
            self.events.helper_trigger(core.cycle, row.start_pc, nested=False)
        self.ht_threads.clear()
        unit = BRFetchUnit(row.inner_insts, self.bimodal,
                           speculative=self.br_cfg.speculative_triggering)
        ito = core.add_helper_thread(ThreadKind.INNER_ONLY, unit, "ITO")
        ito.read_value = core._read_committed
        ito.commit_store = lambda addr, value: None
        moves = unit.inject_moves(row.mt_liveins_outer)
        self.ht_threads["ITO"] = ito
        self._trigger_moves_pending = moves
        if moves > 0:
            core.main.wait_for_moves = True
        self._watchdog_retired = core.main.retired
        self._watchdog_since = 0

    def _terminate(self, reason: str = "exit") -> None:
        super()._terminate(reason)
        self.brqueues.deactivate()

    def stats(self) -> dict:
        base = super().stats()
        base["br_queue"] = self.brqueues.stats()
        base["rollbacks"] = self.rollbacks
        base["speculative"] = self.br_cfg.speculative_triggering
        return base
