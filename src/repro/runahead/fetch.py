"""Branch Runahead chain-engine fetch unit.

The chain row keeps real control flow: non-loop conditional branches are
predicted by the engine's bimodal trigger predictor (BR-spec) or stall the
engine until resolution (BR-non-spec).  Taken branches skip to the first
row instruction at/after the target PC; the loop branch (last instruction)
wraps.
"""

from typing import List, Optional

from repro.frontend import BimodalPredictor
from repro.isa.instruction import Instruction
from repro.phelps.fetch import HelperFetchUnit


class BRFetchUnit(HelperFetchUnit):
    def __init__(self, insts: List[Instruction], bimodal: BimodalPredictor,
                 speculative: bool = True):
        super().__init__(insts)
        self.bimodal = bimodal
        self.speculative = speculative
        self.loop_branch_pc = insts[-1].pc
        self._stalled_on: Optional[Instruction] = None
        # pc -> row index of the first instruction with inst.pc >= pc.
        self._resume_index = {}
        for i, inst in enumerate(insts):
            self._resume_index[inst.pc] = i

    def _index_at_or_after(self, pc: int) -> int:
        for i, inst in enumerate(self.insts):
            if inst.pc >= pc:
                return i
        return 0  # past the end: only the loop branch is there; wrap

    # ------------------------------------------------------------------
    def peek(self) -> Optional[Instruction]:
        if self._stalled_on is not None:
            return None  # BR-non-spec: waiting for the parent to resolve
        return super().peek()

    def predict_branch(self, inst: Instruction) -> bool:
        if inst.pc == self.loop_branch_pc:
            return True  # loop wrap, as in Phelps
        if self.speculative:
            return self.bimodal.predict(inst.pc).taken
        # Non-speculative triggering: fetch stalls at the parent branch;
        # the predicted direction is provisional (not-taken) and the stall
        # is released by resolution (``resume``).
        self._stalled_on = inst
        return False

    def advance(self, taken: bool, target: Optional[int]) -> None:
        if self._pending:
            self._pending.pop(0)
            return
        inst = self.insts[self.idx]
        if inst.is_cond_branch:
            if inst.pc == self.loop_branch_pc:
                self.idx = 0
            elif taken:
                self.idx = self._index_at_or_after(target)
            else:
                self.idx += 1
                if self.idx >= len(self.insts):
                    self.idx = 0
        else:
            self.idx += 1
            if self.idx >= len(self.insts):
                self.idx = 0

    # ------------------------------------------------------------------
    def resume(self, branch_pc: int, taken: bool, target: int) -> None:
        """Non-spec: the stalled-on parent resolved; continue fetching."""
        if self._stalled_on is not None and self._stalled_on.pc == branch_pc:
            self._stalled_on = None
            if taken:
                self.idx = self._index_at_or_after(target)
            # (not-taken: fetch already advanced past the branch)

    def redirect_after_branch(self, uop) -> None:
        """Spec mispredict repair: refetch from the resolved direction."""
        self._pending.clear()
        self._stalled_on = None
        if uop.pc == self.loop_branch_pc:
            self.idx = 0 if uop.taken else self.idx  # exit handled by engine
            return
        if uop.taken:
            self.idx = self._index_at_or_after(uop.actual_target)
        else:
            self.idx = (self._resume_index.get(uop.pc, 0) + 1) % len(self.insts)
