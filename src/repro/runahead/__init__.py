"""Branch Runahead comparator (Pruett & Patt, MICRO'21 — paper Section VI).

Implemented on the shared slicing/helper-engine machinery but following the
BR paradigm rather than Phelps':

* chains keep *real control flow*: a guarded delinquent branch is fetched
  in the helper engine under a bimodal trigger prediction (BR-spec) or
  stalls until its parent resolves (BR-non-spec);
* outcomes stream through *per-branch-PC FIFO queues* (no loop-iteration
  lockstep); a consumed-wrong outcome forces a chain-group-style rollback,
  modelled as a queue flush plus helper restart at the top-level chain
  (Fig. 10b);
* stores are excluded (as the paper does, to help BR).
"""

from repro.runahead.config import BRConfig
from repro.runahead.queues import BRQueueFile
from repro.runahead.fetch import BRFetchUnit
from repro.runahead.controller import BranchRunaheadEngine

__all__ = ["BRConfig", "BRQueueFile", "BRFetchUnit", "BranchRunaheadEngine"]
