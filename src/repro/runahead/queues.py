"""Per-branch-PC outcome queues for Branch Runahead.

Unlike Phelps' iteration-lockstep columns, each queue is an independent
FIFO: the helper engine pushes resolved outcomes at its tail, the main
thread consumes at a speculative head (rolled back on squash, like a real
branch queue), and retirement frees entries.  There is no cross-queue
alignment — which is exactly why a wrong outcome desynchronizes guarded
queues and forces a chain-group rollback (modelled as ``flush``).
"""

from typing import Dict, List, Optional, Tuple


class _PCQueue:
    __slots__ = ("slots", "head", "spec_head", "tail")

    def __init__(self, depth: int):
        self.slots: List[bool] = [False] * depth
        self.head = 0
        self.spec_head = 0
        self.tail = 0


class BRQueueFile:
    def __init__(self, depth: int = 32):
        self.depth = depth
        self._queues: Dict[int, _PCQueue] = {}
        self.active = False
        self.deposits = 0
        self.consumed = 0
        self.not_timely = 0
        self.consumed_wrong = 0
        self.flushes = 0
        # Per-branch-PC drill-down; persists across activations.
        self.per_pc: Dict[int, Dict[str, int]] = {}

    def _pc_stats(self, pc: int) -> Dict[str, int]:
        d = self.per_pc.get(pc)
        if d is None:
            d = self.per_pc[pc] = {"deposits": 0, "consumed": 0,
                                   "consumed_wrong": 0, "not_timely": 0}
        return d

    def configure(self, pcs) -> None:
        self._queues = {pc: _PCQueue(self.depth) for pc in pcs}
        for pc in self._queues:
            self._pc_stats(pc)
        self.active = True

    def deactivate(self) -> None:
        self.active = False
        self._queues.clear()

    def has_queue(self, pc: int) -> bool:
        return self.active and pc in self._queues

    def deposit(self, pc: int, outcome: bool) -> None:
        q = self._queues[pc]
        if q.tail - q.head >= self.depth:
            return  # queue full: the outcome is dropped (stale anyway)
        q.slots[q.tail % self.depth] = bool(outcome)
        q.tail += 1
        self.deposits += 1
        self._pc_stats(pc)["deposits"] += 1

    def consume(self, pc: int) -> Optional[Tuple[bool, Tuple[int, int, bool]]]:
        q = self._queues.get(pc)
        if q is None:
            return None
        if q.spec_head >= q.tail:
            self.not_timely += 1
            self._pc_stats(pc)["not_timely"] += 1
            return None
        outcome = q.slots[q.spec_head % self.depth]
        token = (pc, q.spec_head, outcome)
        q.spec_head += 1
        self.consumed += 1
        self._pc_stats(pc)["consumed"] += 1
        return outcome, token

    def note_consumed_wrong(self, pc: int) -> None:
        self.consumed_wrong += 1
        self._pc_stats(pc)["consumed_wrong"] += 1

    def retire_consumed(self, pc: int) -> None:
        q = self._queues.get(pc)
        if q is not None and q.head < q.spec_head:
            q.head += 1

    def flush(self, pcs=None) -> None:
        """Chain-group rollback: discard queued outcomes.

        ``pcs`` limits the flush to one chain group (BR's selective
        rollback, Fig. 10b); None flushes everything.
        """
        self.flushes += 1
        for pc, q in self._queues.items():
            if pcs is None or pc in pcs:
                q.head = q.spec_head = q.tail = 0

    # ------------------------------------------------------------------
    def checkpoint(self) -> Tuple:
        return tuple((pc, q.spec_head) for pc, q in self._queues.items())

    def restore(self, state: Tuple) -> None:
        for pc, spec_head in state:
            q = self._queues.get(pc)
            if q is not None:
                # Never roll back before head (those entries retired).
                q.spec_head = max(spec_head, q.head)

    def stats(self) -> dict:
        return {
            "deposits": self.deposits,
            "consumed": self.consumed,
            "consumed_wrong": self.consumed_wrong,
            "not_timely": self.not_timely,
            "flushes": self.flushes,
        }
