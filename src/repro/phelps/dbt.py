"""Delinquent Branch Table and DBT-Max (paper Section V-B, Figure 6).

The DBT tracks misprediction counts of conditional branches and trains the
PC bounds of the two tightest enclosing loops using the most recently
retired backward branch.  DBT-Max incrementally maintains the top-K ranking
so the epoch-end pass does not need to scan the whole DBT.
"""

from typing import Dict, List, Optional, Tuple


class DBTEntry:
    __slots__ = ("pc", "mispredicts",
                 "inner_valid", "inner_branch", "inner_target",
                 "outer_valid", "outer_branch", "outer_target")

    def __init__(self, pc: int):
        self.pc = pc
        self.mispredicts = 0
        self.inner_valid = False
        self.inner_branch = 0
        self.inner_target = 0
        self.outer_valid = False
        self.outer_branch = 0
        self.outer_target = 0

    # ------------------------------------------------------------------
    def observe_loop(self, loop_branch: int, loop_target: int) -> None:
        """Train the inner/outer loop fields with an enclosing backward
        branch.  Keeps the two tightest distinct loops, sorted inner-first."""
        if not (loop_target <= self.pc <= loop_branch):
            return
        candidates: List[Tuple[int, int]] = [(loop_branch, loop_target)]
        if self.inner_valid:
            candidates.append((self.inner_branch, self.inner_target))
        if self.outer_valid:
            candidates.append((self.outer_branch, self.outer_target))
        # Deduplicate, sort by tightness (span).
        unique = sorted(set(candidates), key=lambda bt: bt[0] - bt[1])
        self.inner_branch, self.inner_target = unique[0]
        self.inner_valid = True
        if len(unique) > 1:
            self.outer_branch, self.outer_target = unique[1]
            self.outer_valid = True

    @property
    def in_loop(self) -> bool:
        return self.inner_valid

    @property
    def is_nested(self) -> bool:
        return self.inner_valid and self.outer_valid

    def outermost(self) -> Tuple[int, int]:
        """(loop_branch, loop_target) of the outermost known enclosing loop."""
        if self.outer_valid:
            return self.outer_branch, self.outer_target
        return self.inner_branch, self.inner_target


class DBTMax:
    """Top-K ranking of DBT entries by misprediction count."""

    def __init__(self, entries: int = 32):
        self.capacity = entries
        self._counts: Dict[int, int] = {}  # branch pc -> count

    def update(self, pc: int, count: int) -> None:
        if pc in self._counts:
            self._counts[pc] = count
            return
        if len(self._counts) < self.capacity:
            self._counts[pc] = count
            return
        victim = min(self._counts, key=self._counts.get)
        if count > self._counts[victim]:
            del self._counts[victim]
            self._counts[pc] = count

    def ranked(self) -> List[Tuple[int, int]]:
        """(pc, count) pairs, most delinquent first."""
        return sorted(self._counts.items(), key=lambda kv: -kv[1])

    def reset(self) -> None:
        self._counts.clear()

    def __contains__(self, pc: int) -> bool:
        return pc in self._counts

    def __len__(self) -> int:
        return len(self._counts)


class DelinquentBranchTable:
    def __init__(self, entries: int = 256, max_entries: int = 32):
        self.capacity = entries
        self.entries: Dict[int, DBTEntry] = {}
        self.dbt_max = DBTMax(max_entries)
        self.evictions = 0
        # Optional observability hook: called with the victim PC on each
        # capacity eviction (DBT thrash is the paper's gcc failure mode).
        self.on_evict = None
        # Most recently retired backward branch (pc, target).
        self._last_backward: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    def note_retired(self, pc: int, taken: bool, target: Optional[int],
                     mispredicted: bool) -> None:
        """Retirement-unit hook for every retired conditional branch."""
        if taken and target is not None and target <= pc:
            self._last_backward = (pc, target)
        if mispredicted:
            entry = self._lookup_or_allocate(pc)
            entry.mispredicts += 1
            self.dbt_max.update(pc, entry.mispredicts)
        entry = self.entries.get(pc)
        if entry is not None and self._last_backward is not None:
            # A backward branch observes itself as its own (inner) loop —
            # a delinquent loop branch (e.g. a short inner loop's brC) is
            # inside the loop it closes.
            bpc, btgt = self._last_backward
            entry.observe_loop(bpc, btgt)

    def _lookup_or_allocate(self, pc: int) -> DBTEntry:
        entry = self.entries.get(pc)
        if entry is not None:
            return entry
        if len(self.entries) >= self.capacity:
            victim = min(self.entries.values(), key=lambda e: e.mispredicts)
            del self.entries[victim.pc]
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim.pc)
        entry = DBTEntry(pc)
        self.entries[pc] = entry
        return entry

    def get(self, pc: int) -> Optional[DBTEntry]:
        return self.entries.get(pc)

    def reset_counts(self) -> None:
        """Epoch boundary: reset misprediction counters (loop bounds persist)."""
        for entry in self.entries.values():
            entry.mispredicts = 0
        self.dbt_max.reset()
