"""Visit Queue (paper Section V-F, Figure 9).

The outer thread queues inner-loop visits — each with the live-in values
the inner thread needs — when it retires a not-taken instance of the inner
loop's header branch.  The inner thread dequeues one visit at a time, in
program order.
"""

from collections import deque
from typing import Deque, List, Optional


class VisitQueue:
    def __init__(self, depth: int = 16, live_ins_per_visit: int = 4):
        self.depth = depth
        self.live_ins_per_visit = live_ins_per_visit
        self._q: Deque[List[int]] = deque()
        self.enqueued = 0
        self.dequeued = 0

    def full(self) -> bool:
        return len(self._q) >= self.depth

    def empty(self) -> bool:
        return not self._q

    def enqueue(self, live_ins: List[int]) -> None:
        if self.full():
            raise RuntimeError("visit queue overflow (outer thread must stall)")
        if len(live_ins) > self.live_ins_per_visit:
            raise ValueError(
                f"{len(live_ins)} live-ins exceed the {self.live_ins_per_visit}-slot entry")
        self._q.append(list(live_ins))
        self.enqueued += 1

    def dequeue(self) -> Optional[List[int]]:
        if not self._q:
            return None
        self.dequeued += 1
        return self._q.popleft()

    def clear(self) -> None:
        self._q.clear()

    def __len__(self) -> int:
        return len(self._q)
