"""Helper Thread Cache (paper Section V-E).

Holds finalized helper threads for up to four loops.  Each row is tagged
with the loop's start PC (the outermost loop branch's target); a nested
row packs the outer thread into the first half and the inner thread into
the second half.  Fetching is purely sequential, wrapping at the loop
branch.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction


@dataclass
class HelperThreadRow:
    """One HTC row: a finalized helper thread (or dual helper threads)."""

    start_pc: int                 # trigger tag: target of outermost loop branch
    loop_branch: int              # outermost backward branch PC
    loop_target: int
    is_nested: bool = False
    inner_branch: int = 0
    inner_target: int = 0
    # Packed instructions.  For nested rows ``outer_insts`` is the first
    # half and ``inner_insts`` the second; otherwise only ``inner_insts``
    # is used (inner-thread-only).
    outer_insts: List[Instruction] = field(default_factory=list)
    inner_insts: List[Instruction] = field(default_factory=list)
    header_pc: Optional[int] = None  # inner loop's header branch (outer thread)
    # Live-in register sets (logical register numbers, ordered).
    mt_liveins_outer: List[int] = field(default_factory=list)  # OT or ITO <- MT
    mt_liveins_inner: List[int] = field(default_factory=list)  # IT <- MT
    ot_liveins_inner: List[int] = field(default_factory=list)  # IT <- OT (visit slots)
    # Prediction queue assignment: branch PC -> pointer set (0=OT/ITO, 1=IT).
    queue_assignment: Dict[int, int] = field(default_factory=dict)
    # Immediate-guard relation learned by the CDFSM: child PC -> parent PC.
    # Phelps uses it for predicate linking; Branch Runahead derives chain
    # groups from it (Fig. 10).
    guard_map: Dict[int, int] = field(default_factory=dict)

    def chain_group(self, pc: int) -> set:
        """All branches sharing ``pc``'s top-level (root) chain."""
        def root(p):
            seen = set()
            while p in self.guard_map and p not in seen:
                seen.add(p)
                p = self.guard_map[p]
            return p

        mine = root(pc)
        return {p for p in set(self.guard_map) | set(self.guard_map.values())
                | {pc} if root(p) == mine}

    @property
    def size(self) -> int:
        return len(self.outer_insts) + len(self.inner_insts)

    def contains(self, pc: int) -> bool:
        return self.loop_target <= pc <= self.loop_branch

    def loop_branch_pcs(self) -> List[int]:
        pcs = [self.loop_branch]
        if self.is_nested:
            pcs.append(self.inner_branch)
        return pcs


class HelperThreadCache:
    def __init__(self, rows: int = 4, row_capacity: int = 128):
        self.capacity = rows
        self.row_capacity = row_capacity
        self.rows: Dict[int, HelperThreadRow] = {}  # start_pc -> row

    def full(self) -> bool:
        return len(self.rows) >= self.capacity

    def has_loop(self, start_pc: int) -> bool:
        return start_pc in self.rows

    def install(self, row: HelperThreadRow) -> bool:
        """Install a finalized helper thread; False if it does not fit."""
        half = self.row_capacity // 2
        if row.is_nested:
            if len(row.outer_insts) > half or len(row.inner_insts) > half:
                return False
        elif row.size > self.row_capacity:
            return False
        if self.full() and row.start_pc not in self.rows:
            return False
        self.rows[row.start_pc] = row
        return True

    def lookup_trigger(self, retired_pc: int) -> Optional[HelperThreadRow]:
        """Paper Section V-F: retired PCs are compared against start PCs."""
        return self.rows.get(retired_pc)

    def known_starts(self):
        return set(self.rows)
