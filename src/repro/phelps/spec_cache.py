"""Speculative data cache for helper-thread stores (paper Section IV-A).

32 doublewords: 16 sets, 2-way set-associative, 8-byte blocks.  Helper
stores commit here (never to architectural memory); evicted data is simply
lost — which is exactly the mechanism behind the paper's "rare incorrect
b1 outcome" discussion, reproduced by our failure-injection tests.
"""

from typing import List, Optional


class SpeculativeCache:
    def __init__(self, sets: int = 16, ways: int = 2, block_bytes: int = 8):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.block_bytes = block_bytes
        self._offset_bits = block_bytes.bit_length() - 1
        # Per set: list of [tag, value], MRU first.
        self._sets: List[List[List[int]]] = [[] for _ in range(sets)]
        self.writes = 0
        self.hits = 0
        self.losses = 0  # evicted dirty doublewords (data lost)

    def _index_tag(self, addr: int):
        block = addr >> self._offset_bits
        return block & (self.sets - 1), block >> (self.sets.bit_length() - 1)

    def read(self, addr: int) -> Optional[int]:
        idx, tag = self._index_tag(addr)
        s = self._sets[idx]
        for i, entry in enumerate(s):
            if entry[0] == tag:
                if i:
                    s.insert(0, s.pop(i))
                self.hits += 1
                return entry[1]
        return None

    def write(self, addr: int, value: int) -> None:
        idx, tag = self._index_tag(addr)
        s = self._sets[idx]
        self.writes += 1
        for i, entry in enumerate(s):
            if entry[0] == tag:
                entry[1] = value
                if i:
                    s.insert(0, s.pop(i))
                return
        s.insert(0, [tag, value])
        if len(s) > self.ways:
            s.pop()
            self.losses += 1

    def clear(self) -> None:
        self._sets = [[] for _ in range(self.sets)]
