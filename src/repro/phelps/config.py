"""Phelps configuration.

``PhelpsConfig()`` gives the paper's parameters (Table II, Section V) with
one exception: the epoch length defaults to a scaled value because our
cycle-level substrate runs short regions (see DESIGN.md §3).  Use
:meth:`PhelpsConfig.paper` for the verbatim 4 M-instruction epochs.

The three ``include_*`` flags reproduce the Fig. 11 ablations:

=====================  =======================  ===============  ====================
configuration          include_guarded_branches include_stores   include_guarded_stores
=====================  =======================  ===============  ====================
Phelps (full)          True                     True             True
Phelps:b1->b2          True                     True             False
Phelps:b1              False                    True             False
Phelps:b1->s1          False                    True             True
Phelps w/o stores      --                       False            --
=====================  =======================  ===============  ====================
"""

from dataclasses import dataclass, replace


@dataclass
class PhelpsConfig:
    # Epoch machinery (Section V-A).
    epoch_length: int = 20_000
    # Delinquency threshold: 0.5 mispredictions per kilo-instruction of the
    # epoch (paper: 2,000 mispredictions per 4 M-instruction epoch).
    delinquency_mpki: float = 0.5
    # Structure capacities (Table II).
    dbt_entries: int = 256
    dbt_max_entries: int = 32
    loop_table_entries: int = 8
    htcb_capacity: int = 256
    store_detect_entries: int = 16
    cdfsm_rows: int = 32
    cdfsm_cols: int = 16
    htc_rows: int = 4
    htc_row_capacity: int = 128
    queue_count: int = 16
    queue_depth: int = 32
    spec_cache_sets: int = 16
    spec_cache_ways: int = 2
    visit_queue_depth: int = 16
    visit_live_ins: int = 4
    mt_livein_limit: int = 16
    # Eligibility (Section V-J).
    ht_size_fraction: float = 0.75
    min_iterations_per_visit: int = 16
    # Ablation flags (Fig. 11 / Fig. 12b).
    include_guarded_branches: bool = True
    include_stores: bool = True
    include_guarded_stores: bool = True
    # Section V-K extension (off in the paper's evaluated design): support
    # OR-guarded instructions with two predicate source operands.
    enable_or_predicates: bool = False
    # Safety net for the simulator (not a hardware structure): terminate
    # helper threads if the main thread makes no progress for this long.
    watchdog_cycles: int = 20_000

    @property
    def delinquency_threshold(self) -> int:
        """Misprediction count a branch needs within one epoch to qualify."""
        return max(1, int(self.delinquency_mpki * self.epoch_length / 1000))

    @classmethod
    def paper(cls) -> "PhelpsConfig":
        return cls(epoch_length=4_000_000)

    def without_stores(self) -> "PhelpsConfig":
        return replace(self, include_stores=False)

    def ablation_b1_b2(self) -> "PhelpsConfig":
        return replace(self, include_guarded_stores=False)

    def ablation_b1(self) -> "PhelpsConfig":
        return replace(self, include_guarded_branches=False, include_guarded_stores=False)

    def ablation_b1_s1(self) -> "PhelpsConfig":
        return replace(self, include_guarded_branches=False, include_guarded_stores=True)
