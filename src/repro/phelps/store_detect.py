"""Retired-store queue for detecting store-load dependences (Section V-C).

A 16-entry FIFO of recently retired stores (address + PC) whose PCs fall
within the loop being constructed.  When a load already included in the
helper thread retires, it searches this queue; a match includes the store
(and subsequently its backward slice) in the helper thread.
"""

from collections import deque
from typing import Deque, Optional, Tuple


class RetiredStoreQueue:
    def __init__(self, entries: int = 16):
        self.capacity = entries
        self._q: Deque[Tuple[int, int]] = deque(maxlen=entries)  # (addr, pc)

    def note_store(self, addr: int, pc: int) -> None:
        self._q.append((addr, pc))

    def match(self, addr: int) -> Optional[int]:
        """PC of the most recent store to ``addr``, if any."""
        for st_addr, st_pc in reversed(self._q):
            if st_addr == addr:
                return st_pc
        return None

    def clear(self) -> None:
        self._q.clear()

    def __len__(self) -> int:
        return len(self._q)
