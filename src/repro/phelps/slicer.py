"""Helper-thread construction (paper Sections V-C and V-D).

A :class:`HelperThreadBuilder` is created when the epoch controller picks a
delinquent loop.  During the construction epoch it observes main-thread
fetch (HTCB collection) and retire (IBDA slice growth via the LPT,
store-load dependence detection, CDFSM training, visit/iteration counting).
``finalize`` applies the eligibility rules (Section V-J), converts
delinquent branches to predicate producers, links predicate operands, and
emits a :class:`HelperThreadRow`.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.phelps.cdfsm import CDFSMMatrix
from repro.phelps.config import PhelpsConfig
from repro.phelps.htc import HelperThreadRow
from repro.phelps.loop_table import LoopTableEntry
from repro.phelps.lpt import LastProducerTable
from repro.phelps.store_detect import RetiredStoreQueue

OUTER = "outer"
INNER = "inner"


class _OrderedSet:
    """Insertion-ordered set of register numbers (live-in sets)."""

    def __init__(self):
        self._items: List[int] = []
        self._seen: Set[int] = set()

    def add(self, item: int) -> None:
        if item not in self._seen:
            self._seen.add(item)
            self._items.append(item)

    def __contains__(self, item) -> bool:
        return item in self._seen

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> List[int]:
        return list(self._items)


class HelperThreadBuilder:
    def __init__(self, config: PhelpsConfig, loop: LoopTableEntry,
                 keep_branches: bool = False):
        """``keep_branches=True`` builds a Branch-Runahead-style helper:
        delinquent branches stay real control flow (no predicate
        conversion); the Branch Runahead engine predicts them with its
        bimodal trigger predictor."""
        self.cfg = config
        self.loop = loop
        self.keep_branches = keep_branches
        self.nested = loop.is_nested
        self.delinquent: Set[int] = set(loop.delinquent_branches)

        # HTCB: loop instructions collected at fetch.
        self.htcb: Dict[int, Instruction] = {}
        self.htcb_overflow = False

        self.lpt = LastProducerTable()
        self.store_q = RetiredStoreQueue(config.store_detect_entries)

        self.included: Dict[str, Set[int]] = {OUTER: set(), INNER: set()}
        self.included_stores: Dict[str, Set[int]] = {OUTER: set(), INNER: set()}
        self.mt_liveins: Dict[str, _OrderedSet] = {OUTER: _OrderedSet(), INNER: _OrderedSet()}
        self.ot_liveins_inner = _OrderedSet()

        self.cdfsm: Dict[str, CDFSMMatrix] = {
            OUTER: CDFSMMatrix(config.cdfsm_rows, config.cdfsm_cols),
            INNER: CDFSMMatrix(config.cdfsm_rows, config.cdfsm_cols),
        }

        self.header_pc: Optional[int] = None
        self.ot_depends_on_it = False
        self.visits = 0
        self.iterations = 0  # outermost-loop-branch taken retires
        self.inner_visits = 0
        self.inner_iterations = 0
        self._prev_in_loop = False
        self._prev_in_inner = False

        # Plant seeds (Section V-C).
        for pc in self.delinquent:
            region = self._region(pc)
            self.included[region].add(pc)
            self.cdfsm[region].add_col(pc)
            self.cdfsm[region].add_row(pc)
        self.included[self._region(loop.loop_branch)].add(loop.loop_branch)
        if self.nested:
            self.included[INNER].add(loop.inner_branch)

    # ------------------------------------------------------------------
    def _in_inner(self, pc: int) -> bool:
        return (self.nested
                and self.loop.inner_target <= pc <= self.loop.inner_branch)

    def _region(self, pc: int) -> str:
        if self.nested and not self._in_inner(pc):
            return OUTER
        return INNER

    # ------------------------------------------------------------------
    # Fetch-side: HTCB collection (Section V-C footnote 1).
    # ------------------------------------------------------------------
    def note_fetched(self, inst: Instruction) -> None:
        if not self.loop.contains(inst.pc) or inst.pc in self.htcb:
            return
        if len(self.htcb) >= self.cfg.htcb_capacity:
            self.htcb_overflow = True
            return
        self.htcb[inst.pc] = inst

    # ------------------------------------------------------------------
    # Retire-side training.
    # ------------------------------------------------------------------
    def note_retired(self, inst: Instruction, taken: Optional[bool],
                     mem_addr: Optional[int]) -> None:
        pc = inst.pc
        in_loop = self.loop.contains(pc)

        if in_loop and not self._prev_in_loop:
            self.visits += 1
        self._prev_in_loop = in_loop
        if self.nested:
            in_inner = self._in_inner(pc)
            if in_inner and not self._prev_in_inner:
                self.inner_visits += 1
            self._prev_in_inner = in_inner
            if pc == self.loop.inner_branch and taken:
                self.inner_iterations += 1

        if in_loop:
            region = self._region(pc)
            if pc in self.included[region]:
                self._grow_slice(inst, region)
            if inst.is_store and mem_addr is not None:
                self.store_q.note_store(mem_addr, pc)
            if (self.cfg.include_stores and inst.is_load and mem_addr is not None
                    and pc in self.included[region]):
                st_pc = self.store_q.match(mem_addr)
                if st_pc is not None and self.loop.contains(st_pc):
                    st_region = self._region(st_pc)
                    if st_pc not in self.included[st_region]:
                        self.included[st_region].add(st_pc)
                    self.included_stores[st_region].add(st_pc)
                    self.cdfsm[st_region].add_row(st_pc)
            # Header-branch discovery (nested, Section V-C).
            if (self.nested and self.header_pc is None and inst.is_cond_branch
                    and not self._in_inner(pc) and pc < self.loop.inner_target
                    and inst.imm is not None and inst.imm > self.loop.inner_branch):
                self.header_pc = pc
                self.included[OUTER].add(pc)
                self.cdfsm[OUTER].add_col(pc)
                self.cdfsm[OUTER].add_row(pc)
            # CDFSM training.
            cd = self.cdfsm[region]
            cd.note_retired(pc, taken if inst.is_cond_branch else None)
            if self.nested and pc == self.loop.inner_branch:
                self.cdfsm[INNER].end_iteration()
            if pc == self.loop.loop_branch:
                self.cdfsm[OUTER if self.nested else INNER].end_iteration()
                if not self.nested:
                    pass
                if taken:
                    self.iterations += 1

        # LPT updates are global (producers may live outside the loop).
        self.lpt.note_retired(pc, inst.dest_reg)

    def _grow_slice(self, inst: Instruction, region: str) -> None:
        """IBDA: add this included instruction's producers (Section V-C)."""
        for src in inst.src_regs:
            if src == 0:
                continue
            producer = self.lpt.producer_of(src)
            if producer is None or not self.loop.contains(producer):
                self.mt_liveins[region].add(src)
                continue
            p_region = self._region(producer)
            if p_region == region:
                self.included[region].add(producer)
            elif region == OUTER and p_region == INNER:
                # Outer thread data-dependent on inner thread: ineligible.
                self.ot_depends_on_it = True
            else:  # inner consumes an outer-region value
                self.included[OUTER].add(producer)
                self.ot_liveins_inner.add(src)

    # ------------------------------------------------------------------
    # Finalization (Sections V-D/V-E/V-J).
    # ------------------------------------------------------------------
    def finalize(self) -> Tuple[Optional[HelperThreadRow], Optional[str]]:
        cfg = self.cfg
        loop = self.loop
        if self.htcb_overflow:
            return None, "param_overflow"
        if any(cd.overflowed for cd in self.cdfsm.values()):
            return None, "param_overflow"
        if self.nested and self.header_pc is None:
            # A nested loop whose inner loop is visited unconditionally has
            # no header branch to drive the Visit Queue (the paper's idiom
            # assumes one, Fig. 2).  Fall back to targeting the inner loop
            # alone: with a long-running inner loop the per-visit start/stop
            # overhead amortizes anyway (Section V-J condition 2 guards it).
            return self._finalize_inner_only()
        if self.ot_depends_on_it:
            return None, "ot_depends_on_it"
        if self.visits == 0 or self.iterations / max(self.visits, 1) < cfg.min_iterations_per_visit:
            return None, "not_iterating"

        total_included = len(self.included[OUTER]) + len(self.included[INNER])
        if total_included > cfg.ht_size_fraction * loop.span_instructions:
            return None, "too_big"
        if len(self.ot_liveins_inner) > cfg.visit_live_ins:
            return None, "param_overflow"

        row = HelperThreadRow(
            start_pc=loop.start_pc,
            loop_branch=loop.loop_branch,
            loop_target=loop.loop_target,
            is_nested=self.nested,
            inner_branch=loop.inner_branch,
            inner_target=loop.inner_target,
            header_pc=self.header_pc,
            ot_liveins_inner=self.ot_liveins_inner.items(),
        )

        dropped: Set[int] = set()
        regions = [(OUTER, loop.loop_branch), (INNER, loop.inner_branch)] if self.nested \
            else [(INNER, loop.loop_branch)]
        queue_assignment: Dict[int, int] = {}
        for set_index, (region, loop_branch_pc) in enumerate(regions):
            insts, queues, error = self._build_region(region, loop_branch_pc, dropped)
            if error:
                return None, error
            for pc in queues:
                queue_assignment[pc] = set_index if self.nested else 0
            # Live-ins = the region's upward-exposed registers: read by an
            # included instruction before any included producer of the same
            # register.  (The finalize-time pass over the finished helper
            # thread; the dynamic LPT classification alone misses induction
            # registers when construction begins mid-loop.)
            exposed = self._upward_exposed(insts)
            if self.nested and region == OUTER:
                row.outer_insts = insts
                row.mt_liveins_outer = exposed
            elif self.nested:
                row.inner_insts = insts
                # OT supplies the registers learned via the LPT; the rest
                # come from the main thread at trigger time.
                row.mt_liveins_inner = [r for r in exposed
                                        if r not in self.ot_liveins_inner]
            else:
                row.inner_insts = insts
                row.mt_liveins_outer = exposed

        if len(queue_assignment) > cfg.queue_count:
            return None, "param_overflow"
        for pc in list(queue_assignment):
            cd = self.cdfsm[self._region(pc)]
            guard = cd.immediate_guard(pc)
            if guard is not None:
                row.guard_map[pc] = guard[0]
        if (len(row.mt_liveins_outer) > cfg.mt_livein_limit
                or len(row.mt_liveins_inner) > cfg.mt_livein_limit):
            return None, "param_overflow"
        row.queue_assignment = queue_assignment

        half = cfg.htc_row_capacity // 2
        if self.nested:
            if len(row.outer_insts) > half or len(row.inner_insts) > half:
                return None, "too_big"
        elif row.size > cfg.htc_row_capacity:
            return None, "too_big"
        return row, None

    def _finalize_inner_only(self) -> Tuple[Optional[HelperThreadRow], Optional[str]]:
        """Headerless nested loop: emit an inner-thread-only helper for the
        inner loop; it retriggers on each visit (outer iteration)."""
        cfg = self.cfg
        loop = self.loop
        if self.inner_visits == 0 or (self.inner_iterations / max(self.inner_visits, 1)
                                      < cfg.min_iterations_per_visit):
            return None, "not_iterating"
        inner_span = (loop.inner_branch - loop.inner_target) // 4 + 1
        if len(self.included[INNER]) > cfg.ht_size_fraction * inner_span:
            return None, "too_big"
        insts, queues, error = self._build_region(INNER, loop.inner_branch, set())
        if error:
            return None, error
        if len(queues) > cfg.queue_count:
            return None, "param_overflow"
        row = HelperThreadRow(
            start_pc=loop.inner_target,
            loop_branch=loop.inner_branch,
            loop_target=loop.inner_target,
            is_nested=False,
            inner_insts=insts,
            mt_liveins_outer=self._upward_exposed(insts),
            queue_assignment={pc: 0 for pc in queues},
        )
        cd = self.cdfsm[INNER]
        for pc in queues:
            guard = cd.immediate_guard(pc)
            if guard is not None:
                row.guard_map[pc] = guard[0]
        if len(row.mt_liveins_outer) > cfg.mt_livein_limit:
            return None, "param_overflow"
        if row.size > cfg.htc_row_capacity:
            return None, "too_big"
        return row, None

    @staticmethod
    def _upward_exposed(insts) -> List[int]:
        """Registers read before any in-thread definition (need live-in copies)."""
        defined: Set[int] = set()
        exposed: List[int] = []
        for inst in insts:
            for src in inst.src_regs:
                if src and src not in defined and src not in exposed:
                    exposed.append(src)
            dest = inst.dest_reg
            if dest is not None:
                defined.add(dest)
        return exposed

    def _build_region(self, region: str, loop_branch_pc: int,
                      dropped: Set[int]) -> Tuple[List[Instruction], List[int], Optional[str]]:
        """Emit the region's helper-thread instructions in program order."""
        cfg = self.cfg
        cd = self.cdfsm[region]
        pcs = sorted(self.included[region])
        if not pcs or pcs[-1] != loop_branch_pc:
            if loop_branch_pc not in self.included[region]:
                return [], [], "param_overflow"
            # The loop branch is the backward branch: always the highest PC.
            pcs = sorted(set(pcs) | {loop_branch_pc})

        # First pass: decide drops and assign predicate destination registers.
        pred_reg_of: Dict[int, int] = {}
        next_pred = 1
        for pc in pcs:
            if pc == loop_branch_pc:
                continue
            is_branch_seed = pc in self.delinquent or pc == self.header_pc
            if is_branch_seed:
                if (not cfg.include_guarded_branches
                        and cd.immediate_guard(pc) is not None
                        and pc != self.header_pc):
                    dropped.add(pc)
                    continue
                pred_reg_of[pc] = next_pred
                next_pred += 1
            elif pc in self.included_stores[region]:
                if not cfg.include_guarded_stores and cd.immediate_guard(pc) is not None:
                    dropped.add(pc)
        if next_pred > 31:
            return [], [], "param_overflow"

        def resolve_guard(pc: int) -> Optional[Tuple[int, bool]]:
            guard = cd.immediate_guard(pc)
            while guard is not None and guard[0] in dropped:
                guard = cd.immediate_guard(guard[0])
            return guard

        def resolve_guard_list(pc: int) -> List[Tuple[int, bool]]:
            """With OR-predicates enabled, keep up to two CD guards
            (Section V-K); otherwise the single innermost guard."""
            if not cfg.enable_or_predicates:
                g = resolve_guard(pc)
                return [g] if g is not None else []
            resolved = []
            for g in cd.all_guards(pc):
                while g is not None and g[0] in dropped:
                    g = cd.immediate_guard(g[0])
                if g is not None and g not in resolved:
                    resolved.append(g)
            return sorted(resolved, key=lambda g: -g[0])[:2]

        def pred_operands(pc: int) -> dict:
            guards = resolve_guard_list(pc)
            ops = {"pred_rs": 0, "pred_dir": False}
            if guards:
                ops["pred_rs"] = pred_reg_of.get(guards[0][0], 0)
                ops["pred_dir"] = guards[0][1]
            if len(guards) > 1:
                ops["pred_rs2"] = pred_reg_of.get(guards[1][0], 0)
                ops["pred_dir2"] = guards[1][1]
            return ops

        insts: List[Instruction] = []
        queues: List[int] = []
        for pc in pcs:
            if pc in dropped:
                continue
            src = self.htcb.get(pc)
            if src is None:
                return [], [], "param_overflow"  # never captured in the HTCB
            if pc == loop_branch_pc:
                insts.append(src.copy())
                # The loop branch only needs a queue when it is itself
                # delinquent (e.g. a short inner loop's brC); a predictable
                # loop branch is left to the core's default predictor.
                if pc in self.delinquent:
                    queues.append(pc)
                continue
            if pc in pred_reg_of and self.keep_branches:
                insts.append(src.copy())
                queues.append(pc)
                continue
            if pc in pred_reg_of:
                insts.append(src.copy(
                    opcode=Opcode.PRED,
                    pred_rd=pred_reg_of[pc],
                    origin_pc=pc,
                    origin_opcode=src.opcode,
                    imm=None,
                    capture_regs=tuple(self.ot_liveins_inner.items())
                    if pc == self.header_pc else (),
                    **pred_operands(pc),
                ))
                if pc in self.delinquent or pc != self.header_pc:
                    queues.append(pc)
            elif pc in self.included_stores[region]:
                insts.append(src.copy(**pred_operands(pc)))
            else:
                insts.append(src.copy())
        return insts, queues, None
