"""Loop Table (paper Section V-B, Figure 6 bottom).

Populated at the end of each epoch by a pass through DBT-Max: each branch
clearing the delinquency threshold creates/updates the entry of its
*outermost* enclosing loop, aggregating misprediction counts and collecting
the loop's delinquent branch list plus nested-inner-loop bounds.
"""

from typing import Dict, List, Optional, Tuple

from repro.phelps.dbt import DelinquentBranchTable


class LoopTableEntry:
    __slots__ = ("loop_branch", "loop_target", "is_nested",
                 "inner_branch", "inner_target",
                 "delinquent_branches", "mispredicts", "not_in_loop")

    def __init__(self, loop_branch: int, loop_target: int):
        self.loop_branch = loop_branch
        self.loop_target = loop_target
        self.is_nested = False
        self.inner_branch = 0
        self.inner_target = 0
        self.delinquent_branches: List[int] = []
        self.mispredicts = 0
        self.not_in_loop = False

    @property
    def start_pc(self) -> int:
        """Trigger PC: the target of the outermost loop branch."""
        return self.loop_target

    @property
    def span_instructions(self) -> int:
        return (self.loop_branch - self.loop_target) // 4 + 1

    def contains(self, pc: int) -> bool:
        return self.loop_target <= pc <= self.loop_branch

    def __repr__(self) -> str:  # pragma: no cover
        kind = "nested" if self.is_nested else "simple"
        return (f"<LT {kind} loop {self.loop_target:#x}..{self.loop_branch:#x} "
                f"misp={self.mispredicts} branches={len(self.delinquent_branches)}>")


class LoopTable:
    def __init__(self, entries: int = 8):
        self.capacity = entries
        self.entries: Dict[Tuple[int, int], LoopTableEntry] = {}
        # Delinquent branches with no known loop ("del. but not in loop").
        self.loopless_mispredicts = 0

    def populate(self, dbt: DelinquentBranchTable, threshold: int) -> None:
        """Epoch-end pass through DBT-Max (paper Section V-B)."""
        self.entries.clear()
        self.loopless_mispredicts = 0
        for pc, count in dbt.dbt_max.ranked():
            if count < threshold:
                continue
            dentry = dbt.get(pc)
            if dentry is None:
                continue
            if not dentry.in_loop:
                self.loopless_mispredicts += count
                continue
            key = dentry.outermost()
            entry = self.entries.get(key)
            if entry is None:
                if len(self.entries) >= self.capacity:
                    continue  # LT full; lower-ranked loops wait an epoch
                entry = LoopTableEntry(*key)
                self.entries[key] = entry
            entry.mispredicts += count
            entry.delinquent_branches.append(pc)
            if dentry.is_nested:
                entry.is_nested = True
                entry.inner_branch = dentry.inner_branch
                entry.inner_target = dentry.inner_target

    def ranked(self) -> List[LoopTableEntry]:
        return sorted(self.entries.values(), key=lambda e: -e.mispredicts)

    def most_delinquent(self, exclude_starts=()) -> Optional[LoopTableEntry]:
        """Best loop not already holding a helper thread (Section V-C)."""
        for entry in self.ranked():
            if entry.start_pc not in exclude_starts:
                return entry
        return None
