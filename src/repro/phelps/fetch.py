"""Helper-thread fetch unit (paper Section V-E/V-F).

Fetching is purely sequential through an HTC row region, wrapping back to
the first instruction when the loop branch (the last instruction) is
fetched.  Injected live-in move instructions are served before the row.
The inner thread starts idle and is started per inner-loop visit.
"""

from typing import List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.core.thread import FetchUnit


def make_livein_move(logical_reg: int, value: Optional[int] = None) -> Instruction:
    """An annotated move copying a live-in into the helper thread.

    With ``value`` None the move reads the main thread's rename map at
    dispatch (MT live-ins); otherwise the value comes from a Visit Queue
    slot and travels with the instruction.
    """
    return Instruction(opcode=Opcode.MOV_LIVEIN, rd=logical_reg,
                       rs1=logical_reg, pc=0)


class HelperFetchUnit(FetchUnit):
    def __init__(self, insts: List[Instruction], wait_for_visit: bool = False):
        if not insts:
            raise ValueError("empty helper thread")
        self.insts = insts
        self.idx = 0
        self.waiting = wait_for_visit
        self.halted = False
        # (instruction, live-in value or None) pairs, served FIFO.
        self._pending: List[Tuple[Instruction, Optional[int]]] = []
        self._last_was_move = False

    # ------------------------------------------------------------------
    def inject_moves(self, regs: List[int], values: Optional[List[int]] = None) -> int:
        """Queue live-in moves; returns how many were injected."""
        for i, reg in enumerate(regs):
            value = values[i] if values is not None else None
            self._pending.append((make_livein_move(reg, value), value))
        return len(regs)

    def start_visit(self, regs: List[int], values: List[int]) -> None:
        """Inner thread: begin processing the next inner-loop visit."""
        self.inject_moves(regs, values)
        self.idx = 0
        self.waiting = False
        self.halted = False

    def stop(self) -> None:
        self.halted = True

    def wait(self) -> None:
        self.waiting = True

    # ------------------------------------------------------------------
    def peek(self) -> Optional[Instruction]:
        if self._pending:
            return self._pending[0][0]
        if self.halted or self.waiting:
            return None
        return self.insts[self.idx]

    def annotate_uop(self, uop) -> None:
        if self._pending and uop.inst is self._pending[0][0]:
            uop.livein_value = self._pending[0][1]

    def advance(self, taken: bool, target: Optional[int]) -> None:
        if self._pending:
            self._pending.pop(0)
            return
        inst = self.insts[self.idx]
        if inst.is_cond_branch:
            # The loop branch: fetch always wraps (predicted taken).
            self.idx = 0
        else:
            self.idx += 1
            if self.idx >= len(self.insts):  # defensive; loop branch is last
                self.idx = 0

    def redirect(self, pc: int) -> None:
        """Load-violation recovery: refetch from the violating load's row
        position (PCs are unique within a row)."""
        self._pending.clear()
        for i, inst in enumerate(self.insts):
            if inst.pc == pc:
                self.idx = i
                return
        self.idx = 0
