"""Storage-cost model for Phelps' new components (paper Table II).

Bit budgets are derived from the structure parameters; the per-row byte
counts and the 10.82 KB total reproduce Table II exactly.
"""

from typing import Dict, List, Tuple

from repro.phelps.config import PhelpsConfig

PC_BITS = 30          # compressed PC tags used throughout Table II
FULL_PC_BITS = 35     # PC-to-row conversion table entries
ADDR_BITS = 64
MISP_BITS = 16


def _bits_to_bytes(bits: int) -> float:
    return bits / 8.0


def component_costs(config: PhelpsConfig = None) -> List[Tuple[str, float]]:
    """(component, bytes) rows of Table II."""
    cfg = config or PhelpsConfig()
    rows: List[Tuple[str, float]] = []

    # --- Helper thread construction ---
    dbt_entry_bits = (27 + MISP_BITS            # tag + misprediction counter
                      + 2 * (1 + PC_BITS + PC_BITS))  # inner/outer loop fields
    rows.append(("DBT", _bits_to_bytes(cfg.dbt_entries * dbt_entry_bits)))
    rows.append(("DBT-Max", _bits_to_bytes(cfg.dbt_max_entries * (8 + 13))))
    lt_entry_bits = (PC_BITS + PC_BITS + 1 + PC_BITS + PC_BITS
                     + cfg.dbt_max_entries + 17)  # branch bit-vector + misp
    rows.append(("LT", _bits_to_bytes(cfg.loop_table_entries * lt_entry_bits)))
    rows.append(("HTCB", cfg.htcb_capacity * 4.0))
    rows.append(("HTCB metadata", 62.0))
    rows.append(("LPT", _bits_to_bytes(32 * PC_BITS)))
    rows.append(("store-detect queue",
                 _bits_to_bytes(cfg.store_detect_entries * (ADDR_BITS + PC_BITS))))
    rows.append(("CDFSM matrix",
                 _bits_to_bytes(cfg.cdfsm_rows * cfg.cdfsm_cols * 2)))
    rows.append(("branch list", _bits_to_bytes(16 * 5)))
    rows.append(("PC-to-row table", _bits_to_bytes(cfg.cdfsm_rows * FULL_PC_BITS)))

    # --- Helper thread execution ---
    rows.append(("HTC", _bits_to_bytes(cfg.htc_rows * cfg.htc_row_capacity * 38)))
    rows.append(("HTC metadata", _bits_to_bytes(cfg.htc_rows * 180)))
    rows.append(("Visit Queue",
                 _bits_to_bytes(cfg.visit_queue_depth * cfg.visit_live_ins * 70)))
    rows.append(("Prediction Queues",
                 _bits_to_bytes(cfg.queue_count * cfg.queue_depth * 1)))
    rows.append(("Prediction Queue PC tags", _bits_to_bytes(cfg.queue_count * PC_BITS)))
    rows.append(("speculative D$ data", 16 * 2 * 8.0))
    rows.append(("speculative D$ metadata", _bits_to_bytes(32 * 59)))
    rows.append(("pred-PRF", _bits_to_bytes(128 * 2)))
    rows.append(("pred-FL", _bits_to_bytes(97 * 7)))
    rows.append(("2 pred-RMTs", _bits_to_bytes(2 * 31 * 7)))
    return rows


def total_cost_bytes(config: PhelpsConfig = None) -> float:
    return sum(b for _, b in component_costs(config))


def total_cost_kb(config: PhelpsConfig = None) -> float:
    return total_cost_bytes(config) / 1024.0


def cost_table(config: PhelpsConfig = None) -> str:
    """Rendered Table II."""
    rows = component_costs(config)
    lines = [f"{'Component':34s} {'Cost (B)':>10s}"]
    for name, b in rows:
        lines.append(f"{name:34s} {b:10.1f}")
    lines.append(f"{'Total':34s} {total_cost_bytes(config) / 1024.0:9.2f}KB")
    return "\n".join(lines)
