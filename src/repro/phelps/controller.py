"""The Phelps engine: epochs, training, triggering, and termination.

Ties every Phelps structure into the core's :class:`PreExecutionEngine`
hook points.  Life cycle of one loop (paper Section V-A):

* epoch N   — DBT/DBT-Max measure delinquency; LT populated at epoch end;
* epoch N+1 — the most delinquent loop without a helper thread is chosen;
  a :class:`HelperThreadBuilder` observes fetch/retire (HTCB, IBDA, CDFSM,
  store-load detection); finalized at the epoch boundary;
* epoch N+2+ — the HTC row is armed: when the main thread retires the
  loop's start PC, the pipeline is squashed, partitioned (Table I), helper
  contexts spawn, live-in moves inject, and pre-execution begins.
"""

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.engine_api import PreExecutionEngine
from repro.core.thread import ThreadContext, ThreadKind
from repro.core.uop import Uop
from repro.isa.opcodes import Opcode

from repro.phelps.config import PhelpsConfig
from repro.phelps.dbt import DelinquentBranchTable
from repro.phelps.fetch import HelperFetchUnit
from repro.phelps.htc import HelperThreadCache, HelperThreadRow
from repro.phelps.loop_table import LoopTable
from repro.phelps.prediction_queues import PredictionQueueFile
from repro.phelps.slicer import HelperThreadBuilder
from repro.phelps.spec_cache import SpeculativeCache
from repro.phelps.visit_queue import VisitQueue


class PhelpsEngine(PreExecutionEngine):
    def __init__(self, config: Optional[PhelpsConfig] = None):
        self.cfg = config or PhelpsConfig()
        cfg = self.cfg
        self.dbt = DelinquentBranchTable(cfg.dbt_entries, cfg.dbt_max_entries)
        self.lt = LoopTable(cfg.loop_table_entries)
        self.htc = HelperThreadCache(cfg.htc_rows, cfg.htc_row_capacity)
        self.queues = PredictionQueueFile(cfg.queue_count, cfg.queue_depth)
        self.visit_q = VisitQueue(cfg.visit_queue_depth, cfg.visit_live_ins)
        self.spec_cache = SpeculativeCache(cfg.spec_cache_sets, cfg.spec_cache_ways)

        self.builder: Optional[HelperThreadBuilder] = None
        self.epoch_retired = 0
        self.epoch_index = 0

        # Deployment state.
        self.active_row: Optional[HelperThreadRow] = None
        self.ht_threads: Dict[str, ThreadContext] = {}  # role -> context
        self._trigger_moves_pending = 0
        self._it_mt_regs: List[int] = []

        # Classification state (Fig. 14).
        self.qualified_pcs = set()
        self.loop_status: Dict[int, str] = {}  # start_pc -> status
        self.misp_classes: Counter = Counter()

        # Stats.
        self.activations = 0
        self.terminations = 0
        self.desync_terminations = 0
        self.queue_wrong = 0
        self._watchdog_retired = -1
        self._watchdog_since = 0

    # ==================================================================
    # Observability wiring.
    # ==================================================================
    def attach(self, core) -> None:
        super().attach(core)
        if self.events is not None:
            events = self.events
            self.dbt.on_evict = lambda pc: events.dbt_evict(core.cycle, pc)

    def _register_metrics(self, registry) -> None:
        super()._register_metrics(registry)  # engine.* <- self.stats()
        # Per-branch-PC queue drill-down: phelps.queues.<pc>.{deposits,
        # consumed, consumed_wrong, not_timely}.
        registry.register_provider("phelps.queues", lambda: self.queues.per_pc)

    # ==================================================================
    # Fetch hooks.
    # ==================================================================
    def fetch_override(self, thread: ThreadContext, inst):
        if self.active_row is None or not self.queues.has_queue(inst.pc):
            return None
        result = self.queues.consume(inst.pc)
        if result is None:
            # Not timely: fall back to the default predictor.
            if self.events is not None:
                self.events.queue_not_timely(self.core.cycle, inst.pc)
            return None
        outcome, token = result
        return outcome, token

    def note_fetched(self, thread: ThreadContext, uop: Uop) -> None:
        if thread.kind is not ThreadKind.MAIN:
            return
        if self.builder is not None:
            self.builder.note_fetched(uop.inst)
        self._spec_head_advance(uop.inst)

    def _spec_head_advance(self, inst) -> None:
        row = self.active_row
        if row is None or not inst.is_cond_branch:
            return
        if inst.pc == row.loop_branch:
            self.queues.advance_spec_head(0)
        elif row.is_nested and inst.pc == row.inner_branch:
            self.queues.advance_spec_head(1)

    def note_refetched(self, thread: ThreadContext, uop: Uop) -> None:
        self._spec_head_advance(uop.inst)

    # ==================================================================
    # Recovery hooks.
    # ==================================================================
    def checkpoint(self):
        if self.active_row is None:
            return None
        return self.queues.checkpoint()

    def restore(self, state) -> None:
        if state is not None and self.active_row is not None:
            self.queues.restore(state)

    # ==================================================================
    # Retire hooks.
    # ==================================================================
    def retire_blocked(self, thread: ThreadContext, uop: Uop) -> bool:
        if thread.kind is ThreadKind.MAIN or self.active_row is None:
            return False
        inst = uop.inst
        if inst.is_cond_branch:  # helper loop branch: needs a free column
            pointer_set = 1 if thread.kind is ThreadKind.INNER else 0
            return not self.queues.can_advance_tail(pointer_set)
        if (inst.is_pred_producer and self.active_row.header_pc == inst.origin_pc
                and uop.pred_enabled and uop.taken is False):
            return self.visit_q.full()
        return False

    def on_retire(self, thread: ThreadContext, uop: Uop) -> None:
        if thread.kind is ThreadKind.MAIN:
            self._on_retire_main(thread, uop)
        else:
            self._on_retire_helper(thread, uop)

    # ------------------------------------------------------------------
    def _on_retire_main(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        row = self.active_row

        if inst.is_cond_branch:
            self.dbt.note_retired(inst.pc, bool(uop.taken), inst.imm, uop.mispredicted)
            if uop.mispredicted:
                self._classify_mispredict(inst.pc)
            if uop.queue_token is not None:
                qpc, _col, predicted = uop.queue_token
                if predicted != bool(uop.taken):
                    self.queue_wrong += 1
                    self.queues.note_consumed_wrong(qpc)
                    if row is not None and qpc in (row.loop_branch, row.inner_branch,
                                                   row.header_pc):
                        # Iteration/visit desync guard (DESIGN.md §6).
                        self.desync_terminations += 1
                        if self.events is not None:
                            self.events.desync(self.core.cycle, qpc)
                        self._terminate(reason="desync")
                        row = None
            if row is not None:
                if inst.pc == row.loop_branch:
                    self.queues.advance_head(0)
                elif row.is_nested and inst.pc == row.inner_branch:
                    self.queues.advance_head(1)

        if self.builder is not None:
            self.builder.note_retired(inst, uop.taken, uop.mem_addr)

        if row is not None and not row.contains(inst.pc):
            # Main thread left the region of interest (Section V-G).
            self._terminate(reason="region_exit")
            row = None

        if row is None and self.active_row is None:
            trigger_row = self.htc.lookup_trigger(inst.pc)
            if trigger_row is not None:
                self._trigger(trigger_row)

        # Epoch accounting last: epoch boundaries may finalize the builder.
        self.epoch_retired += 1
        if self.epoch_retired >= self.cfg.epoch_length:
            self._end_epoch()

    # ------------------------------------------------------------------
    def _on_retire_helper(self, thread: ThreadContext, uop: Uop) -> None:
        inst = uop.inst
        row = self.active_row
        if row is None:
            return

        if inst.opcode is Opcode.MOV_LIVEIN:
            if uop.livein_value is None and self._trigger_moves_pending > 0:
                self._trigger_moves_pending -= 1
                if self._trigger_moves_pending == 0:
                    self.core.main.wait_for_moves = False
            return

        if inst.is_pred_producer:
            if self.queues.has_queue(inst.origin_pc):
                self.queues.deposit(inst.origin_pc, bool(uop.taken))
            if (inst.origin_pc == row.header_pc and uop.pred_enabled
                    and uop.taken is False):
                # Not-taken header: queue an inner-loop visit (Section V-F).
                values = [self.core.prf.read(thread.amt.lookup(r))
                          for r in row.ot_liveins_inner]
                self.visit_q.enqueue(values)
            return

        if inst.is_cond_branch:  # the helper thread's loop branch
            pointer_set = 1 if thread.kind is ThreadKind.INNER else 0
            if self.queues.has_queue(inst.pc):
                self.queues.deposit(inst.pc, bool(uop.taken))
            self.queues.advance_tail(pointer_set)
            if uop.taken is False and thread.kind is not ThreadKind.INNER:
                # ITO/OT finished the region: go idle; resources are
                # released when the main thread exits (Section V-G).
                # (The inner thread already moved to its next visit when
                # this branch *resolved* — on_helper_loop_exit_resolved.)
                thread.fetch.stop()

    # ==================================================================
    # Cycle hook.
    # ==================================================================
    def on_cycle(self, cycle: int) -> None:
        it = self.ht_threads.get("IT")
        if it is not None and it.fetch.waiting and not self.visit_q.empty():
            self._next_visit(it)
        # Watchdog: terminate if the main thread stops making progress.
        if self.active_row is not None:
            retired = self.core.main.retired
            if retired == self._watchdog_retired:
                self._watchdog_since += 1
                if self._watchdog_since >= self.cfg.watchdog_cycles:
                    self._terminate(reason="watchdog")
            else:
                self._watchdog_retired = retired
                self._watchdog_since = 0

    def idle_skip(self, cycle: int, limit: int) -> int:
        """Core idle fast path veto (see ``PreExecutionEngine.idle_skip``).

        Two pieces of :meth:`on_cycle` bookkeeping matter across skipped
        idle cycles.  (1) A waiting inner thread with a pending visit would
        be restarted this very cycle — refuse the skip so the normal tick
        handles it.  (2) The watchdog counts idle cycles: account the
        skipped cycles, and stop one short of the threshold so the
        terminating tick's ``on_cycle`` fires at the exact cycle the naive
        loop would have fired it.
        """
        it = self.ht_threads.get("IT")
        if it is not None and it.fetch.waiting and not self.visit_q.empty():
            return 0
        n = limit - cycle
        if self.active_row is not None:
            # Post-on_cycle invariant: _watchdog_retired == main.retired, so
            # every skipped idle cycle is one more watchdog count.
            headroom = self.cfg.watchdog_cycles - self._watchdog_since - 1
            if headroom <= 0:
                return 0
            if n > headroom:
                n = headroom
            self._watchdog_since += n
        return n

    def on_helper_branch_mispredicted(self, thread: ThreadContext, uop: Uop) -> None:
        """Phelps helper threads have one branch (the loop branch), fetched
        always-taken; a mispredict means it resolved not-taken.  The inner
        thread moves straight to the next visit (it need not wait for this
        visit's retirement — deposits and tail advances still happen in
        retire order); ITO/OT stop."""
        if thread.kind is ThreadKind.INNER:
            self._next_visit(thread)
        else:
            thread.fetch.stop()

    def _next_visit(self, thread: ThreadContext) -> None:
        values = self.visit_q.dequeue()
        if values is None:
            thread.fetch.wait()
            return
        thread.fetch.start_visit(self.active_row.ot_liveins_inner, values)

    # ==================================================================
    # Epoch machinery.
    # ==================================================================
    def _end_epoch(self) -> None:
        cfg = self.cfg
        threshold = cfg.delinquency_threshold
        for pc, count in self.dbt.dbt_max.ranked():
            if count >= threshold:
                self.qualified_pcs.add(pc)
        self.lt.populate(self.dbt, threshold)

        # Finalize the loop constructed this epoch.
        if self.builder is not None:
            start = self.builder.loop.start_pc
            row, reason = self.builder.finalize()
            if row is not None and self.htc.install(row):
                self.loop_status[start] = "installed"
            else:
                self.loop_status[start] = reason or "too_big"
            if self.events is not None:
                self.events.helper_construct(self.core.cycle, start,
                                             self.loop_status[start])
            self.builder = None

        # Pick the next loop to construct (Section V-C).
        tried = set(self.loop_status)
        candidate = self.lt.most_delinquent(exclude_starts=self.htc.known_starts() | tried)
        if candidate is not None and not self.htc.full():
            self.builder = self._make_builder(candidate)
            self.loop_status[candidate.start_pc] = "constructing"

        self.dbt.reset_counts()
        self.epoch_index += 1
        self.epoch_retired = 0

    def _make_builder(self, candidate) -> HelperThreadBuilder:
        """Overridden by Branch Runahead to build chain-style helpers."""
        return HelperThreadBuilder(self.cfg, candidate)

    # ==================================================================
    # Trigger / terminate (Sections V-F, V-G).
    # ==================================================================
    def _trigger(self, row: HelperThreadRow) -> None:
        core = self.core
        if not self.queues.configure(dict(row.queue_assignment)):
            return
        core.full_squash()
        core.set_partition_mode("MT_OT_IT" if row.is_nested else "MT_ITO")
        self.spec_cache.clear()
        self.visit_q.clear()
        self.active_row = row
        self.activations += 1
        self.loop_status[row.start_pc] = "deployed"
        if self.events is not None:
            self.events.helper_trigger(core.cycle, row.start_pc, row.is_nested)
        self.ht_threads.clear()
        moves = 0

        if row.is_nested:
            ot_unit = HelperFetchUnit(row.outer_insts)
            ot = core.add_helper_thread(ThreadKind.OUTER, ot_unit, "OT")
            self._install_memory(ot)
            moves += ot_unit.inject_moves(row.mt_liveins_outer)
            self.ht_threads["OT"] = ot

            it_unit = HelperFetchUnit(row.inner_insts, wait_for_visit=True)
            it = core.add_helper_thread(ThreadKind.INNER, it_unit, "IT")
            self._install_memory(it)
            moves += it_unit.inject_moves(row.mt_liveins_inner)
            self.ht_threads["IT"] = it
        else:
            unit = HelperFetchUnit(row.inner_insts)
            ito = core.add_helper_thread(ThreadKind.INNER_ONLY, unit, "ITO")
            self._install_memory(ito)
            moves += unit.inject_moves(row.mt_liveins_outer)
            self.ht_threads["ITO"] = ito

        self._trigger_moves_pending = moves
        if moves > 0:
            core.main.wait_for_moves = True
        self._watchdog_retired = core.main.retired
        self._watchdog_since = 0

    def _install_memory(self, ctx: ThreadContext) -> None:
        ctx.spec_cache = self.spec_cache
        ctx.read_value = self.core._read_committed
        ctx.commit_store = self.spec_cache.write

    def _terminate(self, reason: str = "exit") -> None:
        core = self.core
        if self.events is not None and self.active_row is not None:
            self.events.helper_terminate(core.cycle, self.active_row.start_pc,
                                         reason)
        core.full_squash()
        core.remove_helper_threads()
        core.set_partition_mode("MT_ONLY")
        self.queues.deactivate()
        self.visit_q.clear()
        self.spec_cache.clear()
        self.active_row = None
        self.ht_threads.clear()
        self._trigger_moves_pending = 0
        core.main.wait_for_moves = False
        self.terminations += 1

    # ==================================================================
    # Snapshot hooks.
    # ==================================================================
    def quiesce(self) -> None:
        """End any active deployment through the normal termination path.

        A deployment's in-flight state (helper thread contexts, live
        queue columns, spec-cache contents) is tied to pipeline state the
        snapshot deliberately drains away, so it cannot be carried across
        a process boundary.  Termination is an event the engine already
        models — the DBT/LT/HTC training it leaves behind is exactly the
        warm state a resumed run needs."""
        if self.active_row is not None:
            self._terminate(reason="snapshot")

    def warm_state(self) -> bytes:
        # ``dbt.on_evict`` is a closure over the live events/core handles
        # (wired in attach); strip it for pickling, restore_warm re-wires.
        hook = self.dbt.on_evict
        self.dbt.on_evict = None
        try:
            return super().warm_state()
        finally:
            self.dbt.on_evict = hook

    def restore_warm(self, payload) -> None:
        super().restore_warm(payload)
        if self.events is not None:
            events, core = self.events, self.core
            self.dbt.on_evict = lambda pc: events.dbt_evict(core.cycle, pc)
        else:
            self.dbt.on_evict = None

    # ==================================================================
    # Misprediction taxonomy (Fig. 14).
    # ==================================================================
    def _classify_mispredict(self, pc: int) -> None:
        if self.active_row is not None and self.queues.has_queue(pc):
            self.misp_classes["deployed_residual"] += 1
            return
        if pc in self.qualified_pcs:
            entry = self.dbt.get(pc)
            if entry is None or not entry.in_loop:
                self.misp_classes["not_in_loop"] += 1
                return
            start = entry.outermost()[1]
            status = self.loop_status.get(start)
            if status == "constructing":
                self.misp_classes["being_constructed"] += 1
            elif status in ("installed", "deployed"):
                self.misp_classes["installed_not_active"] += 1
            elif status == "too_big":
                self.misp_classes["too_big"] += 1
            elif status == "not_iterating":
                self.misp_classes["not_iterating"] += 1
            elif status == "ot_depends_on_it":
                self.misp_classes["ot_depends_on_it"] += 1
            elif status == "param_overflow":
                self.misp_classes["too_big"] += 1
            else:
                self.misp_classes["not_chosen"] += 1
        elif self.epoch_index == 0:
            self.misp_classes["gathering"] += 1
        elif self.dbt.evictions > self.cfg.dbt_entries:
            # DBT thrash (the paper's gcc case): counters never accumulate,
            # so these branches are perpetually "gathering delinquency".
            self.misp_classes["gathering"] += 1
        else:
            self.misp_classes["not_delinquent"] += 1

    # ==================================================================
    def stats(self) -> dict:
        return {
            "activations": self.activations,
            "terminations": self.terminations,
            "desync_terminations": self.desync_terminations,
            "queue_wrong": self.queue_wrong,
            "queue": self.queues.stats(),
            "visits": self.visit_q.enqueued,
            "spec_cache_losses": self.spec_cache.losses,
            "misp_classes": dict(self.misp_classes),
            "loop_status": dict(self.loop_status),
            "epochs": self.epoch_index,
            "dbt_evictions": self.dbt.evictions,
        }
