"""Last Producer Table (paper Section V-C).

One entry per logical integer register holding the PC of the most recently
retired instruction that produced it.  Drives IBDA backward-slice growth.
"""

from typing import List, Optional

from repro.isa.registers import NUM_REGS


class LastProducerTable:
    def __init__(self, num_regs: int = NUM_REGS):
        self._producer: List[Optional[int]] = [None] * num_regs

    def producer_of(self, logical: int) -> Optional[int]:
        return self._producer[logical]

    def note_retired(self, pc: int, dest_reg: Optional[int]) -> None:
        """Call at retire for every instruction (after slice lookups)."""
        if dest_reg is not None and dest_reg != 0:
            self._producer[dest_reg] = pc

    def clear(self) -> None:
        self._producer = [None] * len(self._producer)
