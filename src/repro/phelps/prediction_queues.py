"""Per-branch prediction queues managed in lockstep by loop iteration
(paper Section IV-B, Figure 4).

Every delinquent branch (and the loop branch itself) gets one queue; a
column corresponds to one loop iteration.  Three pointers per *pointer set*
(one set per helper thread):

* ``tail``      — advanced when the helper thread retires the loop branch
                  (all predicate producers of that iteration have deposited);
* ``spec_head`` — the column the main thread consumes from; advanced when
                  the main thread *fetches* the loop branch; rolled back on
                  main-thread squashes (checkpointed per instruction);
* ``head``      — advanced (column freed) when the main thread *retires*
                  the loop branch.

Indices grow monotonically; storage is a ring of ``depth`` columns.
``spec_head`` may run ahead of ``tail`` (helper thread behind): consuming
then returns None and the fetch unit falls back to the default predictor.
"""

from typing import Dict, List, Optional, Tuple


class _Queue:
    __slots__ = ("pc", "pointer_set", "slots")

    def __init__(self, pc: int, pointer_set: int, depth: int):
        self.pc = pc
        self.pointer_set = pointer_set
        self.slots: List[Optional[bool]] = [None] * depth


class PredictionQueueFile:
    def __init__(self, queue_count: int = 16, depth: int = 32):
        self.queue_count = queue_count
        self.depth = depth
        self._queues: Dict[int, _Queue] = {}
        # Pointer sets: [head, spec_head, tail] per set (two sets max).
        self.head = [0, 0]
        self.spec_head = [0, 0]
        self.tail = [0, 0]
        self.active = False
        # Stats: aggregates plus a per-branch-PC drill-down that persists
        # across activations (queues themselves are rebuilt per trigger).
        self.deposits = 0
        self.consumed = 0
        self.not_timely = 0
        self.consumed_wrong = 0
        self.per_pc: Dict[int, Dict[str, int]] = {}

    def _pc_stats(self, pc: int) -> Dict[str, int]:
        d = self.per_pc.get(pc)
        if d is None:
            d = self.per_pc[pc] = {"deposits": 0, "consumed": 0,
                                   "consumed_wrong": 0, "not_timely": 0}
        return d

    # ------------------------------------------------------------------
    # Configuration.
    # ------------------------------------------------------------------
    def configure(self, assignments: Dict[int, int]) -> bool:
        """Assign queues: branch pc -> pointer set (0 or 1).

        Returns False (and stays unconfigured) on queue-count overflow.
        """
        if len(assignments) > self.queue_count:
            return False
        self._queues = {pc: _Queue(pc, s, self.depth) for pc, s in assignments.items()}
        for pc in assignments:
            self._pc_stats(pc)  # seed drill-down rows for every queue
        self.head = [0, 0]
        self.spec_head = [0, 0]
        self.tail = [0, 0]
        self.active = True
        return True

    def deactivate(self) -> None:
        self.active = False
        self._queues.clear()

    def has_queue(self, pc: int) -> bool:
        return self.active and pc in self._queues

    # ------------------------------------------------------------------
    # Helper-thread side.
    # ------------------------------------------------------------------
    def deposit(self, pc: int, outcome: bool) -> None:
        """Write a pre-executed outcome at the tail column of pc's queue."""
        q = self._queues[pc]
        q.slots[self.tail[q.pointer_set] % self.depth] = bool(outcome)
        self.deposits += 1
        self._pc_stats(pc)["deposits"] += 1

    def can_advance_tail(self, pointer_set: int) -> bool:
        """Backpressure: the tail column must not wrap onto a live column."""
        return self.tail[pointer_set] - self.head[pointer_set] < self.depth - 1

    def advance_tail(self, pointer_set: int) -> None:
        self.tail[pointer_set] += 1
        # Invalidate the new tail column (stale ring data must not be read).
        idx = self.tail[pointer_set] % self.depth
        for q in self._queues.values():
            if q.pointer_set == pointer_set:
                q.slots[idx] = None

    # ------------------------------------------------------------------
    # Main-thread side.
    # ------------------------------------------------------------------
    def consume(self, pc: int) -> Optional[Tuple[bool, Tuple[int, int, bool]]]:
        """Prediction for the branch at ``pc`` from the spec_head column.

        Returns (outcome, token) or None when the column is not yet filled
        (helper thread behind -> "not timely").
        """
        q = self._queues.get(pc)
        if q is None:
            return None
        s = q.pointer_set
        if self.spec_head[s] >= self.tail[s]:
            self.not_timely += 1
            self._pc_stats(pc)["not_timely"] += 1
            return None
        outcome = q.slots[self.spec_head[s] % self.depth]
        if outcome is None:
            self.not_timely += 1
            self._pc_stats(pc)["not_timely"] += 1
            return None
        self.consumed += 1
        self._pc_stats(pc)["consumed"] += 1
        return outcome, (pc, self.spec_head[s], outcome)

    def advance_spec_head(self, pointer_set: int) -> None:
        """Main thread fetched the pointer set's loop branch."""
        self.spec_head[pointer_set] += 1

    def advance_head(self, pointer_set: int) -> None:
        """Main thread retired the pointer set's loop branch: free a column."""
        self.head[pointer_set] += 1

    # ------------------------------------------------------------------
    # Squash recovery (paper: spec_head rollback enables replay).
    # ------------------------------------------------------------------
    def checkpoint(self) -> Tuple[int, int]:
        return (self.spec_head[0], self.spec_head[1])

    def restore(self, state: Tuple[int, int]) -> None:
        self.spec_head[0], self.spec_head[1] = state

    def note_consumed_wrong(self, pc: int) -> None:
        """The retire unit found a consumed prediction disagreed with the
        branch's actual outcome (charged to the queue that supplied it)."""
        self.consumed_wrong += 1
        self._pc_stats(pc)["consumed_wrong"] += 1

    def stats(self) -> dict:
        return {
            "deposits": self.deposits,
            "consumed": self.consumed,
            "consumed_wrong": self.consumed_wrong,
            "not_timely": self.not_timely,
        }
