"""Control-Dependency FSM matrix (paper Section V-D, Figures 7 and 8).

Learns the *immediate guarding branch* of every delinquent branch and
included store.  Each matrix element is a 2-bit FSM:

* ``INIT`` — pair not yet observed;
* ``CD_T`` / ``CD_NT`` — the row instruction has so far always seen the
  column branch immediately prior with this direction (control-dependent);
* ``CI`` — both directions of the column branch have been observed
  immediately prior: the row instruction is control-independent of it, and
  subsequent training looks *past* it in the branch list.

Training is driven by a per-iteration *branch list* of retired delinquent
branches and their directions, cleared when the loop branch retires.
"""

import enum
from typing import Dict, List, Optional, Tuple


class CDState(enum.Enum):
    INIT = 0
    CD_T = 1
    CD_NT = 2
    CI = 3


class CDFSMMatrix:
    def __init__(self, max_rows: int = 32, max_cols: int = 16):
        self.max_rows = max_rows
        self.max_cols = max_cols
        self.rows: List[int] = []  # row instruction PCs (branches + stores)
        self.cols: List[int] = []  # delinquent branch PCs
        # (row_pc, col_pc) -> CDState; INIT entries are implicit.
        self._state: Dict[Tuple[int, int], CDState] = {}
        self.branch_list: List[Tuple[int, bool]] = []  # (pc, taken) this iteration
        self.overflowed = False

    # ------------------------------------------------------------------
    # Row/column allocation.
    # ------------------------------------------------------------------
    def add_col(self, pc: int) -> None:
        if pc in self.cols:
            return
        if len(self.cols) >= self.max_cols:
            self.overflowed = True
            return
        self.cols.append(pc)

    def add_row(self, pc: int) -> None:
        if pc in self.rows:
            return
        if len(self.rows) >= self.max_rows:
            self.overflowed = True
            return
        self.rows.append(pc)

    def state(self, row_pc: int, col_pc: int) -> CDState:
        return self._state.get((row_pc, col_pc), CDState.INIT)

    # ------------------------------------------------------------------
    # Training (at retire).
    # ------------------------------------------------------------------
    def note_retired(self, pc: int, taken: Optional[bool] = None) -> None:
        """Train the row of ``pc`` (if it has one), then append to the
        branch list (if ``pc`` is a column branch)."""
        if pc in self.rows:
            self._train_row(pc)
        if taken is not None and pc in self.cols:
            self.branch_list.append((pc, taken))

    def _train_row(self, row_pc: int) -> None:
        # Walk the branch list from most recent, skipping CI columns
        # (the row instruction "looks past" branches it is independent of).
        for col_pc, taken in reversed(self.branch_list):
            if col_pc == row_pc:
                continue  # a prior dynamic instance of itself ends the walk
            state = self.state(row_pc, col_pc)
            if state is CDState.CI:
                continue
            if state is CDState.INIT:
                new = CDState.CD_T if taken else CDState.CD_NT
            elif state is CDState.CD_T:
                new = CDState.CD_T if taken else CDState.CI
            else:  # CD_NT
                new = CDState.CI if taken else CDState.CD_NT
            self._state[(row_pc, col_pc)] = new
            if new is CDState.CI:
                continue  # independence discovered: look further back now
            return
        # Empty (or fully-CI) branch list: nothing to train.

    def end_iteration(self) -> None:
        """Loop branch retired: clear the branch list (Section V-D)."""
        self.branch_list.clear()

    # ------------------------------------------------------------------
    # Result extraction (at helper-thread finalization).
    # ------------------------------------------------------------------
    def immediate_guard(self, row_pc: int) -> Optional[Tuple[int, bool]]:
        """(guard_pc, enabling_direction) of the row's immediate guarding
        branch, or None if unguarded (all FSMs INIT or CI).

        ``enabling_direction`` is the column direction that *enables* the
        row instruction (CD_NT -> enabled when the guard is not-taken).
        """
        guards = []
        for col_pc in self.cols:
            state = self.state(row_pc, col_pc)
            if state is CDState.CD_T:
                guards.append((col_pc, True))
            elif state is CDState.CD_NT:
                guards.append((col_pc, False))
        if not guards:
            return None
        # Multiple CD states indicate OR-guarding (Section V-K, out of the
        # evaluated design's scope); fall back to the most recent guard in
        # program order, which is the innermost one for structured code.
        return max(guards, key=lambda g: g[0])

    def all_guards(self, row_pc: int) -> List[Tuple[int, bool]]:
        """Every (guard_pc, enabling_direction) in CD state for this row —
        more than one indicates OR-guarding (Section V-K)."""
        guards = []
        for col_pc in self.cols:
            state = self.state(row_pc, col_pc)
            if state is CDState.CD_T:
                guards.append((col_pc, True))
            elif state is CDState.CD_NT:
                guards.append((col_pc, False))
        return guards

    def has_multiple_guards(self, row_pc: int) -> bool:
        count = sum(
            1 for col_pc in self.cols
            if self.state(row_pc, col_pc) in (CDState.CD_T, CDState.CD_NT)
        )
        return count > 1

    def reset(self) -> None:
        self.rows.clear()
        self.cols.clear()
        self._state.clear()
        self.branch_list.clear()
        self.overflowed = False
