"""Phelps: predicated helper threads (the paper's contribution).

Training structures (Section V-B..V-D), the Helper Thread Cache (V-E),
loop-iteration-driven prediction queues (IV-B), the Visit Queue for dual
decoupled helper threads (V-F), the speculative helper-store cache (IV-A),
and the epoch-based controller that wires it all into the core (V-A..V-J).
"""

from repro.phelps.config import PhelpsConfig
from repro.phelps.dbt import DelinquentBranchTable, DBTEntry, DBTMax
from repro.phelps.loop_table import LoopTable, LoopTableEntry
from repro.phelps.lpt import LastProducerTable
from repro.phelps.store_detect import RetiredStoreQueue
from repro.phelps.cdfsm import CDFSMMatrix, CDState
from repro.phelps.prediction_queues import PredictionQueueFile
from repro.phelps.visit_queue import VisitQueue
from repro.phelps.spec_cache import SpeculativeCache
from repro.phelps.htc import HelperThreadCache, HelperThreadRow
from repro.phelps.slicer import HelperThreadBuilder
from repro.phelps.controller import PhelpsEngine
from repro.phelps.budget import component_costs, total_cost_bytes

__all__ = [
    "PhelpsConfig",
    "DelinquentBranchTable",
    "DBTEntry",
    "DBTMax",
    "LoopTable",
    "LoopTableEntry",
    "LastProducerTable",
    "RetiredStoreQueue",
    "CDFSMMatrix",
    "CDState",
    "PredictionQueueFile",
    "VisitQueue",
    "SpeculativeCache",
    "HelperThreadCache",
    "HelperThreadRow",
    "HelperThreadBuilder",
    "PhelpsEngine",
    "component_costs",
    "total_cost_bytes",
]
