"""A tiny assembler DSL for writing workload kernels in Python.

Example::

    a = Assembler("count")
    arr = a.data("arr", [5, 2, 9, 1])
    a.li("x1", arr)           # base pointer
    a.li("x2", 4)             # length
    a.li("x3", 0)             # i
    a.li("x4", 0)             # count
    a.label("loop")
    a.slli("x5", "x3", 3)
    a.add("x5", "x5", "x1")
    a.ld("x6", "x5", 0)
    a.li("x7", 4)
    a.blt("x6", "x7", "skip")
    a.addi("x4", "x4", 1)
    a.label("skip")
    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    program = a.build()
"""

from typing import Dict, List, Sequence, Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import CODE_BASE, DATA_BASE, Program, WORD
from repro.isa.registers import reg_index

RegLike = Union[str, int]


class _LabelRef:
    """A forward/backward reference to a code label, resolved at build()."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Assembler:
    """Builds a :class:`Program` instruction by instruction."""

    def __init__(self, name: str = "program", code_base: int = CODE_BASE,
                 data_base: int = DATA_BASE):
        self.name = name
        self._code_base = code_base
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._data_symbols: Dict[str, int] = {}
        self._data_cursor = data_base

    # ------------------------------------------------------------------
    # Layout helpers.
    # ------------------------------------------------------------------
    @property
    def next_pc(self) -> int:
        return self._code_base + 4 * len(self._insts)

    def label(self, name: str) -> int:
        """Define a code label at the current position; returns its PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.next_pc
        return self._labels[name]

    def data(self, name: str, values: Sequence[int]) -> int:
        """Allocate and initialize a data array; returns its base address."""
        base = self.alloc(name, len(values))
        for i, v in enumerate(values):
            self._data[base + i * WORD] = int(v)
        return base

    def alloc(self, name: str, num_words: int) -> int:
        """Reserve ``num_words`` zero-initialized 8-byte words."""
        if name in self._data_symbols:
            raise ValueError(f"duplicate data symbol {name!r}")
        base = self._data_cursor
        self._data_symbols[name] = base
        for i in range(num_words):
            self._data.setdefault(base + i * WORD, 0)
        self._data_cursor = base + max(num_words, 1) * WORD
        return base

    # ------------------------------------------------------------------
    # Instruction emission.
    # ------------------------------------------------------------------
    def _emit(self, opcode: Opcode, rd=None, rs1=None, rs2=None, imm=None) -> Instruction:
        inst = Instruction(
            opcode=opcode,
            rd=reg_index(rd) if rd is not None else None,
            rs1=reg_index(rs1) if rs1 is not None else None,
            rs2=reg_index(rs2) if rs2 is not None else None,
            imm=imm,
            pc=self.next_pc,
        )
        self._insts.append(inst)
        return inst

    # Register-register ALU.
    def add(self, rd, rs1, rs2):
        return self._emit(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._emit(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._emit(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._emit(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._emit(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._emit(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._emit(Opcode.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        return self._emit(Opcode.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._emit(Opcode.SLT, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        return self._emit(Opcode.SLTU, rd, rs1, rs2)

    def min_(self, rd, rs1, rs2):
        return self._emit(Opcode.MIN, rd, rs1, rs2)

    def max_(self, rd, rs1, rs2):
        return self._emit(Opcode.MAX, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._emit(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._emit(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._emit(Opcode.REM, rd, rs1, rs2)

    # Register-immediate ALU.
    def addi(self, rd, rs1, imm: int):
        return self._emit(Opcode.ADDI, rd, rs1, imm=imm)

    def andi(self, rd, rs1, imm: int):
        return self._emit(Opcode.ANDI, rd, rs1, imm=imm)

    def ori(self, rd, rs1, imm: int):
        return self._emit(Opcode.ORI, rd, rs1, imm=imm)

    def xori(self, rd, rs1, imm: int):
        return self._emit(Opcode.XORI, rd, rs1, imm=imm)

    def slti(self, rd, rs1, imm: int):
        return self._emit(Opcode.SLTI, rd, rs1, imm=imm)

    def slli(self, rd, rs1, imm: int):
        return self._emit(Opcode.SLLI, rd, rs1, imm=imm)

    def srli(self, rd, rs1, imm: int):
        return self._emit(Opcode.SRLI, rd, rs1, imm=imm)

    def srai(self, rd, rs1, imm: int):
        return self._emit(Opcode.SRAI, rd, rs1, imm=imm)

    def li(self, rd, imm: int):
        return self._emit(Opcode.LI, rd, imm=imm)

    def mv(self, rd, rs1):
        """Pseudo: register move (addi rd, rs1, 0)."""
        return self._emit(Opcode.ADDI, rd, rs1, imm=0)

    # Memory.
    def ld(self, rd, base, offset: int = 0):
        return self._emit(Opcode.LD, rd, base, imm=offset)

    def sd(self, src, base, offset: int = 0):
        """Store ``src`` to ``base + offset`` (rs1 = base, rs2 = data)."""
        return self._emit(Opcode.SD, rs1=base, rs2=src, imm=offset)

    # Control flow.  ``target`` may be a label name or absolute PC.
    def _target(self, target) -> Union[int, _LabelRef]:
        if isinstance(target, str):
            return _LabelRef(target)
        return int(target)

    def _branch(self, op: Opcode, rs1, rs2, target):
        inst = self._emit(op, rs1=rs1, rs2=rs2)
        inst.imm = self._target(target)
        return inst

    def beq(self, rs1, rs2, target):
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def bltu(self, rs1, rs2, target):
        return self._branch(Opcode.BLTU, rs1, rs2, target)

    def bgeu(self, rs1, rs2, target):
        return self._branch(Opcode.BGEU, rs1, rs2, target)

    def jal(self, rd, target):
        inst = self._emit(Opcode.JAL, rd)
        inst.imm = self._target(target)
        return inst

    def j(self, target):
        """Pseudo: unconditional jump (jal x0)."""
        return self.jal("x0", target)

    def jalr(self, rd, rs1, offset: int = 0):
        return self._emit(Opcode.JALR, rd, rs1, imm=offset)

    def call(self, target):
        """Pseudo: jal ra, target."""
        return self.jal("ra", target)

    def ret(self):
        """Pseudo: jalr x0, ra, 0."""
        return self.jalr("x0", "ra", 0)

    def nop(self):
        return self._emit(Opcode.NOP)

    def halt(self):
        return self._emit(Opcode.HALT)

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve label references and freeze the program."""
        for inst in self._insts:
            if isinstance(inst.imm, _LabelRef):
                name = inst.imm.name
                if name not in self._labels:
                    raise ValueError(f"undefined label {name!r} at {inst.pc:#x}")
                inst.imm = self._labels[name]
        return Program(
            instructions=self._insts,
            data=self._data,
            labels=self._labels,
            data_symbols=self._data_symbols,
            name=self.name,
        )
