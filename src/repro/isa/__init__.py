"""A small RISC-V-flavoured 64-bit ISA used as the simulation substrate.

The paper's simulator is RISC-V execution-driven; ours uses a compact
RISC-like ISA with 32 integer registers, 8-byte memory words, conditional
branches, and a pair of helper-thread-internal operations (predicate
producers and live-in moves) that never appear in architectural programs.
"""

from repro.isa.opcodes import Opcode, LaneClass
from repro.isa.registers import REG_NAMES, reg_index, reg_name, NUM_REGS
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.assembler import Assembler
from repro.isa.executor import ArchState, StepResult, UndoLog, run_program

__all__ = [
    "Opcode",
    "LaneClass",
    "REG_NAMES",
    "reg_index",
    "reg_name",
    "NUM_REGS",
    "Instruction",
    "Program",
    "Assembler",
    "ArchState",
    "StepResult",
    "UndoLog",
    "run_program",
]
