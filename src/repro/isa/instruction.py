"""The :class:`Instruction` record shared by the assembler, the functional
executor, the out-of-order core, and the Phelps helper-thread machinery."""

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.isa.opcodes import (
    COND_BRANCH_OPS,
    LaneClass,
    Opcode,
    RI_ALU_OPS,
    RR_ALU_OPS,
    COMPLEX_OPS,
    lane_class,
)


@dataclass
class Instruction:
    """One static instruction.

    ``imm`` is overloaded the way fixed-format RISC encodings overload it:
    the immediate operand for ALU-immediate ops, the byte offset for
    loads/stores, and the *absolute target PC* for branches and JAL
    (the assembler resolves labels to absolute PCs).

    The ``pred_*`` fields only exist on helper-thread instructions after
    Phelps converts delinquent branches to predicate producers and assigns
    predicate operands (paper Section V-E): ``pred_rd`` is the logical
    destination predicate register of a PRED; ``pred_rs`` is the logical
    source predicate register of a PRED or guarded store (0 = ``pred0`` =
    unconditional); ``pred_dir`` is the enabling direction bit.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    pc: int = -1
    # --- helper-thread-only fields ---
    pred_rd: Optional[int] = None
    pred_rs: Optional[int] = None
    pred_dir: Optional[bool] = None
    # Optional second predicate source (Section V-K OR-guarding: the two
    # evaluations are ORed).  Disabled in the paper's evaluated design.
    pred_rs2: Optional[int] = None
    pred_dir2: Optional[bool] = None
    origin_pc: Optional[int] = None  # PC of the branch a PRED was converted from
    origin_opcode: Optional[Opcode] = None  # comparison a PRED performs
    # Outer-thread header branch: logical regs captured into the Visit Queue
    # at retire (live-ins supplied to the inner thread).
    capture_regs: Tuple[int, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Classification properties.
    # ------------------------------------------------------------------
    @property
    def is_cond_branch(self) -> bool:
        return self.opcode in COND_BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        return self.opcode in (Opcode.JAL, Opcode.JALR)

    @property
    def is_branch(self) -> bool:
        """Any control-transfer instruction."""
        return self.is_cond_branch or self.is_jump

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.SD

    @property
    def is_mem(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.SD)

    @property
    def is_pred_producer(self) -> bool:
        return self.opcode is Opcode.PRED

    @property
    def is_backward_branch(self) -> bool:
        """A conditional branch whose taken-target precedes it (loop branch)."""
        return self.is_cond_branch and self.imm is not None and self.imm <= self.pc

    @property
    def lane(self) -> LaneClass:
        if self.opcode is Opcode.PRED:
            return LaneClass.SIMPLE
        if self.opcode is Opcode.MOV_LIVEIN:
            return LaneClass.SIMPLE
        return lane_class(self.opcode)

    # ------------------------------------------------------------------
    # Register operand views.
    # ------------------------------------------------------------------
    @property
    def dest_reg(self) -> Optional[int]:
        """Logical integer destination, or None (x0 writes are discarded)."""
        if self.opcode in (Opcode.SD, Opcode.NOP, Opcode.HALT, Opcode.PRED):
            return None
        if self.opcode in COND_BRANCH_OPS:
            return None
        if self.rd == 0:
            return None
        return self.rd

    @property
    def src_regs(self) -> List[int]:
        """Logical integer source registers actually read."""
        op = self.opcode
        if op in RR_ALU_OPS or op in COMPLEX_OPS:
            return [self.rs1, self.rs2]
        if op in RI_ALU_OPS:
            return [] if op is Opcode.LI else [self.rs1]
        if op is Opcode.LD:
            return [self.rs1]
        if op is Opcode.SD:
            return [self.rs1, self.rs2]  # rs1 = base, rs2 = data
        if op in COND_BRANCH_OPS or op is Opcode.PRED:
            return [self.rs1, self.rs2]
        if op is Opcode.JALR:
            return [self.rs1]
        if op is Opcode.MOV_LIVEIN:
            return [self.rs1]
        return []

    @property
    def branch_target(self) -> Optional[int]:
        """Statically-known taken target (None for JALR)."""
        if self.is_cond_branch or self.opcode is Opcode.JAL:
            return self.imm
        return None

    @property
    def fall_through(self) -> int:
        return self.pc + 4

    def copy(self, **changes) -> "Instruction":
        """Shallow copy with field overrides (used by the Phelps slicer)."""
        return replace(self, **changes)

    def __repr__(self) -> str:
        parts = [f"{self.opcode.value}"]
        if self.rd is not None:
            parts.append(f"rd=x{self.rd}")
        if self.rs1 is not None:
            parts.append(f"rs1=x{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"rs2=x{self.rs2}")
        if self.imm is not None:
            parts.append(f"imm={self.imm:#x}" if self.is_branch else f"imm={self.imm}")
        if self.pred_rd is not None:
            parts.append(f"pred_rd=p{self.pred_rd}")
        if self.pred_rs is not None:
            direction = "T" if self.pred_dir else "NT"
            parts.append(f"pred_rs=p{self.pred_rs}@{direction}")
        return f"<{self.pc:#x}: {' '.join(parts)}>"
