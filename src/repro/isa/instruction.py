"""The :class:`Instruction` record shared by the assembler, the functional
executor, the out-of-order core, and the Phelps helper-thread machinery."""

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.isa.opcodes import (
    COND_BRANCH_OPS,
    DECODE,
    LANE_BY_ID,
    LaneClass,
    Opcode,
    RI_ALU_OPS,
    RR_ALU_OPS,
    COMPLEX_OPS,
)
from repro.isa.semantics import ALU_FUNCS, BRANCH_FUNCS


@dataclass
class Instruction:
    """One static instruction.

    ``imm`` is overloaded the way fixed-format RISC encodings overload it:
    the immediate operand for ALU-immediate ops, the byte offset for
    loads/stores, and the *absolute target PC* for branches and JAL
    (the assembler resolves labels to absolute PCs).

    The ``pred_*`` fields only exist on helper-thread instructions after
    Phelps converts delinquent branches to predicate producers and assigns
    predicate operands (paper Section V-E): ``pred_rd`` is the logical
    destination predicate register of a PRED; ``pred_rs`` is the logical
    source predicate register of a PRED or guarded store (0 = ``pred0`` =
    unconditional); ``pred_dir`` is the enabling direction bit.

    Decode happens once, here: everything derivable from the opcode and
    register operands (classification flags, lane, execution kind and
    latency, operand lists, the bound ALU/branch evaluation function) is
    precomputed in ``__post_init__`` and read as plain attributes on the
    per-cycle hot path.  Only ``imm``-dependent views stay properties,
    because the assembler patches ``imm`` during label fixup after
    construction.  ``dataclasses.replace`` (and :meth:`copy`) re-runs
    ``__post_init__``, so copies with a different opcode re-decode.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    pc: int = -1
    # --- helper-thread-only fields ---
    pred_rd: Optional[int] = None
    pred_rs: Optional[int] = None
    pred_dir: Optional[bool] = None
    # Optional second predicate source (Section V-K OR-guarding: the two
    # evaluations are ORed).  Disabled in the paper's evaluated design.
    pred_rs2: Optional[int] = None
    pred_dir2: Optional[bool] = None
    origin_pc: Optional[int] = None  # PC of the branch a PRED was converted from
    origin_opcode: Optional[Opcode] = None  # comparison a PRED performs
    # Outer-thread header branch: logical regs captured into the Visit Queue
    # at retire (live-ins supplied to the inner thread).
    capture_regs: Tuple[int, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # One-time decode.  These are plain attributes, not dataclass fields:
    # __eq__ / __repr__ / replace() see only the real fields above.
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        op = self.opcode
        self.is_cond_branch = op in COND_BRANCH_OPS
        self.is_jump = op is Opcode.JAL or op is Opcode.JALR
        self.is_branch = self.is_cond_branch or self.is_jump
        self.is_load = op is Opcode.LD
        self.is_store = op is Opcode.SD
        self.is_mem = self.is_load or self.is_store
        self.is_pred_producer = op is Opcode.PRED
        self.exec_kind, self.lane_id, self.latency = DECODE[op]
        self.lane = LANE_BY_ID[self.lane_id]
        self.needs_iq = op is not Opcode.NOP and op is not Opcode.HALT

        # Logical integer destination, or None (x0 writes are discarded).
        if (op is Opcode.SD or op is Opcode.NOP or op is Opcode.HALT
                or op is Opcode.PRED or self.is_cond_branch or self.rd == 0):
            self.dest_reg = None
        else:
            self.dest_reg = self.rd

        # Logical integer source registers actually read.
        if op in RR_ALU_OPS or op in COMPLEX_OPS:
            srcs = [self.rs1, self.rs2]
        elif op in RI_ALU_OPS:
            srcs = [] if op is Opcode.LI else [self.rs1]
        elif op is Opcode.LD:
            srcs = [self.rs1]
        elif op is Opcode.SD:
            srcs = [self.rs1, self.rs2]  # rs1 = base, rs2 = data
        elif self.is_cond_branch or op is Opcode.PRED:
            srcs = [self.rs1, self.rs2]
        elif op is Opcode.JALR or op is Opcode.MOV_LIVEIN:
            srcs = [self.rs1]
        else:
            srcs = []
        self.src_regs = srcs

        # Bound evaluation functions (module-level, so they pickle by name).
        self.alu_fn = ALU_FUNCS.get(op)
        if op is Opcode.PRED:
            self.branch_fn = (BRANCH_FUNCS[self.origin_opcode]
                              if self.origin_opcode in BRANCH_FUNCS else None)
        else:
            self.branch_fn = BRANCH_FUNCS.get(op)

    # ------------------------------------------------------------------
    # imm-dependent views (the assembler patches ``imm`` after
    # construction during label fixup, so these cannot be precomputed).
    # ------------------------------------------------------------------
    @property
    def is_backward_branch(self) -> bool:
        """A conditional branch whose taken-target precedes it (loop branch)."""
        return self.is_cond_branch and self.imm is not None and self.imm <= self.pc

    @property
    def branch_target(self) -> Optional[int]:
        """Statically-known taken target (None for JALR)."""
        if self.is_cond_branch or self.opcode is Opcode.JAL:
            return self.imm
        return None

    @property
    def fall_through(self) -> int:
        return self.pc + 4

    def copy(self, **changes) -> "Instruction":
        """Shallow copy with field overrides (used by the Phelps slicer)."""
        return replace(self, **changes)

    def __repr__(self) -> str:
        parts = [f"{self.opcode.value}"]
        if self.rd is not None:
            parts.append(f"rd=x{self.rd}")
        if self.rs1 is not None:
            parts.append(f"rs1=x{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"rs2=x{self.rs2}")
        if self.imm is not None:
            parts.append(f"imm={self.imm:#x}" if self.is_branch else f"imm={self.imm}")
        if self.pred_rd is not None:
            parts.append(f"pred_rd=p{self.pred_rd}")
        if self.pred_rs is not None:
            direction = "T" if self.pred_dir else "NT"
            parts.append(f"pred_rs=p{self.pred_rs}@{direction}")
        return f"<{self.pc:#x}: {' '.join(parts)}>"
