"""Program container: a code image, an initial data image, and symbols."""

from typing import Dict, List, Optional

from repro.isa.instruction import Instruction

CODE_BASE = 0x1000
DATA_BASE = 0x100000
WORD = 8


class Program:
    """An assembled program.

    Instructions are laid out contiguously from ``CODE_BASE`` with a 4-byte
    pitch.  The initial data image maps 8-byte-aligned addresses to 64-bit
    values; the simulator's main memory is seeded from it.
    """

    def __init__(
        self,
        instructions: List[Instruction],
        data: Optional[Dict[int, int]] = None,
        labels: Optional[Dict[str, int]] = None,
        data_symbols: Optional[Dict[str, int]] = None,
        name: str = "program",
    ):
        self.instructions = instructions
        self.data = dict(data or {})
        self.labels = dict(labels or {})
        self.data_symbols = dict(data_symbols or {})
        self.name = name
        self._by_pc = {inst.pc: inst for inst in instructions}
        if instructions:
            self.entry = instructions[0].pc
            self.code_end = instructions[-1].pc + 4
        else:
            self.entry = CODE_BASE
            self.code_end = CODE_BASE

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at ``pc``, or None if outside the code image."""
        return self._by_pc.get(pc)

    def pc_of(self, label: str) -> int:
        """PC of a code label."""
        return self.labels[label]

    def addr_of(self, symbol: str) -> int:
        """Base address of a data symbol."""
        return self.data_symbols[symbol]

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Program {self.name!r}: {len(self)} insts, {len(self.data)} data words>"
