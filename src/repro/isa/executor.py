"""In-order architectural executor.

Three uses:

1. Reference semantics for workloads (unit tests run kernels to completion
   and check algorithmic results).
2. The *oracle* behind perfect branch prediction (perfBP, Fig. 12a): an
   executor advances in lockstep with fetch and, thanks to the undo log,
   rewinds when the core squashes correct-path instructions (load-order
   violations).
3. The golden model for the property test asserting that the out-of-order
   core's architectural state matches in-order execution.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import COND_BRANCH_OPS, Opcode, RI_ALU_OPS, RR_ALU_OPS, COMPLEX_OPS
from repro.isa.program import Program
from repro.isa.semantics import eval_alu, eval_branch, mem_effective_address
from repro.isa.registers import NUM_REGS
from repro.utils.bits import to_i64


@dataclass
class StepResult:
    """Outcome of executing one instruction architecturally."""

    inst: Instruction
    pc: int
    next_pc: int
    taken: Optional[bool] = None  # conditional branches only
    mem_addr: Optional[int] = None
    mem_value: Optional[int] = None  # value loaded or stored
    halted: bool = False


class UndoLog:
    """Journal of register/memory/pc overwrites enabling rewind.

    ``mark()`` returns a position; ``rewind(state, mark)`` restores the
    executor to exactly that position.  Memory entries record the previous
    word value (or ``None`` when the address was untouched).
    """

    def __init__(self):
        self._entries: List[Tuple] = []

    def mark(self) -> int:
        return len(self._entries)

    def log_reg(self, idx: int, old: int) -> None:
        self._entries.append(("r", idx, old))

    def log_mem(self, addr: int, old: Optional[int]) -> None:
        self._entries.append(("m", addr, old))

    def log_pc(self, old: int) -> None:
        self._entries.append(("p", old))

    def log_halt(self) -> None:
        self._entries.append(("h",))

    def rewind(self, state: "ArchState", mark: int) -> None:
        while len(self._entries) > mark:
            entry = self._entries.pop()
            kind = entry[0]
            if kind == "r":
                state.regs[entry[1]] = entry[2]
            elif kind == "m":
                addr, old = entry[1], entry[2]
                if old is None:
                    state.mem.pop(addr, None)
                else:
                    state.mem[addr] = old
            elif kind == "p":
                state.pc = entry[1]
            elif kind == "h":
                state.halted = False

    def __len__(self) -> int:
        return len(self._entries)


class ArchState:
    """Architectural registers + memory + pc, with optional undo journal."""

    def __init__(self, program: Program, undo: bool = False):
        self.program = program
        self.regs: List[int] = [0] * NUM_REGS
        self.mem: Dict[int, int] = dict(program.data)
        self.pc: int = program.entry
        self.halted = False
        self.undo: Optional[UndoLog] = UndoLog() if undo else None
        self.retired = 0

    # ------------------------------------------------------------------
    # Snapshot hooks (sampled simulation: checkpointed fast-forward).
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Serializable architectural state: regs, memory, pc, progress.

        The undo journal is deliberately excluded — a snapshot is a clean
        resume point, not a rewindable one.
        """
        return {
            "regs": list(self.regs),
            "mem": dict(self.mem),
            "pc": self.pc,
            "halted": self.halted,
            "retired": self.retired,
        }

    def restore_snapshot(self, snap: Dict) -> None:
        """Adopt a snapshot taken by :meth:`snapshot` (same program)."""
        self.regs = list(snap["regs"])
        self.mem = {int(a): int(v) for a, v in snap["mem"].items()}
        self.pc = int(snap["pc"])
        self.halted = bool(snap["halted"])
        self.retired = int(snap["retired"])
        if self.undo is not None:
            self.undo = UndoLog()

    # ------------------------------------------------------------------
    def read_mem(self, addr: int) -> int:
        """Read an 8-byte word; untouched memory reads as zero."""
        return self.mem.get(addr & ~7, 0)

    def _write_reg(self, idx: Optional[int], value: int) -> None:
        if idx is None or idx == 0:
            return
        if self.undo is not None:
            self.undo.log_reg(idx, self.regs[idx])
        self.regs[idx] = value

    def _write_mem(self, addr: int, value: int) -> None:
        if self.undo is not None:
            self.undo.log_mem(addr, self.mem.get(addr))
        self.mem[addr] = value

    def _set_pc(self, value: int) -> None:
        if self.undo is not None:
            self.undo.log_pc(self.pc)
        self.pc = value

    # ------------------------------------------------------------------
    def step(self) -> StepResult:
        """Execute the instruction at ``pc`` and advance."""
        if self.halted:
            raise RuntimeError("stepping a halted machine")
        inst = self.program.fetch(self.pc)
        if inst is None:
            raise RuntimeError(f"fetch outside code image at pc={self.pc:#x}")
        op = inst.opcode
        pc = self.pc
        result = StepResult(inst=inst, pc=pc, next_pc=pc + 4)

        if op in RR_ALU_OPS or op in COMPLEX_OPS:
            value = eval_alu(op, self.regs[inst.rs1], self.regs[inst.rs2])
            self._write_reg(inst.rd, value)
        elif op in RI_ALU_OPS:
            a = 0 if op is Opcode.LI else self.regs[inst.rs1]
            value = eval_alu(op, a, inst.imm)
            self._write_reg(inst.rd, value)
        elif op is Opcode.LD:
            addr = mem_effective_address(self.regs[inst.rs1], inst.imm)
            value = to_i64(self.read_mem(addr))
            self._write_reg(inst.rd, value)
            result.mem_addr, result.mem_value = addr, value
        elif op is Opcode.SD:
            addr = mem_effective_address(self.regs[inst.rs1], inst.imm)
            value = self.regs[inst.rs2]
            self._write_mem(addr, value)
            result.mem_addr, result.mem_value = addr, value
        elif op in COND_BRANCH_OPS:
            taken = eval_branch(op, self.regs[inst.rs1], self.regs[inst.rs2])
            result.taken = taken
            if taken:
                result.next_pc = inst.imm
        elif op is Opcode.JAL:
            self._write_reg(inst.rd, pc + 4)
            result.next_pc = inst.imm
        elif op is Opcode.JALR:
            target = (self.regs[inst.rs1] + inst.imm) & ~1
            self._write_reg(inst.rd, pc + 4)
            result.next_pc = target
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            if self.undo is not None:
                self.undo.log_halt()
            self.halted = True
            result.halted = True
            result.next_pc = pc
        else:
            raise RuntimeError(f"opcode {op} is helper-thread-internal, not architectural")

        self._set_pc(result.next_pc)
        self.retired += 1
        return result


def fast_forward(state: ArchState, count: int, observer=None) -> int:
    """Architecturally execute up to ``count`` instructions.

    ``observer`` (if given) is called with each :class:`StepResult` — the
    sampling subsystem uses it to collect BBV counts and warmup footprints
    without the executor knowing about either.  Returns the number of
    instructions actually executed (short when the program halts).
    """
    executed = 0
    while executed < count and not state.halted:
        step = state.step()
        if observer is not None:
            observer(step)
        executed += 1
    return executed


def run_program(program: Program, max_steps: int = 10_000_000) -> ArchState:
    """Run a program to HALT (or ``max_steps``); returns the final state."""
    state = ArchState(program)
    for _ in range(max_steps):
        if state.halted:
            return state
        state.step()
    raise RuntimeError(f"program {program.name!r} did not halt within {max_steps} steps")
