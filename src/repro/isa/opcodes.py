"""Opcode and execution-lane definitions for the mini ISA."""

import enum


class LaneClass(enum.Enum):
    """Which execution lane class an instruction issues to.

    Mirrors the paper's Table III: 4 simple ALU lanes, 2 load/store lanes,
    2 FP/complex lanes.
    """

    SIMPLE = "simple"
    COMPLEX = "complex"
    MEM = "mem"
    NONE = "none"  # NOP/HALT consume no lane


class Opcode(enum.Enum):
    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    MIN = "min"
    MAX = "max"
    # Complex ALU.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LI = "li"  # load immediate (LUI+ADDI folded)
    # Memory (8-byte words).
    LD = "ld"
    SD = "sd"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"
    JALR = "jalr"
    # Misc.
    NOP = "nop"
    HALT = "halt"
    # Helper-thread-internal (never in architectural programs):
    PRED = "pred"  # predicate producer converted from a conditional branch
    MOV_LIVEIN = "mov_livein"  # live-in copy injected at helper-thread start


RR_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
        Opcode.MIN,
        Opcode.MAX,
    }
)

COMPLEX_OPS = frozenset({Opcode.MUL, Opcode.DIV, Opcode.REM})

RI_ALU_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLTI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SRAI,
        Opcode.LI,
    }
)

COND_BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)

# PRED executes the same comparison as the branch it was converted from.
PRED_SOURCE_OPS = COND_BRANCH_OPS


def lane_class(opcode: Opcode) -> LaneClass:
    """Map an opcode to its execution lane class."""
    if opcode in COMPLEX_OPS:
        return LaneClass.COMPLEX
    if opcode in (Opcode.LD, Opcode.SD):
        return LaneClass.MEM
    if opcode in (Opcode.NOP, Opcode.HALT):
        return LaneClass.NONE
    return LaneClass.SIMPLE


# Execution latency (cycles in the execute stage) per lane/opcode.
EXEC_LATENCY = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
}


def exec_latency(opcode: Opcode) -> int:
    """Fixed execution latency for non-memory opcodes (loads are variable)."""
    return EXEC_LATENCY.get(opcode, 1)
