"""Opcode and execution-lane definitions for the mini ISA."""

import enum


class LaneClass(enum.Enum):
    """Which execution lane class an instruction issues to.

    Mirrors the paper's Table III: 4 simple ALU lanes, 2 load/store lanes,
    2 FP/complex lanes.
    """

    SIMPLE = "simple"
    COMPLEX = "complex"
    MEM = "mem"
    NONE = "none"  # NOP/HALT consume no lane


class Opcode(enum.Enum):
    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    MIN = "min"
    MAX = "max"
    # Complex ALU.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LI = "li"  # load immediate (LUI+ADDI folded)
    # Memory (8-byte words).
    LD = "ld"
    SD = "sd"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"
    JALR = "jalr"
    # Misc.
    NOP = "nop"
    HALT = "halt"
    # Helper-thread-internal (never in architectural programs):
    PRED = "pred"  # predicate producer converted from a conditional branch
    MOV_LIVEIN = "mov_livein"  # live-in copy injected at helper-thread start


RR_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
        Opcode.MIN,
        Opcode.MAX,
    }
)

COMPLEX_OPS = frozenset({Opcode.MUL, Opcode.DIV, Opcode.REM})

RI_ALU_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLTI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SRAI,
        Opcode.LI,
    }
)

COND_BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)

# PRED executes the same comparison as the branch it was converted from.
PRED_SOURCE_OPS = COND_BRANCH_OPS


def lane_class(opcode: Opcode) -> LaneClass:
    """Map an opcode to its execution lane class."""
    if opcode in COMPLEX_OPS:
        return LaneClass.COMPLEX
    if opcode in (Opcode.LD, Opcode.SD):
        return LaneClass.MEM
    if opcode in (Opcode.NOP, Opcode.HALT):
        return LaneClass.NONE
    return LaneClass.SIMPLE


# Execution latency (cycles in the execute stage) per lane/opcode.
EXEC_LATENCY = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
}


def exec_latency(opcode: Opcode) -> int:
    """Fixed execution latency for non-memory opcodes (loads are variable)."""
    return EXEC_LATENCY.get(opcode, 1)


# ----------------------------------------------------------------------
# Static decode table.
#
# The out-of-order core's execute stage dispatches on a small integer
# *execution kind* instead of testing enum identities per uop; the kind,
# lane id, and latency for every opcode are precomputed here once at
# import and stamped onto each :class:`~repro.isa.instruction.Instruction`
# at decode (``__post_init__``), so the per-cycle hot path never hashes an
# ``Opcode`` member.
# ----------------------------------------------------------------------

# Integer lane ids (index into the issue stage's lane-budget column).
LANE_SIMPLE, LANE_MEM, LANE_COMPLEX, LANE_NONE = 0, 1, 2, 3

_LANE_IDS = {
    LaneClass.SIMPLE: LANE_SIMPLE,
    LaneClass.MEM: LANE_MEM,
    LaneClass.COMPLEX: LANE_COMPLEX,
    LaneClass.NONE: LANE_NONE,
}

LANE_BY_ID = (LaneClass.SIMPLE, LaneClass.MEM, LaneClass.COMPLEX, LaneClass.NONE)

# Execution kinds (indices into the core's handler dispatch table).
K_ALU_RI = 0   # register-immediate ALU (including LI)
K_ALU_RR = 1   # register-register ALU (including MUL/DIV/REM)
K_LOAD = 2
K_STORE = 3
K_CBR = 4      # conditional branch
K_PRED = 5     # predicate producer
K_JAL = 6
K_JALR = 7
K_MOV = 8      # MOV_LIVEIN
K_NONE = 9     # NOP/HALT (never reach execute)


def _exec_kind(op: Opcode) -> int:
    if op in RI_ALU_OPS:
        return K_ALU_RI
    if op in RR_ALU_OPS or op in COMPLEX_OPS:
        return K_ALU_RR
    if op is Opcode.LD:
        return K_LOAD
    if op is Opcode.SD:
        return K_STORE
    if op in COND_BRANCH_OPS:
        return K_CBR
    if op is Opcode.PRED:
        return K_PRED
    if op is Opcode.JAL:
        return K_JAL
    if op is Opcode.JALR:
        return K_JALR
    if op is Opcode.MOV_LIVEIN:
        return K_MOV
    return K_NONE


# opcode -> (exec_kind, lane_id, latency); PRED and MOV_LIVEIN issue to a
# simple lane exactly as the old ``Instruction.lane`` property decided.
DECODE = {
    op: (
        _exec_kind(op),
        LANE_SIMPLE if op in (Opcode.PRED, Opcode.MOV_LIVEIN)
        else _LANE_IDS[lane_class(op)],
        exec_latency(op),
    )
    for op in Opcode
}
