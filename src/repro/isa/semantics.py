"""Pure evaluation functions — the single source of truth for instruction
semantics, shared by the in-order functional executor and the out-of-order
core's execute stage (execute-at-execute)."""

from repro.isa.opcodes import Opcode
from repro.utils.bits import to_i64, to_u64


def eval_alu(opcode: Opcode, a: int, b: int) -> int:
    """Evaluate an ALU operation on signed-64 operands; returns signed-64.

    ``b`` is the second register value or the immediate, as appropriate.
    """
    if opcode in (Opcode.ADD, Opcode.ADDI):
        return to_i64(a + b)
    if opcode is Opcode.SUB:
        return to_i64(a - b)
    if opcode in (Opcode.AND, Opcode.ANDI):
        return to_i64(a & b)
    if opcode in (Opcode.OR, Opcode.ORI):
        return to_i64(a | b)
    if opcode in (Opcode.XOR, Opcode.XORI):
        return to_i64(a ^ b)
    if opcode in (Opcode.SLL, Opcode.SLLI):
        return to_i64(to_u64(a) << (b & 63))
    if opcode in (Opcode.SRL, Opcode.SRLI):
        return to_i64(to_u64(a) >> (b & 63))
    if opcode in (Opcode.SRA, Opcode.SRAI):
        return to_i64(a >> (b & 63))
    if opcode in (Opcode.SLT, Opcode.SLTI):
        return 1 if a < b else 0
    if opcode is Opcode.SLTU:
        return 1 if to_u64(a) < to_u64(b) else 0
    if opcode is Opcode.MIN:
        return a if a < b else b
    if opcode is Opcode.MAX:
        return a if a > b else b
    if opcode is Opcode.MUL:
        return to_i64(a * b)
    if opcode is Opcode.DIV:
        if b == 0:
            return -1  # RISC-V semantics
        q = abs(a) // abs(b)
        return to_i64(-q if (a < 0) != (b < 0) else q)
    if opcode is Opcode.REM:
        if b == 0:
            return to_i64(a)
        r = abs(a) % abs(b)
        return to_i64(-r if a < 0 else r)
    if opcode is Opcode.LI:
        return to_i64(b)
    raise ValueError(f"not an ALU opcode: {opcode}")


def eval_branch(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional-branch comparison (also used by PRED)."""
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return a < b
    if opcode is Opcode.BGE:
        return a >= b
    if opcode is Opcode.BLTU:
        return to_u64(a) < to_u64(b)
    if opcode is Opcode.BGEU:
        return to_u64(a) >= to_u64(b)
    raise ValueError(f"not a conditional branch opcode: {opcode}")


def mem_effective_address(base: int, offset: int) -> int:
    """Effective address of a load/store, aligned to the 8-byte word size."""
    return to_u64(base + offset) & ~7
