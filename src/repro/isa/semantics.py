"""Pure evaluation functions — the single source of truth for instruction
semantics, shared by the in-order functional executor and the out-of-order
core's execute stage (execute-at-execute).

Hot-path layout: each operation is a dedicated module-level function (so
it pickles by name and costs one call, no enum dispatch) and the public
``eval_alu`` / ``eval_branch`` entry points are one dict lookup.  The
out-of-order core skips even that lookup: decode stamps ``alu_fn`` /
``branch_fn`` onto each :class:`~repro.isa.instruction.Instruction`.
"""

from repro.isa.opcodes import Opcode
from repro.utils.bits import to_i64, to_u64

_M64 = (1 << 64) - 1
_S64 = 1 << 63
_W64 = 1 << 64


def _wrap(v: int) -> int:
    """Inline two's-complement signed-64 truncation (== ``to_i64``)."""
    v &= _M64
    return v - _W64 if v & _S64 else v


# ---------------------------------------------------------------- ALU ops
def _alu_add(a, b):
    v = (a + b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_sub(a, b):
    v = (a - b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_and(a, b):
    v = (a & b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_or(a, b):
    v = (a | b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_xor(a, b):
    v = (a ^ b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_sll(a, b):
    v = ((a & _M64) << (b & 63)) & _M64
    return v - _W64 if v & _S64 else v


def _alu_srl(a, b):
    v = (a & _M64) >> (b & 63)
    return v - _W64 if v & _S64 else v


def _alu_sra(a, b):
    v = (a >> (b & 63)) & _M64
    return v - _W64 if v & _S64 else v


def _alu_slt(a, b):
    return 1 if a < b else 0


def _alu_sltu(a, b):
    return 1 if (a & _M64) < (b & _M64) else 0


def _alu_min(a, b):
    return a if a < b else b


def _alu_max(a, b):
    return a if a > b else b


def _alu_mul(a, b):
    v = (a * b) & _M64
    return v - _W64 if v & _S64 else v


def _alu_div(a, b):
    if b == 0:
        return -1  # RISC-V semantics
    q = abs(a) // abs(b)
    return _wrap(-q if (a < 0) != (b < 0) else q)


def _alu_rem(a, b):
    if b == 0:
        return _wrap(a)
    r = abs(a) % abs(b)
    return _wrap(-r if a < 0 else r)


def _alu_li(a, b):
    return _wrap(b)


ALU_FUNCS = {
    Opcode.ADD: _alu_add, Opcode.ADDI: _alu_add,
    Opcode.SUB: _alu_sub,
    Opcode.AND: _alu_and, Opcode.ANDI: _alu_and,
    Opcode.OR: _alu_or, Opcode.ORI: _alu_or,
    Opcode.XOR: _alu_xor, Opcode.XORI: _alu_xor,
    Opcode.SLL: _alu_sll, Opcode.SLLI: _alu_sll,
    Opcode.SRL: _alu_srl, Opcode.SRLI: _alu_srl,
    Opcode.SRA: _alu_sra, Opcode.SRAI: _alu_sra,
    Opcode.SLT: _alu_slt, Opcode.SLTI: _alu_slt,
    Opcode.SLTU: _alu_sltu,
    Opcode.MIN: _alu_min,
    Opcode.MAX: _alu_max,
    Opcode.MUL: _alu_mul,
    Opcode.DIV: _alu_div,
    Opcode.REM: _alu_rem,
    Opcode.LI: _alu_li,
}


# ------------------------------------------------------------- branch ops
def _br_eq(a, b):
    return a == b


def _br_ne(a, b):
    return a != b


def _br_lt(a, b):
    return a < b


def _br_ge(a, b):
    return a >= b


def _br_ltu(a, b):
    return (a & _M64) < (b & _M64)


def _br_geu(a, b):
    return (a & _M64) >= (b & _M64)


BRANCH_FUNCS = {
    Opcode.BEQ: _br_eq,
    Opcode.BNE: _br_ne,
    Opcode.BLT: _br_lt,
    Opcode.BGE: _br_ge,
    Opcode.BLTU: _br_ltu,
    Opcode.BGEU: _br_geu,
}


# ------------------------------------------------------------ public API
def eval_alu(opcode: Opcode, a: int, b: int) -> int:
    """Evaluate an ALU operation on signed-64 operands; returns signed-64.

    ``b`` is the second register value or the immediate, as appropriate.
    """
    fn = ALU_FUNCS.get(opcode)
    if fn is None:
        raise ValueError(f"not an ALU opcode: {opcode}")
    return fn(a, b)


def eval_branch(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional-branch comparison (also used by PRED)."""
    fn = BRANCH_FUNCS.get(opcode)
    if fn is None:
        raise ValueError(f"not a conditional branch opcode: {opcode}")
    return fn(a, b)


def mem_effective_address(base: int, offset: int) -> int:
    """Effective address of a load/store, aligned to the 8-byte word size."""
    return to_u64(base + offset) & ~7


__all__ = ["ALU_FUNCS", "BRANCH_FUNCS", "eval_alu", "eval_branch",
           "mem_effective_address", "to_i64", "to_u64"]
