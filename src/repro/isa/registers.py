"""Logical integer register file naming (x0..x31, x0 hard-wired to zero)."""

NUM_REGS = 32

REG_NAMES = tuple(f"x{i}" for i in range(NUM_REGS))

_NAME_TO_INDEX = {name: i for i, name in enumerate(REG_NAMES)}
# Accept a few RISC-V ABI aliases for readability in workload kernels.
_NAME_TO_INDEX.update({"zero": 0, "ra": 1, "sp": 2})


def reg_index(reg) -> int:
    """Resolve a register operand (``'x7'``, ``7``, ``'zero'``) to an index."""
    if isinstance(reg, int):
        if not 0 <= reg < NUM_REGS:
            raise ValueError(f"register index {reg} out of range")
        return reg
    try:
        return _NAME_TO_INDEX[reg]
    except KeyError:
        raise ValueError(f"unknown register {reg!r}") from None


def reg_name(index: int) -> str:
    """Canonical name for a register index."""
    return REG_NAMES[index]
