"""ASCII chart rendering for experiment results.

The paper's figures are bar charts and line plots; these helpers render
the same series as fixed-width text so a terminal-only workflow (or a CI
log) can eyeball the shapes.  Used by ``examples/render_figures.py`` to
re-draw every figure from the benchmark cache.
"""

from typing import Dict, List, Optional, Sequence, Tuple


def hbar_chart(series: Dict[str, float], width: int = 50,
               maximum: Optional[float] = None, unit: str = "",
               reference: Optional[float] = None) -> str:
    """Horizontal bar chart: one labelled row per entry.

    ``reference`` draws a marker column (e.g. the 1.0x baseline).
    """
    if not series:
        return "(no data)"
    max_v = maximum if maximum is not None else max(series.values()) or 1.0
    label_w = max(len(k) for k in series)
    ref_col = None
    if reference is not None and max_v > 0:
        ref_col = min(width - 1, int(reference / max_v * width))
    lines = []
    for name, value in series.items():
        n = max(0, min(width, int(round(value / max_v * width)))) if max_v else 0
        bar = list("#" * n + " " * (width - n))
        if ref_col is not None and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(f"{name:<{label_w}s}  {''.join(bar)}  {value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bars(groups: Dict[str, Dict[str, float]], width: int = 40,
                 reference: Optional[float] = None) -> str:
    """Grouped horizontal bars (Fig. 12a style: per workload, per engine)."""
    out = []
    max_v = max((v for g in groups.values() for v in g.values()), default=1.0)
    for group, series in groups.items():
        out.append(f"{group}:")
        chart = hbar_chart(series, width=width, maximum=max_v,
                           reference=reference)
        out.extend("  " + line for line in chart.splitlines())
    return "\n".join(out)


def line_plot(points: Sequence[Tuple[float, float]], width: int = 50,
              height: int = 12, x_label: str = "", y_label: str = "") -> str:
    """A minimal scatter/line plot for sensitivity sweeps (Fig. 15a)."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y1:8.2f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{y0:8.2f} +" + "".join(grid[-1]))
    lines.append(" " * 10 + f"{x0:<10.0f}{x_label:^{max(0, width - 20)}}{x1:>10.0f}")
    if y_label:
        lines.insert(0, f"[{y_label}]")
    return "\n".join(lines)


def stacked_percent_rows(rows: Dict[str, Dict[str, float]],
                         order: Sequence[str], glyphs: str = "#@%*+=-:. ",
                         width: int = 50) -> str:
    """Fig. 14-style 100%-stacked bars: each row's categories share a bar.

    Categories are assigned glyphs in ``order``; a legend is appended.
    """
    label_w = max((len(k) for k in rows), default=4)
    out = []
    for name, cats in rows.items():
        total = sum(cats.values()) or 1.0
        bar = ""
        for i, cat in enumerate(order):
            share = cats.get(cat, 0) / total
            bar += glyphs[i % len(glyphs)] * int(round(share * width))
        bar = (bar + " " * width)[:width]
        out.append(f"{name:<{label_w}s}  [{bar}]")
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={cat}"
                       for i, cat in enumerate(order))
    out.append(f"legend: {legend}")
    return "\n".join(out)
