"""Append-only perf history and noise-aware regression comparison.

``BENCH_perf.json`` used to be a single overwritten snapshot — a perf
regression could land and the only evidence was gone by the next run.
This module turns it into a trajectory:

* :func:`append_record` files each perf record as an immutable shard
  under ``benchmarks/perf_history/`` (named ``perf-<unix>-<digest>.json``
  so lexicographic order is chronological and identical records collide
  onto one name), optionally mirroring the newest record to
  ``BENCH_perf.json`` so existing tooling keeps working;
* :func:`compare_records` computes *noise-aware* deltas between two
  records: each side's best-of-N round spread is its measured noise
  floor, and only a slowdown that clears both floors plus a safety
  margin counts as a regression.  Wall-clock is host-dependent, so the
  report carries a ``host_match`` flag — cross-host comparisons are
  advisory, never a gate.

The CLI surface is ``repro perf --record`` (measure + append) and
``repro perf --compare [BASE]`` (pure comparison, no simulation), which
exits :data:`repro.cli.EXIT_PERF_REGRESSION` on a same-host regression.
"""

import hashlib
import json
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.utils.shards import atomic_write_json

__all__ = ["append_record", "compare_records", "latest_record",
           "list_records", "load_record", "record_name",
           "DEFAULT_HISTORY_DIR", "DEFAULT_NOISE_PCT"]

DEFAULT_HISTORY_DIR = "benchmarks/perf_history"

# Noise floor assumed for records that predate per-round walls (the old
# schema kept only the best).  5% is generous for best-of-3 on a quiet
# host and conservative on a noisy one — old-schema comparisons only
# flag gross regressions, which is the right failure direction.
DEFAULT_NOISE_PCT = 5.0


def record_name(record: Dict) -> str:
    """Shard filename: zero-padded timestamp + content digest.

    The timestamp prefix makes ``sorted(names)`` chronological; the
    digest suffix keeps two records from the same second distinct while
    making a byte-identical re-append idempotent.
    """
    stamp = int(record.get("generated_unix", 0))
    payload = json.dumps(record, sort_keys=True, default=str)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:8]
    return f"perf-{stamp:010d}-{digest}.json"


def append_record(history_dir, record: Dict,
                  latest_path=None) -> pathlib.Path:
    """File one perf record into the history; returns the shard path.

    ``latest_path`` (conventionally the repo-root ``BENCH_perf.json``)
    additionally receives a copy when this record is the newest in the
    history — appending an *older* record (backfilling) never clobbers
    the latest pointer.
    """
    root = pathlib.Path(history_dir)
    path = root / record_name(record)
    atomic_write_json(path, record, indent=1, sort_keys=True)
    if latest_path is not None:
        newest = list_records(root)[-1]
        if newest == path:
            atomic_write_json(latest_path, record, indent=1, sort_keys=True)
    return path


def list_records(history_dir) -> List[pathlib.Path]:
    """History shard paths, oldest first (empty when no history)."""
    root = pathlib.Path(history_dir)
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("perf-*.json")
                  if not p.name.endswith(".corrupt"))


def load_record(path) -> Optional[Dict]:
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
            OSError):
        return None
    return doc if isinstance(doc, dict) else None


def latest_record(history_dir) -> Optional[Tuple[pathlib.Path, Dict]]:
    """Newest readable record in the history, with its path."""
    for path in reversed(list_records(history_dir)):
        doc = load_record(path)
        if doc is not None:
            return path, doc
    return None


# ----------------------------------------------------------------------
# Comparison.
# ----------------------------------------------------------------------
def _spread_pct(point: Dict, rounds_key: str, best_key: str) -> Optional[float]:
    """Relative best-of-N spread: (max - min) / min, as a percent."""
    rounds = point.get(rounds_key)
    if not rounds or min(rounds) <= 0:
        return None
    return (max(rounds) - min(rounds)) / min(rounds) * 100.0


def _point_delta(base: Dict, new: Dict, margin_pct: float) -> Dict:
    base_wall = base.get("wall_seconds_best")
    new_wall = new.get("wall_seconds_best")
    out = {
        "label": new.get("label") or base.get("label"),
        "base_wall_seconds": base_wall,
        "new_wall_seconds": new_wall,
    }
    if not base_wall or new_wall is None:
        out["verdict"] = "incomparable"
        return out
    delta_pct = (new_wall - base_wall) / base_wall * 100.0
    spreads = [s for s in
               (_spread_pct(base, "wall_seconds_rounds", "wall_seconds_best"),
                _spread_pct(new, "wall_seconds_rounds", "wall_seconds_best"))
               if s is not None]
    noise_pct = max(spreads) if spreads else DEFAULT_NOISE_PCT
    threshold = noise_pct + margin_pct
    if delta_pct > threshold:
        verdict = "regression"
    elif delta_pct < -threshold:
        verdict = "improvement"
    else:
        verdict = "ok"
    out.update({
        "delta_pct": round(delta_pct, 2),
        "noise_pct": round(noise_pct, 2),
        "threshold_pct": round(threshold, 2),
        "verdict": verdict,
    })
    return out


def compare_records(base: Dict, new: Dict,
                    margin_pct: float = 5.0) -> Dict:
    """Noise-aware delta report between two perf records.

    Points pair up by ``label``; a point is a *regression* only when its
    wall-clock slowdown exceeds the larger of the two records' measured
    best-of-N spreads plus ``margin_pct``.  ``host_match`` is False when
    the records came from different machines/interpreters — their walls
    are still reported, but callers must treat cross-host regressions as
    advisory (the CLI does not gate on them).
    """
    base_points = {p.get("label"): p for p in base.get("points", ())}
    new_points = {p.get("label"): p for p in new.get("points", ())}
    deltas = [_point_delta(base_points[label], new_points[label], margin_pct)
              for label in new_points if label in base_points]
    deltas.sort(key=lambda d: -(d.get("delta_pct") or 0.0))
    return {
        "schema": 1,
        "margin_pct": margin_pct,
        "host_match": base.get("host") == new.get("host"),
        "base_generated_unix": base.get("generated_unix"),
        "new_generated_unix": new.get("generated_unix"),
        "points": deltas,
        "regressions": [d["label"] for d in deltas
                        if d.get("verdict") == "regression"],
        "improvements": [d["label"] for d in deltas
                         if d.get("verdict") == "improvement"],
        "missing_labels": sorted(set(base_points) - set(new_points)),
    }
