"""A/B cycle-exactness harness: columnar vs legacy storage engines.

The columnar refactor (``CoreConfig(columnar=True)``, the default) swaps
every hot-path storage structure — register files, free lists, rename
maps, BTB, caches — for flat structure-of-arrays twins.  The claim is
that the swap is *observationally invisible*: the two engines produce
bit-identical cycle counts, SimStats, and commit streams on every
workload.  This module checks that claim at runtime:

* :func:`ab_compare` runs one configuration twice — once per engine —
  records a digest of the full commit stream (every retired uop's thread,
  PC, opcode, result, memory address, store value, and branch outcome),
  and diffs cycles, the complete :class:`~repro.core.stats.SimStats`
  record, and the digests.
* ``perturb_cycle`` injects a seeded one-cycle timing perturbation into
  one side (the clock silently skips a cycle number, as a real timing bug
  would).  The harness must flag the run as divergent — this is the
  harness's own self-test (``tests/harness/test_abcompare.py``).

CLI: ``python -m repro ab --workloads astar sssp --engines baseline phelps``.
"""

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import CoreConfig
from repro.core.thread import ThreadKind
from repro.harness.simulator import RunConfig, _build_core, _boot_from_checkpoint

__all__ = ["ABRun", "ABReport", "ab_compare", "ab_matrix"]


@dataclass
class ABRun:
    """One engine's half of an A/B comparison."""

    columnar: bool
    cycles: int
    retired: int
    commit_digest: str
    commits: int
    stats: dict
    wall_seconds: float


@dataclass
class ABReport:
    """The diff between the columnar and legacy runs of one config."""

    workload: str
    engine: str
    instructions: int
    columnar: ABRun
    legacy: ABRun
    mismatches: List[str] = field(default_factory=list)

    @property
    def match(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "engine": self.engine,
            "instructions": self.instructions,
            "match": self.match,
            "mismatches": list(self.mismatches),
            "cycles": [self.columnar.cycles, self.legacy.cycles],
            "commit_digest": [self.columnar.commit_digest,
                              self.legacy.commit_digest],
            "wall_seconds": [self.columnar.wall_seconds,
                             self.legacy.wall_seconds],
        }

    def summary(self) -> str:
        verdict = "MATCH" if self.match else "DIVERGE"
        speedup = (self.legacy.wall_seconds / self.columnar.wall_seconds
                   if self.columnar.wall_seconds else 0.0)
        line = (f"{self.workload}/{self.engine}: {verdict} "
                f"cycles={self.columnar.cycles} commits={self.columnar.commits} "
                f"columnar {self.columnar.wall_seconds:.2f}s vs legacy "
                f"{self.legacy.wall_seconds:.2f}s ({speedup:.2f}x)")
        if self.mismatches:
            line += "\n  " + "\n  ".join(self.mismatches)
        return line


def _digest_commit(h, thread, uop) -> None:
    """Fold one retired uop into the commit-stream digest.

    Everything architecturally observable at retire participates: the
    thread, program position, and the uop's computed effects.  Helper
    threads are included — their retires race the main thread in real
    runs, so a reordering is a divergence even at equal cycle counts.
    """
    inst = uop.inst
    h.update((
        f"{thread.id}|{thread.kind.value}|{uop.seq}|{inst.pc}|"
        f"{inst.opcode.value}|{uop.result}|{uop.mem_addr}|"
        f"{uop.store_value}|{uop.taken}|{uop.pred_enabled}\n"
    ).encode())


def _run_side(config: RunConfig, columnar: bool,
              perturb_cycle: Optional[int] = None) -> ABRun:
    """Run one engine; returns its cycles/stats/commit digest."""
    core_cfg = config.core or CoreConfig()
    side_cfg = dataclasses.replace(
        config, core=dataclasses.replace(core_cfg, columnar=columnar))
    core, _obs, program = _build_core(side_cfg)
    if side_cfg.start_instruction > 0:
        _boot_from_checkpoint(core, side_cfg, program)

    digest = hashlib.sha256()
    commits = 0
    orig_retire = core._retire_uop

    def digesting_retire(thread, uop):
        nonlocal commits
        commits += 1
        _digest_commit(digest, thread, uop)
        return orig_retire(thread, uop)

    core._retire_uop = digesting_retire

    if perturb_cycle is not None:
        # Seeded timing-bug injection: one extra cycle elapses at the
        # first tick at or past ``perturb_cycle`` — exactly the footprint
        # of an off-by-one stall bug.  (``>=`` with a one-shot latch, so
        # an idle-skip jump over the exact cycle number cannot mask it.)
        orig_tick = core.tick
        fired = []

        def perturbed_tick():
            orig_tick()
            if not fired and core.cycle >= perturb_cycle:
                fired.append(True)
                core.cycle += 1

        core.tick = perturbed_tick

    start = time.perf_counter()
    stats = core.run(max_instructions=side_cfg.max_instructions,
                     max_cycles=side_cfg.max_cycles)
    wall = time.perf_counter() - start
    return ABRun(columnar=columnar, cycles=stats.cycles, retired=stats.retired,
                 commit_digest=digest.hexdigest(), commits=commits,
                 stats=dataclasses.asdict(stats), wall_seconds=wall)


def ab_compare(config: RunConfig,
               perturb_cycle: Optional[int] = None,
               perturb_side: str = "legacy") -> ABReport:
    """Run ``config`` on both storage engines and diff every observable.

    ``perturb_cycle`` (tests only) injects a one-cycle perturbation into
    ``perturb_side`` (``"legacy"`` or ``"columnar"``); a correct harness
    must report the resulting divergence.
    """
    col = _run_side(config, columnar=True,
                    perturb_cycle=(perturb_cycle
                                   if perturb_side == "columnar" else None))
    leg = _run_side(config, columnar=False,
                    perturb_cycle=(perturb_cycle
                                   if perturb_side == "legacy" else None))

    mismatches: List[str] = []
    if col.cycles != leg.cycles:
        mismatches.append(f"cycles: columnar={col.cycles} legacy={leg.cycles}")
    if col.commit_digest != leg.commit_digest:
        mismatches.append(
            f"commit stream: columnar={col.commit_digest[:12]} "
            f"legacy={leg.commit_digest[:12]} "
            f"({col.commits} vs {leg.commits} commits)")
    for key in sorted(set(col.stats) | set(leg.stats)):
        a, b = col.stats.get(key), leg.stats.get(key)
        if a != b:
            mismatches.append(f"stats.{key}: columnar={a!r} legacy={b!r}")
    return ABReport(workload=config.workload, engine=config.engine,
                    instructions=config.max_instructions,
                    columnar=col, legacy=leg, mismatches=mismatches)


def ab_matrix(workloads, engines, max_instructions: int = 30_000,
              phelps_config=None) -> List[ABReport]:
    """A/B-compare every workload x engine pair; returns all reports."""
    reports = []
    for workload in workloads:
        for engine in engines:
            cfg = RunConfig(workload=workload, engine=engine,
                            max_instructions=max_instructions,
                            phelps_config=(phelps_config
                                           if engine == "phelps" else None))
            reports.append(ab_compare(cfg))
    return reports
