"""Process-pool fan-out for independent simulation runs.

Every paper figure is a cross product of independent (workload, engine,
config) points; :func:`simulate_many` runs them across worker processes
with deterministic result ordering, a per-run timeout with one retry, and
progress callbacks.  With ``jobs <= 1`` it degrades to a plain in-process
serial loop (no multiprocessing machinery, no timeout enforcement), which
keeps single-core environments and debuggers simple.

Each worker runs exactly one simulation and ships the :class:`SimResult`
back over a queue.  The in-process :class:`~repro.obs.Observability` hub
holds closures and is not picklable, so workers drop it (``obs=None``)
after ``simulate`` has folded its snapshot into ``SimStats.metrics`` /
``SimStats.epochs`` — observability data still arrives in the parent,
just in its serialized form.

Retries back off exponentially with deterministic jitter (seeded from
the run index and attempt number, so two sweeps retry on identical
schedules) up to a ``max_delay`` ceiling, and every returned
:class:`SimResult` carries ``attempts`` / ``last_error`` provenance
instead of silently substituting the retry's output.  The
``REPRO_INJECT_WORKER`` environment hook lets the fault harness
(:mod:`repro.guard.inject`) kill or hang selected workers.

Graceful interruption: inside :func:`interrupt_guard`, the first SIGINT
or SIGTERM sets a flag instead of killing the process — the dispatch
loops stop starting new work, flush every completed result, and raise
:class:`SweepInterrupted` (the CLI maps it to exit code 130).  A second
SIGINT restores the default handler and re-delivers the signal, so an
impatient operator can still hard-kill.  Journal/cache state stays
crash-consistent either way: results are flushed as they complete, never
at the end.
"""

import contextlib
import dataclasses
import json
import multiprocessing as mp
import os
import queue as queue_mod
import random
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.simulator import RunConfig, SimResult, simulate

__all__ = ["simulate_many", "Progress", "SimulationFailed", "SweepInterrupted",
           "interrupt_guard", "poll_interrupt", "retry_delay"]

# Worker fault-injection hook (see repro.guard.inject.worker_fault_env):
# a JSON spec {"mode": "kill"|"hang", "indices": [...], "max_attempt": N,
# "exit_code": int, "hang_seconds": float} consumed at worker startup.
_FAULT_ENV = "REPRO_INJECT_WORKER"


def retry_delay(index: int, attempt: int, backoff: float,
                max_delay: float = 30.0) -> float:
    """Exponential backoff with deterministic jitter, in seconds.

    ``backoff * 2**(attempt-1)`` scaled by a jitter factor in [1, 2) drawn
    from a generator seeded by (index, attempt) — retries spread out, but
    identically on every host and every rerun.  The result is capped at
    ``max_delay`` (applied after jitter, so determinism is trivially
    preserved): unbounded doubling would sleep for minutes by attempt 10.
    """
    if attempt <= 0 or backoff <= 0:
        return 0.0
    jitter = random.Random((index + 1) * 1_000_003 + attempt).random()
    raw = backoff * (2 ** (attempt - 1)) * (1.0 + jitter)
    return min(raw, max_delay)


# ----------------------------------------------------------------------
# Graceful interruption (SIGINT/SIGTERM).
# ----------------------------------------------------------------------
class SweepInterrupted(RuntimeError):
    """A sweep stopped on SIGINT/SIGTERM after flushing completed work.

    ``done``/``total`` count fully-flushed runs; everything else was
    either never started or is journaled as in-flight, so a ``--resume``
    requeues exactly the unfinished points.
    """

    def __init__(self, done: int = 0, total: int = 0):
        self.done = done
        self.total = total
        super().__init__(f"interrupted after {done}/{total} runs")


class _InterruptState:
    """Shared flag between the signal handler and the dispatch loops."""

    def __init__(self):
        self.interrupted = False
        self.signum: Optional[int] = None


# Stack of active guards: nested ``interrupt_guard`` uses (e.g. ``guard
# --matrix`` wrapping ``simulate_many``) share the outermost state, so one
# Ctrl-C stops every layer and handlers are installed exactly once.
_ACTIVE: List[_InterruptState] = []


@contextlib.contextmanager
def interrupt_guard():
    """Convert the first SIGINT/SIGTERM into a cooperative stop flag.

    Yields an :class:`_InterruptState`; loops poll ``state.interrupted``
    (or call :func:`poll_interrupt`) at safe stopping points.  A second
    SIGINT restores the default disposition and re-delivers the signal —
    a true hard kill, not a politeness escalation.  Reentrant: an inner
    guard joins the outer one.  In non-main threads (where ``signal``
    refuses handler installation) the guard degrades to a no-op flag.
    """
    if _ACTIVE:
        yield _ACTIVE[-1]
        return
    state = _InterruptState()

    def _handler(signum, frame):
        if state.interrupted and signum == signal.SIGINT:
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGINT)
            return
        state.interrupted = True
        state.signum = signum

    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handler)
    except ValueError:
        # Not the main thread: handlers cannot be installed; the flag
        # still works if someone else sets it.
        pass
    _ACTIVE.append(state)
    try:
        yield state
    finally:
        _ACTIVE.pop()
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, TypeError):
                pass


def poll_interrupt(done: int = 0, total: int = 0) -> None:
    """Raise :class:`SweepInterrupted` if an active guard caught a signal.

    A no-op outside any :func:`interrupt_guard`, so library code can call
    it unconditionally at loop boundaries (``guard --matrix`` iterations,
    sampled-region evaluation) without caring who set the guard up.
    """
    if _ACTIVE and _ACTIVE[-1].interrupted:
        raise SweepInterrupted(done, total)


def _maybe_inject_worker_fault(index: int, attempt: int) -> None:
    spec = os.environ.get(_FAULT_ENV)
    if not spec:
        return
    try:
        doc = json.loads(spec)
    except ValueError:
        return
    if index not in doc.get("indices", ()):
        return
    if attempt > int(doc.get("max_attempt", 0)):
        return  # the retry runs clean — that is the recovery under test
    if doc.get("mode") == "kill":
        os._exit(int(doc.get("exit_code", 23)))
    elif doc.get("mode") == "hang":
        time.sleep(float(doc.get("hang_seconds", 3600.0)))


@dataclass
class Progress:
    """One progress-callback notification.

    ``kind`` is ``"start"``, ``"done"``, ``"retry"``, or ``"failed"``;
    ``done_count``/``total`` give overall completion; ``index`` is the
    position of the affected config in the input sequence.
    """

    kind: str
    index: int
    config: RunConfig
    done_count: int
    total: int
    wall_seconds: float = 0.0
    error: Optional[str] = None


class SimulationFailed(RuntimeError):
    """A run failed (or timed out) on every attempt."""

    def __init__(self, failures):
        self.failures = failures  # list of (index, config, error)
        lines = [f"  [{i}] {c.workload}/{c.engine}: {err}"
                 for i, c, err in failures]
        super().__init__("simulation run(s) failed:\n" + "\n".join(lines))


def _worker(index: int, attempt: int, config: RunConfig, out_q,
            heartbeat_interval: Optional[float] = None) -> None:
    # Forked inside the parent's interrupt_guard, the child inherits its
    # cooperative handlers: SIGTERM would set a flag instead of killing,
    # so ``proc.terminate()`` (timeouts, interruption cleanup) would hang
    # on join.  Restore the default SIGTERM disposition and ignore SIGINT
    # — a terminal Ctrl-C hits the whole process group, and the *parent*
    # decides whether in-flight workers drain or die.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread start
        pass
    _maybe_inject_worker_fault(index, attempt)
    # Messages share the one result channel, tagged by kind: "hb" frames
    # stream progress mid-run, the single "res" frame ends the attempt.
    try:
        if heartbeat_interval is not None:
            def on_heartbeat(payload):
                out_q.put(("hb", index, attempt, payload))

            result = simulate(config, on_heartbeat=on_heartbeat,
                              heartbeat_interval=heartbeat_interval)
        else:
            result = simulate(config)
        # The hub's registry holds lambdas over live core objects; the
        # stats snapshot is already serialized into result.stats.
        result = dataclasses.replace(result, obs=None)
        out_q.put(("res", index, attempt, True, result, None))
    except BaseException as exc:  # ship *any* worker death to the parent
        out_q.put(("res", index, attempt, False, None, repr(exc)))


def _simulate_serial(configs: Sequence[RunConfig],
                     progress: Optional[Callable[[Progress], None]],
                     on_result: Optional[Callable[[int, SimResult], None]] = None,
                     heartbeat: Optional[Callable[[int, Dict], None]] = None,
                     heartbeat_interval: float = 1.0) -> List[SimResult]:
    # The serial path mirrors the pool's observable behavior exactly —
    # same Progress kinds, same heartbeat callbacks (delivered inline
    # rather than over a queue) — so ``watch``/``live.json`` cannot tell
    # a ``jobs=1`` sweep from a parallel one.
    results: List[SimResult] = []
    total = len(configs)
    with interrupt_guard() as istate:
        for i, config in enumerate(configs):
            if istate.interrupted:
                raise SweepInterrupted(len(results), total)
            if progress:
                progress(Progress("start", i, config, len(results), total))
            start = time.time()
            if heartbeat is not None:
                def on_heartbeat(payload, _i=i):
                    heartbeat(_i, payload)

                result = simulate(config, on_heartbeat=on_heartbeat,
                                  heartbeat_interval=heartbeat_interval)
            else:
                result = simulate(config)
            results.append(result)
            if on_result:
                on_result(i, result)
            if progress:
                progress(Progress("done", i, config, len(results), total,
                                  wall_seconds=time.time() - start))
    return results


def simulate_many(configs: Sequence[RunConfig],
                  jobs: Optional[int] = None,
                  timeout: Optional[float] = None,
                  retries: int = 1,
                  progress: Optional[Callable[[Progress], None]] = None,
                  poll_interval: float = 0.05,
                  backoff: float = 0.5,
                  max_delay: float = 30.0,
                  on_result: Optional[Callable[[int, SimResult], None]] = None,
                  heartbeat: Optional[Callable[[int, Dict], None]] = None,
                  heartbeat_interval: float = 1.0) -> List[SimResult]:
    """Run every config and return results in input order.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs<=1`` (or a single
    config) runs serially in-process.  In the parallel path each run gets
    ``timeout`` seconds (None = unlimited); a timed-out or crashed run is
    retried up to ``retries`` times — attempt N+1 waits
    ``retry_delay(index, N, backoff, max_delay)`` seconds first
    (``backoff=0`` retries immediately) — before
    :class:`SimulationFailed` is raised.  Each :class:`SimResult` records
    ``attempts`` and ``last_error``.  Runs are deterministic, so parallel
    results are bit-identical to the serial path.

    ``on_result(index, result)`` fires as each run *completes* (not in
    input order) — the campaign journal and run cache hook in here so
    durable state is flushed the moment a result exists, which is what
    makes interruption and crashes lose nothing that finished.

    ``heartbeat(index, payload)`` streams per-run progress: when set,
    each worker emits a heartbeat payload (see
    :class:`~repro.obs.live.HeartbeatTicker`) at most every
    ``heartbeat_interval`` seconds over the same channel results use,
    tagged so the two never interleave incorrectly.  Heartbeats are pure
    telemetry — results remain bit-identical with them on or off, in
    both the pool and the serial path.

    SIGINT/SIGTERM during the sweep stops dispatching, flushes every
    completed result, terminates in-flight workers, and raises
    :class:`SweepInterrupted`; a second SIGINT hard-kills.
    """
    configs = list(configs)
    if not configs:
        return []
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(configs))
    if jobs <= 1:
        return _simulate_serial(configs, progress, on_result,
                                heartbeat, heartbeat_interval)

    ctx = mp.get_context()
    out_q = ctx.Queue()
    total = len(configs)
    # (not_before, index, attempt): retries re-enter with a deadline in
    # the future; first attempts are ready immediately.
    pending: List[tuple] = [(0.0, i, 0) for i in range(total)]
    pending.reverse()  # pop ready entries in input order
    running: Dict[int, dict] = {}  # index -> {proc, attempt, deadline, start}
    results: List[Optional[SimResult]] = [None] * total
    failures: List[tuple] = []
    last_errors: Dict[int, str] = {}
    done_count = 0

    hb_interval = heartbeat_interval if heartbeat is not None else None

    def _spawn(index: int, attempt: int) -> None:
        proc = ctx.Process(target=_worker,
                           args=(index, attempt, configs[index], out_q,
                                 hb_interval),
                           daemon=True)
        proc.start()
        now = time.time()
        running[index] = {
            "proc": proc, "attempt": attempt, "start": now,
            "deadline": now + timeout if timeout is not None else None,
        }
        if progress:
            kind = "start" if attempt == 0 else "retry"
            progress(Progress(kind, index, configs[index], done_count, total))

    def _reap(index: int, ok: bool, result, error) -> None:
        nonlocal done_count
        info = running.pop(index)
        info["proc"].join()
        wall = time.time() - info["start"]
        if ok:
            results[index] = dataclasses.replace(
                result, attempts=info["attempt"] + 1,
                last_error=last_errors.get(index))
            if on_result:
                on_result(index, results[index])
            done_count += 1
            if progress:
                progress(Progress("done", index, configs[index], done_count,
                                  total, wall_seconds=wall))
        elif info["attempt"] < retries:
            last_errors[index] = error
            next_attempt = info["attempt"] + 1
            not_before = time.time() + retry_delay(index, next_attempt,
                                                   backoff, max_delay)
            pending.append((not_before, index, next_attempt))
        else:
            last_errors[index] = error
            failures.append((index, configs[index], error))
            done_count += 1
            if progress:
                progress(Progress("failed", index, configs[index], done_count,
                                  total, wall_seconds=wall, error=error))

    def _pop_ready() -> Optional[tuple]:
        now = time.time()
        for pos in range(len(pending) - 1, -1, -1):
            if pending[pos][0] <= now:
                return pending.pop(pos)
        return None

    def _dispatch(msg) -> None:
        """Route one tagged queue frame: heartbeats to the callback,
        results to :func:`_reap`.  Frames from attempts already reaped
        (e.g. a timed-out worker flushing before dying) are dropped."""
        if msg[0] == "hb":
            _, index, attempt, payload = msg
            if (heartbeat is not None and index in running
                    and running[index]["attempt"] == attempt):
                heartbeat(index, payload)
            return
        _, index, attempt, ok, result, error = msg
        if index in running and running[index]["attempt"] == attempt:
            _reap(index, ok, result, error)

    def _flush_completed() -> None:
        """Drain frames already on the queue (workers that finished but
        were not yet reaped) so an interruption loses nothing done."""
        while True:
            try:
                msg = out_q.get_nowait()
            except queue_mod.Empty:
                return
            _dispatch(msg)

    try:
        with interrupt_guard() as istate:
            while pending or running:
                if istate.interrupted:
                    _flush_completed()
                    raise SweepInterrupted(done_count, total)
                while pending and len(running) < jobs:
                    entry = _pop_ready()
                    if entry is None:
                        break  # every pending retry is still backing off
                    _, index, attempt = entry
                    _spawn(index, attempt)
                try:
                    msg = out_q.get(timeout=poll_interval)
                except queue_mod.Empty:
                    pass
                else:
                    _dispatch(msg)
                    continue
                now = time.time()
                for index, info in list(running.items()):
                    deadline = info["deadline"]
                    if deadline is not None and now > deadline:
                        info["proc"].terminate()
                        _reap(index, False, None,
                              f"timeout after {timeout:.1f}s")
                    elif not info["proc"].is_alive():
                        # Died without reporting (e.g. hard kill): drain any
                        # late queue frame first (possibly one of its own
                        # final heartbeats), then treat as a crash.
                        try:
                            msg = out_q.get_nowait()
                        except queue_mod.Empty:
                            _reap(index, False, None,
                                  f"worker exited with code {info['proc'].exitcode}")
                        else:
                            _dispatch(msg)
    finally:
        for info in running.values():
            info["proc"].terminate()
        for info in running.values():
            info["proc"].join()
        out_q.close()

    if failures:
        raise SimulationFailed(sorted(failures, key=lambda f: f[0]))
    return results  # type: ignore[return-value]
