"""Process-pool fan-out for independent simulation runs.

Every paper figure is a cross product of independent (workload, engine,
config) points; :func:`simulate_many` runs them across worker processes
with deterministic result ordering, a per-run timeout with one retry, and
progress callbacks.  With ``jobs <= 1`` it degrades to a plain in-process
serial loop (no multiprocessing machinery, no timeout enforcement), which
keeps single-core environments and debuggers simple.

Each worker runs exactly one simulation and ships the :class:`SimResult`
back over a queue.  The in-process :class:`~repro.obs.Observability` hub
holds closures and is not picklable, so workers drop it (``obs=None``)
after ``simulate`` has folded its snapshot into ``SimStats.metrics`` /
``SimStats.epochs`` — observability data still arrives in the parent,
just in its serialized form.
"""

import dataclasses
import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.simulator import RunConfig, SimResult, simulate

__all__ = ["simulate_many", "Progress", "SimulationFailed"]


@dataclass
class Progress:
    """One progress-callback notification.

    ``kind`` is ``"start"``, ``"done"``, ``"retry"``, or ``"failed"``;
    ``done_count``/``total`` give overall completion; ``index`` is the
    position of the affected config in the input sequence.
    """

    kind: str
    index: int
    config: RunConfig
    done_count: int
    total: int
    wall_seconds: float = 0.0
    error: Optional[str] = None


class SimulationFailed(RuntimeError):
    """A run failed (or timed out) on every attempt."""

    def __init__(self, failures):
        self.failures = failures  # list of (index, config, error)
        lines = [f"  [{i}] {c.workload}/{c.engine}: {err}"
                 for i, c, err in failures]
        super().__init__("simulation run(s) failed:\n" + "\n".join(lines))


def _worker(index: int, attempt: int, config: RunConfig, out_q) -> None:
    try:
        result = simulate(config)
        # The hub's registry holds lambdas over live core objects; the
        # stats snapshot is already serialized into result.stats.
        result = dataclasses.replace(result, obs=None)
        out_q.put((index, attempt, True, result, None))
    except BaseException as exc:  # ship *any* worker death to the parent
        out_q.put((index, attempt, False, None, repr(exc)))


def _simulate_serial(configs: Sequence[RunConfig],
                     progress: Optional[Callable[[Progress], None]]
                     ) -> List[SimResult]:
    results: List[SimResult] = []
    total = len(configs)
    for i, config in enumerate(configs):
        if progress:
            progress(Progress("start", i, config, len(results), total))
        start = time.time()
        results.append(simulate(config))
        if progress:
            progress(Progress("done", i, config, len(results), total,
                              wall_seconds=time.time() - start))
    return results


def simulate_many(configs: Sequence[RunConfig],
                  jobs: Optional[int] = None,
                  timeout: Optional[float] = None,
                  retries: int = 1,
                  progress: Optional[Callable[[Progress], None]] = None,
                  poll_interval: float = 0.05) -> List[SimResult]:
    """Run every config and return results in input order.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs<=1`` (or a single
    config) runs serially in-process.  In the parallel path each run gets
    ``timeout`` seconds (None = unlimited); a timed-out or crashed run is
    retried up to ``retries`` times before :class:`SimulationFailed` is
    raised.  Runs are deterministic, so parallel results are bit-identical
    to the serial path.
    """
    configs = list(configs)
    if not configs:
        return []
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(configs))
    if jobs <= 1:
        return _simulate_serial(configs, progress)

    ctx = mp.get_context()
    out_q = ctx.Queue()
    total = len(configs)
    pending: List[tuple] = [(i, 0) for i in range(total)]  # (index, attempt)
    pending.reverse()  # pop() from the front of the input order
    running: Dict[int, dict] = {}  # index -> {proc, attempt, deadline, start}
    results: List[Optional[SimResult]] = [None] * total
    failures: List[tuple] = []
    done_count = 0

    def _spawn(index: int, attempt: int) -> None:
        proc = ctx.Process(target=_worker,
                           args=(index, attempt, configs[index], out_q),
                           daemon=True)
        proc.start()
        now = time.time()
        running[index] = {
            "proc": proc, "attempt": attempt, "start": now,
            "deadline": now + timeout if timeout is not None else None,
        }
        if progress:
            kind = "start" if attempt == 0 else "retry"
            progress(Progress(kind, index, configs[index], done_count, total))

    def _reap(index: int, ok: bool, result, error) -> None:
        nonlocal done_count
        info = running.pop(index)
        info["proc"].join()
        wall = time.time() - info["start"]
        if ok:
            results[index] = result
            done_count += 1
            if progress:
                progress(Progress("done", index, configs[index], done_count,
                                  total, wall_seconds=wall))
        elif info["attempt"] < retries:
            pending.append((index, info["attempt"] + 1))
        else:
            failures.append((index, configs[index], error))
            done_count += 1
            if progress:
                progress(Progress("failed", index, configs[index], done_count,
                                  total, wall_seconds=wall, error=error))

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, attempt = pending.pop()
                _spawn(index, attempt)
            try:
                index, attempt, ok, result, error = out_q.get(timeout=poll_interval)
            except queue_mod.Empty:
                pass
            else:
                # Ignore late reports from attempts already reaped (e.g. a
                # timed-out worker that flushed its result before dying).
                if index in running and running[index]["attempt"] == attempt:
                    _reap(index, ok, result, error)
                continue
            now = time.time()
            for index, info in list(running.items()):
                deadline = info["deadline"]
                if deadline is not None and now > deadline:
                    info["proc"].terminate()
                    _reap(index, False, None,
                          f"timeout after {timeout:.1f}s")
                elif not info["proc"].is_alive():
                    # Died without reporting (e.g. hard kill): drain any
                    # late queue item first, then treat as a crash.
                    try:
                        qi, qat, qok, qres, qerr = out_q.get_nowait()
                    except queue_mod.Empty:
                        _reap(index, False, None,
                              f"worker exited with code {info['proc'].exitcode}")
                    else:
                        if qi in running and running[qi]["attempt"] == qat:
                            _reap(qi, qok, qres, qerr)
    finally:
        for info in running.values():
            info["proc"].terminate()
        for info in running.values():
            info["proc"].join()
        out_q.close()

    if failures:
        raise SimulationFailed(sorted(failures, key=lambda f: f[0]))
    return results  # type: ignore[return-value]
