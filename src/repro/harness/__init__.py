"""Simulation harness: run configuration, experiment sweeps, reporting."""

from repro.harness.simulator import RunConfig, SimResult, simulate
from repro.harness.experiment import compare_engines, speedup, sweep
from repro.harness.parallel import (Progress, SimulationFailed,
                                    SweepInterrupted, interrupt_guard,
                                    poll_interrupt, retry_delay,
                                    simulate_many)
from repro.harness.campaign import (CampaignJournal, entry_fingerprint,
                                    run_campaign)
from repro.harness.runcache import RunCache, entry_from_result
from repro.harness.reporting import (ascii_table, epoch_table, format_series,
                                     metrics_report)
from repro.harness.plots import grouped_bars, hbar_chart, line_plot, stacked_percent_rows
from repro.harness.regions import (DegenerateRegionError, Region,
                                   evaluate_regions, region_config,
                                   regions_for, weighted_harmonic_ipc,
                                   weighted_mpki)

__all__ = [
    "RunConfig",
    "SimResult",
    "simulate",
    "simulate_many",
    "Progress",
    "SimulationFailed",
    "SweepInterrupted",
    "interrupt_guard",
    "poll_interrupt",
    "retry_delay",
    "CampaignJournal",
    "entry_fingerprint",
    "run_campaign",
    "RunCache",
    "entry_from_result",
    "compare_engines",
    "speedup",
    "sweep",
    "ascii_table",
    "epoch_table",
    "format_series",
    "metrics_report",
    "grouped_bars",
    "hbar_chart",
    "line_plot",
    "stacked_percent_rows",
    "Region",
    "DegenerateRegionError",
    "evaluate_regions",
    "region_config",
    "regions_for",
    "weighted_harmonic_ipc",
    "weighted_mpki",
]
