"""Simulator wall-clock trajectory (``BENCH_perf.json``).

Measures best-of-N wall-clock for a small fixed set of runs and records
simulated-instructions-per-second, so successive PRs have a number to
compare against.  Each point is measured twice — with the event-driven
idle fast path on (the default) and off — which documents how much the
cycle-skip is worth on that workload.

The record is written to ``BENCH_perf.json`` at the repo root by the
``perf`` CLI verb (or ``benchmarks/perf_smoke.py``); CI uploads it as an
artifact.  Numbers are host-dependent: compare trajectories on the same
machine, not across hosts.
"""

import dataclasses
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import CoreConfig
from repro.harness.simulator import RunConfig, simulate
from repro.memory.hierarchy import MemoryConfig
from repro.utils.shards import atomic_write_json

__all__ = ["PERF_POINTS", "SAMPLING_POINT", "explain_skip",
           "measure_guard_overhead", "measure_point", "measure_sampling",
           "perf_smoke", "profile_hot", "write_perf_record"]

# Fixed measurement points: a helper-thread-heavy run (the engine hot
# path), a stall-heavy baseline run, and a slow-DRAM variant where more
# than half the cycles are idle (the cycle-skip showcase).
PERF_POINTS: List[Dict] = [
    {"workload": "astar", "engine": "phelps", "instructions": 30_000},
    {"workload": "sssp", "engine": "baseline", "instructions": 30_000},
    {"workload": "sssp", "engine": "baseline", "instructions": 20_000,
     "label": "sssp-slow-dram",
     "memory": {"dram_latency": 400,
                "enable_l1_prefetcher": False,
                "enable_l2_prefetcher": False}},
]


def _best_of(config: RunConfig, rounds: int) -> Tuple[float, object, List[float]]:
    """Best wall, its result, and every round's wall (the noise record).

    The per-round walls are what make regression comparison noise-aware
    (:mod:`repro.harness.perfhistory`): the spread of N identical runs is
    the measured noise floor of this host at this moment, so a later
    comparison knows how big a delta is *meaningful*.
    """
    best_wall, best_result = None, None
    walls: List[float] = []
    for _ in range(max(1, rounds)):
        result = simulate(config)
        walls.append(round(result.wall_seconds, 4))
        if best_wall is None or result.wall_seconds < best_wall:
            best_wall, best_result = result.wall_seconds, result
    return best_wall, best_result, walls


def measure_point(workload: str, engine: str, instructions: int,
                  rounds: int = 3, memory: Optional[Dict] = None,
                  label: Optional[str] = None) -> Dict:
    fast_cfg = RunConfig(workload=workload, engine=engine,
                         max_instructions=instructions,
                         memory=MemoryConfig(**memory) if memory else None)
    naive_cfg = dataclasses.replace(
        fast_cfg, core=CoreConfig(enable_cycle_skip=False))
    fast_wall, fast, fast_walls = _best_of(fast_cfg, rounds)
    naive_wall, naive, naive_walls = _best_of(naive_cfg, rounds)
    s = fast.stats
    assert (s.cycles, s.retired) == (naive.stats.cycles, naive.stats.retired), \
        "cycle-skip fast path diverged from the naive loop"
    return {
        "label": label or f"{workload}-{engine}",
        "workload": workload,
        "engine": engine,
        "instructions": instructions,
        "cycles": s.cycles,
        "retired": s.retired,
        "idle_cycles_skipped": s.idle_cycles_skipped,
        "skip_walk_cycles": s.skip_walk_cycles,
        "skip_vetoes": s.skip_vetoes,
        "skip_bulk_advances": s.skip_bulk_advances,
        "wall_seconds_best": round(fast_wall, 4),
        "wall_seconds_best_no_skip": round(naive_wall, 4),
        "wall_seconds_rounds": fast_walls,
        "wall_seconds_rounds_no_skip": naive_walls,
        "instr_per_sec": round(s.retired / fast_wall) if fast_wall else None,
        "cycles_per_sec": round(s.cycles / fast_wall) if fast_wall else None,
        "cycle_skip_speedup": round(naive_wall / fast_wall, 3) if fast_wall else None,
    }


def measure_guard_overhead(rounds: int = 3, workload: str = "astar",
                           instructions: int = 30_000) -> Dict:
    """Wall-clock cost of each ``CoreConfig.guard_level`` on one run.

    The acceptance bar is the *off* level: with the guard compiled out
    (``self.guard is None``) a guarded build must cost ~nothing over the
    seed simulator.  ``commit`` and ``full`` are recorded so their cost
    is a measured fact, not folklore.
    """
    walls: Dict[str, float] = {}
    for level in ("off", "commit", "full"):
        cfg = RunConfig(workload=workload, engine="baseline",
                        max_instructions=instructions,
                        core=CoreConfig(guard_level=level))
        wall, _, _ = _best_of(cfg, rounds)
        walls[level] = wall
    off = walls["off"]
    return {
        "label": f"{workload}-guard-overhead",
        "workload": workload,
        "engine": "baseline",
        "instructions": instructions,
        "wall_seconds_off": round(walls["off"], 4),
        "wall_seconds_commit": round(walls["commit"], 4),
        "wall_seconds_full": round(walls["full"], 4),
        "commit_overhead_pct": round((walls["commit"] / off - 1) * 100, 2)
        if off else None,
        "full_overhead_pct": round((walls["full"] / off - 1) * 100, 2)
        if off else None,
    }


def explain_skip(points: Optional[Sequence[Dict]] = None) -> List[Dict]:
    """Idle-skip self-diagnosis: one run per perf point, counters only.

    For each point (default :data:`PERF_POINTS`) this runs the fast path
    once and reports the quiescence-walk economics — walks attempted,
    engine vetoes, successful bulk advances, and cycles actually skipped.
    A point where ``skip_walk_cycles`` rivals ``idle_cycles_skipped`` is
    paying more for the walks than the skips buy back (the shape of the
    sssp-slow-dram 0.96x regression this diagnosed); healthy points skip
    hundreds of cycles per walk.
    """
    rows: List[Dict] = []
    for point in (points or PERF_POINTS):
        point = dict(point)
        label = point.pop("label", None)
        memory = point.pop("memory", None)
        cfg = RunConfig(workload=point["workload"], engine=point["engine"],
                        max_instructions=point["instructions"],
                        memory=MemoryConfig(**memory) if memory else None)
        s = simulate(cfg).stats
        walks = s.skip_walk_cycles
        rows.append({
            "label": label or f"{point['workload']}-{point['engine']}",
            "cycles": s.cycles,
            "idle_cycles_skipped": s.idle_cycles_skipped,
            "skipped_frac": round(s.idle_cycles_skipped / s.cycles, 3)
            if s.cycles else 0.0,
            "skip_walk_cycles": walks,
            "skip_vetoes": s.skip_vetoes,
            "skip_bulk_advances": s.skip_bulk_advances,
            "cycles_per_walk": round(s.idle_cycles_skipped / walks, 1)
            if walks else None,
        })
    return rows


def _short_src(filename: str) -> str:
    """Trim a profiler filename to its last two path components."""
    parts = filename.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else filename


def profile_hot(points: Optional[Sequence[Dict]] = None, top_n: int = 20,
                storage_modes: Sequence[str] = ("columnar", "legacy")) -> Dict:
    """cProfile hot-function tables for each perf point and storage engine.

    Runs every point once per storage engine (columnar structure-of-arrays
    vs the legacy object graph) under :mod:`cProfile` and keeps the top-N
    functions by exclusive time.  The resulting record — written next to
    ``BENCH_perf.json`` by ``perf --profile-hot`` — is where "what is the
    simulator actually spending its time on" gets answered with data
    instead of folklore.  Wall numbers here carry profiler overhead and
    are not comparable to the ``perf_smoke`` trajectory.
    """
    import cProfile
    import pstats

    profiles: List[Dict] = []
    for point in (points or PERF_POINTS):
        point = dict(point)
        label = point.pop("label", None) \
            or f"{point['workload']}-{point['engine']}"
        memory = point.pop("memory", None)
        for storage in storage_modes:
            cfg = RunConfig(
                workload=point["workload"], engine=point["engine"],
                max_instructions=point["instructions"],
                core=CoreConfig(columnar=(storage == "columnar")),
                memory=MemoryConfig(**memory) if memory else None)
            prof = cProfile.Profile()
            prof.enable()
            result = simulate(cfg)
            prof.disable()
            st = pstats.Stats(prof)
            total = st.total_tt
            ranked = sorted(st.stats.items(), key=lambda kv: kv[1][2],
                            reverse=True)
            hot = [{
                "function": f"{_short_src(fname)}:{lineno}:{func}",
                "calls": nc,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
                "tottime_pct": round(tt / total * 100, 2) if total else 0.0,
            } for (fname, lineno, func), (_cc, nc, tt, ct, _callers)
                in ranked[:top_n]]
            profiles.append({
                "label": label,
                "storage": storage,
                "instructions": point["instructions"],
                "cycles": result.stats.cycles,
                "profiled_wall_seconds": round(total, 4),
                "hot": hot,
            })
    return {
        "schema": 1,
        "generated_unix": int(time.time()),
        "top_n": top_n,
        "profiles": profiles,
    }


# The sampled-vs-full measurement point: a GAP workload long enough that
# clustering has texture, sampled down to under half its instructions.
SAMPLING_POINT: Dict = {
    "workload": "bfs", "engine": "baseline",
    "full_instructions": 60_000, "interval_instructions": 6_000,
    "k": 4, "warmup_instructions": 2_000,
}


def measure_sampling(point: Optional[Dict] = None) -> Dict:
    """Sampled-vs-full wall-clock speedup and IPC error for one workload.

    Extends the perf trajectory with the sampling subsystem's headline
    numbers; deterministic modulo host wall-clock noise.
    """
    from repro.sampling import sampled_vs_full

    point = dict(point or SAMPLING_POINT)
    report = sampled_vs_full(**point)
    sampled = report["sampled"]
    return {
        "label": f"{point['workload']}-{point['engine']}-sampled",
        "workload": point["workload"],
        "engine": point["engine"],
        "full_instructions": report["full_instructions"],
        "interval_instructions": point["interval_instructions"],
        "clusters": point["k"],
        "regions": len(sampled["regions"]),
        "full_ipc": round(report["full_ipc"], 4),
        "sampled_ipc": round(sampled["ipc"], 4),
        "ipc_error_pct": report["ipc_error_pct"],
        "simulated_fraction": round(sampled["simulated_fraction"], 4),
        "full_wall_seconds": round(report["full_wall_seconds"], 4),
        "sampled_wall_seconds": round(sampled["wall_seconds"], 4),
        "wall_speedup": report["wall_speedup"],
    }


def perf_smoke(rounds: int = 3,
               points: Optional[Sequence[Dict]] = None,
               include_sampling: bool = False) -> Dict:
    record = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "rounds": rounds,
        "points": [measure_point(rounds=rounds, **point)
                   for point in (points or PERF_POINTS)],
    }
    if include_sampling:
        record["sampling"] = measure_sampling()
    record["guard"] = measure_guard_overhead(rounds=rounds)
    return record


def write_perf_record(path, record: Dict) -> None:
    atomic_write_json(path, record, indent=1, sort_keys=True)
