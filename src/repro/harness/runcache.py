"""Sharded, concurrency-safe cache of simulation results.

One JSON file per run key under a cache directory, written via
temp-file + ``os.replace`` so concurrent writers (parallel sweeps, two
pytest sessions) can never interleave partial writes — the worst case is
two workers computing the same deterministic entry and the last rename
winning with identical content.  Keys come from
:meth:`RunConfig.cache_key`, which hashes the *complete* configuration
(memory hierarchy, core, engine configs, cycle caps included).

A legacy monolithic ``cache.json`` (pre-sharding) is adopted lazily: on a
shard miss the legacy key for the requested config is looked up and, if
present *and* unambiguous (the legacy key ignored ``memory`` and
``max_cycles``, so only default-valued configs are safe to adopt), the
entry is promoted into a shard file.  The legacy file itself is left
untouched and read-only.
"""

import json
import pathlib
from typing import Dict, Optional

from repro.harness.simulator import RunConfig, SimResult
from repro.utils.shards import atomic_write_json, quarantine_shard

__all__ = ["RunCache", "entry_from_result", "legacy_key"]

# RunConfig defaults the legacy key silently assumed (see legacy_key).
_LEGACY_DEFAULT_MAX_CYCLES = 5_000_000


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return str(obj)


def entry_from_result(result: SimResult) -> Dict:
    """The cached document for one run: the stats the figures need, plus
    the full config for introspection."""
    s = result.stats
    return {
        "cycles": s.cycles,
        "retired": s.retired,
        "ipc": s.ipc,
        "mpki": s.mpki,
        "mispredicts": s.mispredicts,
        "helper_retired": s.helper_retired,
        "engine": _jsonable(s.engine),
        "metrics": _jsonable(s.metrics),
        "epochs": _jsonable(s.epochs),
        "wall_seconds": result.wall_seconds,
        "idle_cycles_skipped": s.idle_cycles_skipped,
        "config": _jsonable(result.config.to_dict()),
    }


def legacy_key(config: RunConfig) -> str:
    """The pre-sharding ``benchmarks/common._key`` derivation (collision
    bug and all), kept only to adopt old ``cache.json`` entries."""
    parts = [config.workload, config.engine, str(config.max_instructions)]
    if config.core is not None:
        c = config.core
        parts.append(f"rob{c.rob_size}_ps{c.pipeline_stages}")
    if config.phelps_config is not None:
        p = config.phelps_config
        parts.append(f"ep{p.epoch_length}_gb{int(p.include_guarded_branches)}"
                     f"_st{int(p.include_stores)}_gs{int(p.include_guarded_stores)}"
                     f"_qd{p.queue_depth}_sc{p.spec_cache_sets}x{p.spec_cache_ways}")
    return "|".join(parts)


class RunCache:
    """Directory of one-file-per-run cached results."""

    def __init__(self, root, legacy_file=None, events=None):
        self.root = pathlib.Path(root)
        self.legacy_file = pathlib.Path(legacy_file) if legacy_file else None
        self._legacy: Optional[Dict] = None  # loaded lazily, once
        self.events = events        # optional EventTrace for quarantines
        self.quarantined = 0

    # ------------------------------------------------------------------
    def path_for(self, config: RunConfig) -> pathlib.Path:
        return self.root / f"{config.cache_key()}.json"

    def get(self, config: RunConfig) -> Optional[Dict]:
        path = self.path_for(config)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # Unreadable shard (killed writer, disk damage): quarantine it
            # to ``*.corrupt`` for post-mortem and recompute as a miss.
            if quarantine_shard(path, self.events, "runcache") is not None:
                self.quarantined += 1
            return None
        return self._adopt_legacy(config)

    def put(self, config: RunConfig, entry: Dict) -> pathlib.Path:
        return atomic_write_json(self.path_for(config), entry,
                                 indent=1, sort_keys=True)

    # ------------------------------------------------------------------
    def _load_legacy(self) -> Dict:
        if self._legacy is None:
            self._legacy = {}
            if self.legacy_file is not None and self.legacy_file.exists():
                try:
                    self._legacy = json.loads(self.legacy_file.read_text())
                except (json.JSONDecodeError, OSError):
                    self._legacy = {}
        return self._legacy

    def _adopt_legacy(self, config: RunConfig) -> Optional[Dict]:
        """One-time per-key migration from the monolithic cache.

        Only configs the legacy key identified *unambiguously* are adopted:
        the old derivation dropped ``memory`` and ``max_cycles``, so any
        non-default value there means the legacy entry may belong to a
        different run (that is exactly the collision this cache fixes).
        """
        if self.legacy_file is None:
            return None
        if config.memory is not None:
            return None
        if config.max_cycles != _LEGACY_DEFAULT_MAX_CYCLES:
            return None
        entry = self._load_legacy().get(legacy_key(config))
        if entry is None:
            return None
        self.put(config, entry)
        return entry
