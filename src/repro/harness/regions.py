"""Weighted-region methodology (the paper's SimPoints substitute).

The paper simulates up to 5 SimPoint regions of 100 M instructions each
and reports the weighted harmonic mean of their IPCs.  Our workloads are
synthetic and short, but the *methodology* is reproduced: a workload can
be evaluated as several (region, weight) pairs, and per-benchmark numbers
combine across regions exactly the way the paper combines SimPoints.

Regions carry a start offset: a region is the instruction window
``[start_instruction, start_instruction + max_instructions)``, simulated
by booting the core from an architectural checkpoint (see
``repro.sampling``).  Region sets are therefore *disjoint* windows — the
pre-offset scheme approximated a late region by rerunning its whole
prefix from instruction 0, which both double-counted the warmup window in
weighted means and paid full wall-clock per region.
"""

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.parallel import poll_interrupt
from repro.harness.simulator import RunConfig, SimResult, simulate


@dataclass(frozen=True)
class Region:
    """One representative region: an instruction window with a weight."""

    workload: str
    max_instructions: int
    weight: float
    label: str = ""
    start_instruction: int = 0
    warmup_instructions: int = 0


class DegenerateRegionError(ValueError):
    """A region produced a non-positive IPC (wedged or empty run)."""


def weighted_harmonic_ipc(results: Sequence[Tuple[SimResult, float]],
                          on_degenerate: str = "raise") -> float:
    """Paper Section VI: weighted harmonic mean of region IPCs.

    A region with IPC <= 0 (a wedged or empty run) has no meaningful
    harmonic contribution.  ``on_degenerate`` selects the policy:
    ``"raise"`` (default) raises :class:`DegenerateRegionError` so bad
    data cannot masquerade as a result; ``"skip"`` warns and combines the
    remaining regions with their weights renormalized.
    """
    if on_degenerate not in ("raise", "skip"):
        raise ValueError(f"on_degenerate must be 'raise' or 'skip', "
                         f"got {on_degenerate!r}")
    usable: List[Tuple[float, float]] = []
    for r, w in results:
        ipc = r.ipc
        if ipc <= 0:
            label = getattr(r.config, "workload", "?")
            if on_degenerate == "raise":
                raise DegenerateRegionError(
                    f"region of {label!r} has IPC {ipc!r} "
                    f"(weight {w}); a degenerate region cannot enter a "
                    f"harmonic mean — pass on_degenerate='skip' to drop it")
            warnings.warn(f"skipping degenerate region of {label!r} "
                          f"(IPC {ipc!r}, weight {w}) in weighted harmonic "
                          f"mean", RuntimeWarning, stacklevel=2)
            continue
        usable.append((ipc, w))
    total_w = sum(w for _, w in usable)
    if total_w <= 0:
        return 0.0
    denom = sum((w / total_w) / ipc for ipc, w in usable)
    return 1.0 / denom if denom else 0.0


def weighted_mpki(results: Sequence[Tuple[SimResult, float]]) -> float:
    """Weighted arithmetic mean of region MPKIs (misses are additive)."""
    total_w = sum(w for _, w in results)
    if total_w <= 0:
        return 0.0
    return sum(r.mpki * w for r, w in results) / total_w


def region_config(region: Region, engine: str,
                  base_config: Optional[RunConfig] = None,
                  checkpoint_dir=None) -> RunConfig:
    """The :class:`RunConfig` simulating one region under ``engine``.

    ``base_config`` supplies every non-region field (core, memory, engine
    configs, cycle caps); region fields override via
    ``dataclasses.replace`` so those survive untouched.
    """
    overrides = dict(
        workload=region.workload,
        engine=engine,
        max_instructions=region.max_instructions,
        start_instruction=region.start_instruction,
        warmup_instructions=region.warmup_instructions,
        checkpoint_dir=checkpoint_dir,
    )
    if base_config is not None:
        return dataclasses.replace(base_config, **overrides)
    return RunConfig(**overrides)


def evaluate_regions(regions: Sequence[Region], engine: str,
                     base_config: Optional[RunConfig] = None,
                     checkpoint_dir=None,
                     on_degenerate: str = "raise") -> Dict[str, float]:
    """Simulate every region under ``engine`` and combine the results."""
    pairs: List[Tuple[SimResult, float]] = []
    for i, region in enumerate(regions):
        # Graceful-interruption poll point: inside an interrupt_guard()
        # (e.g. the sample CLI verb) a SIGINT lands between regions, not
        # mid-region; outside a guard this is a no-op.
        poll_interrupt(done=i, total=len(regions))
        cfg = region_config(region, engine, base_config, checkpoint_dir)
        pairs.append((simulate(cfg), region.weight))
    return {
        "ipc": weighted_harmonic_ipc(pairs, on_degenerate=on_degenerate),
        "mpki": weighted_mpki(pairs),
        "regions": len(pairs),
    }


# Default region sets: disjoint instruction windows per workload.  astar
# mirrors the paper's "top-weighted SimPoint plus a smaller early one":
# the 40 K warmup window and the post-warmup makebound2 window no longer
# overlap (the pre-offset scheme nested 0-40 K inside 0-100 K, counting
# the warmup twice in every weighted mean).
DEFAULT_REGIONS: Dict[str, List[Region]] = {
    "astar": [Region("astar", 60_000, 0.7, "makebound2",
                     start_instruction=40_000, warmup_instructions=2_000),
              Region("astar", 40_000, 0.3, "warmup")],
    "bfs": [Region("bfs", 100_000, 1.0, "frontier")],
    "bc": [Region("bc", 100_000, 1.0, "forward-pass")],
}


def regions_for(workload: str, default_instructions: int = 100_000,
                profile=None, k: int = 4, seed: int = 42,
                warmup_instructions: int = 2_000) -> List[Region]:
    """Region set for a workload.

    With ``profile`` (an :class:`repro.sampling.IntervalProfile`), the set
    is auto-derived: intervals are clustered and each cluster contributes
    its representative window, weighted by instruction share.  Otherwise
    the curated :data:`DEFAULT_REGIONS` entry (or a single whole-program
    region) is returned.
    """
    if profile is not None:
        from repro.sampling.validate import regions_from_profile

        return regions_from_profile(profile, k=k, seed=seed,
                                    warmup_instructions=warmup_instructions)
    return DEFAULT_REGIONS.get(
        workload, [Region(workload, default_instructions, 1.0, "whole")])
