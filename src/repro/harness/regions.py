"""Weighted-region methodology (the paper's SimPoints substitute).

The paper simulates up to 5 SimPoint regions of 100 M instructions each
and reports the weighted harmonic mean of their IPCs.  Our workloads are
synthetic and short, but the *methodology* is reproduced: a workload can
be evaluated as several (region, weight) pairs, and per-benchmark numbers
combine across regions exactly the way the paper combines SimPoints.
"""

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.simulator import RunConfig, SimResult, simulate


@dataclass(frozen=True)
class Region:
    """One representative region: an instruction window with a weight."""

    workload: str
    max_instructions: int
    weight: float
    label: str = ""


def weighted_harmonic_ipc(results: Sequence[Tuple[SimResult, float]]) -> float:
    """Paper Section VI: weighted harmonic mean of region IPCs."""
    total_w = sum(w for _, w in results)
    if total_w <= 0:
        return 0.0
    denom = 0.0
    for r, w in results:
        ipc = r.ipc
        if ipc <= 0:
            return 0.0
        denom += (w / total_w) / ipc
    return 1.0 / denom if denom else 0.0


def weighted_mpki(results: Sequence[Tuple[SimResult, float]]) -> float:
    """Weighted arithmetic mean of region MPKIs (misses are additive)."""
    total_w = sum(w for _, w in results)
    if total_w <= 0:
        return 0.0
    return sum(r.mpki * w for r, w in results) / total_w


def evaluate_regions(regions: Sequence[Region], engine: str,
                     base_config: Optional[RunConfig] = None) -> Dict[str, float]:
    """Simulate every region under ``engine`` and combine the results."""
    pairs: List[Tuple[SimResult, float]] = []
    for region in regions:
        if base_config is not None:
            cfg = dataclasses.replace(base_config, workload=region.workload,
                                      engine=engine,
                                      max_instructions=region.max_instructions)
        else:
            cfg = RunConfig(workload=region.workload, engine=engine,
                            max_instructions=region.max_instructions)
        pairs.append((simulate(cfg), region.weight))
    return {
        "ipc": weighted_harmonic_ipc(pairs),
        "mpki": weighted_mpki(pairs),
        "regions": len(pairs),
    }


# Default region sets: one heavy region per workload, mirroring the
# "top-weighted SimPoint" the paper leans on, plus a smaller second region
# for the benchmarks whose behaviour shifts over time.
DEFAULT_REGIONS: Dict[str, List[Region]] = {
    "astar": [Region("astar", 100_000, 0.7, "makebound2"),
              Region("astar", 40_000, 0.3, "warmup")],
    "bfs": [Region("bfs", 100_000, 1.0, "frontier")],
    "bc": [Region("bc", 100_000, 1.0, "forward-pass")],
}


def regions_for(workload: str, default_instructions: int = 100_000) -> List[Region]:
    return DEFAULT_REGIONS.get(
        workload, [Region(workload, default_instructions, 1.0, "whole")])
