"""Top-level simulation entry point.

``simulate(RunConfig(...))`` wires a workload, a core configuration, and a
pre-execution engine together, runs the simulation, and returns a
:class:`SimResult`.  The ``engine`` field selects the paper's compared
configurations:

* ``baseline``       — the Table III core alone;
* ``perfbp``         — perfect (oracle) branch prediction;
* ``phelps``         — full Phelps (flags on ``phelps_config`` select the
                       Fig. 11 ablations and Fig. 12b's no-stores variant);
* ``br`` / ``br12``  — Branch Runahead with speculative triggering, on the
                       baseline core or the widened BR-12w core;
* ``br_nonspec``     — Branch Runahead with non-speculative triggering;
* ``partition_only`` — the main thread running alone but with half the
                       frontend/resources (Fig. 13c).
"""

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core import Core, CoreConfig, SimStats
from repro.memory import MemoryConfig
from repro.obs import Observability, ObserveConfig
from repro.phelps import PhelpsConfig, PhelpsEngine
from repro.workloads import build_workload

ENGINES = ("baseline", "perfbp", "phelps", "br", "br12", "br_nonspec", "partition_only")


@dataclass
class RunConfig:
    workload: str
    engine: str = "baseline"
    max_instructions: int = 120_000
    max_cycles: int = 5_000_000
    core: Optional[CoreConfig] = None
    memory: Optional[MemoryConfig] = None
    phelps_config: Optional[PhelpsConfig] = None
    # Observability: ``observe=True`` enables the metric registry, epoch
    # timeseries, and event trace for this run (``repro.obs``); the
    # optional ``observe_config`` tunes capacities / profiling / pipeline
    # tracing and implies ``observe=True``.
    observe: bool = False
    observe_config: Optional[ObserveConfig] = None
    # Sampled simulation (``repro.sampling``): fast-forward the functional
    # executor ``start_instruction`` instructions, boot the core from the
    # resulting architectural checkpoint, and only then simulate
    # ``max_instructions`` cycle-accurately.  ``warmup_instructions`` of
    # pre-region branch/memory footprint warm the predictor and caches at
    # boot.  ``checkpoint_dir`` names a shard store so repeated runs (and
    # other engines) reuse checkpoints instead of re-fast-forwarding.
    start_instruction: int = 0
    warmup_instructions: int = 0
    checkpoint_dir: Optional[str] = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.observe_config is not None:
            self.observe = True
        if self.start_instruction < 0:
            raise ValueError("start_instruction must be >= 0")
        if self.warmup_instructions > self.start_instruction:
            raise ValueError("warmup_instructions cannot exceed "
                             "start_instruction (warmup replays the tail of "
                             "the skipped prefix)")

    def to_dict(self) -> dict:
        """The full nested-dataclass serialization (JSON-ready)."""
        return dataclasses.asdict(self)

    def cache_key(self) -> str:
        """Filename-safe key derived from the *complete* configuration.

        Every field participates — including ``memory``, ``core``, engine
        configs, and ``max_cycles`` — so two runs that could produce
        different stats never share a cache entry (the legacy benchmark
        ``_key()`` ignored memory/cycle-cap fields and collided).  The one
        exception is ``checkpoint_dir``: it only says *where* checkpoints
        are stored, never changes their (deterministic) content, and two
        runs differing only in storage location must share an entry.
        """
        doc = self.to_dict()
        doc.pop("checkpoint_dir", None)
        payload = json.dumps(doc, sort_keys=True, default=str)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"{self.workload}-{self.engine}-{digest}"


@dataclass
class SimResult:
    config: RunConfig
    stats: SimStats
    wall_seconds: float
    # The run's observability hub (None when observe was off): registry,
    # sampler, events, profiler, and the chrome_trace() exporter.
    obs: Optional[Observability] = None
    # Parallel-runner provenance (``simulate_many``): how many attempts
    # this run took and the error of the last *failed* attempt (None when
    # the first attempt succeeded).  A serial ``simulate`` is attempt 1.
    attempts: int = 1
    last_error: Optional[str] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def mpki(self) -> float:
        return self.stats.mpki

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def _widened_core(core_cfg: CoreConfig) -> CoreConfig:
    """The BR-12w configuration: 4 extra lanes and enough extra frontend
    width/resources that the main thread keeps baseline allocations after
    the 50/50 split (paper Section VII)."""
    return dataclasses.replace(
        core_cfg,
        fetch_width=core_cfg.fetch_width * 12 // 8,
        dispatch_width=core_cfg.dispatch_width * 12 // 8,
        retire_width=core_cfg.retire_width * 12 // 8,
        rob_size=core_cfg.rob_size * 2,
        prf_size=core_cfg.prf_size * 3 // 2,
        lq_size=core_cfg.lq_size * 3 // 2 // 8 * 8,
        sq_size=core_cfg.sq_size * 3 // 2 // 8 * 8,
        lanes_simple=core_cfg.lanes_simple + 2,
        lanes_mem=core_cfg.lanes_mem + 1,
        lanes_complex=core_cfg.lanes_complex + 1,
    )


def _build_obs(config: RunConfig) -> Optional[Observability]:
    if not config.observe:
        return None
    ocfg = config.observe_config or ObserveConfig()
    if ocfg.epoch_instructions is None:
        # Align sampling epochs with the engine's training epochs so the
        # timeseries lines up with construct/deploy events.
        if config.engine in ("phelps", "br", "br12", "br_nonspec"):
            phelps_cfg = config.phelps_config or PhelpsConfig()
            ocfg = dataclasses.replace(ocfg,
                                       epoch_instructions=phelps_cfg.epoch_length)
    return Observability(ocfg)


def _boot_from_checkpoint(core: Core, config: RunConfig, program) -> None:
    """Fast-forward (or load) the region-start checkpoint and boot the core.

    Imported lazily: ``repro.sampling`` depends on the harness for its
    validation half, so the dependency must stay runtime-only here.
    """
    from repro.sampling.checkpoint import CheckpointStore, capture_checkpoint
    from repro.sampling.warmup import apply_warmup

    store = (CheckpointStore(config.checkpoint_dir)
             if config.checkpoint_dir else None)
    ckpt = capture_checkpoint(config.workload, config.start_instruction,
                              config.warmup_instructions, store=store,
                              program=program)
    core.boot_state(ckpt.regs, ckpt.mem, ckpt.pc)
    if config.warmup_instructions:
        apply_warmup(core, ckpt.warmup)


def simulate(config: RunConfig) -> SimResult:
    program = build_workload(config.workload)
    core_cfg = config.core or CoreConfig()
    engine = None

    if config.engine == "perfbp":
        core_cfg = dataclasses.replace(core_cfg, perfect_branch_prediction=True)
    elif config.engine == "phelps":
        engine = PhelpsEngine(config.phelps_config or PhelpsConfig())
    elif config.engine in ("br", "br12", "br_nonspec"):
        from repro.runahead import BranchRunaheadEngine, BRConfig

        br_cfg = BRConfig(speculative_triggering=config.engine != "br_nonspec")
        engine = BranchRunaheadEngine(br_cfg)
        if config.engine == "br12":
            core_cfg = _widened_core(core_cfg)

    obs = _build_obs(config)
    core = Core(program, config=core_cfg, mem_config=config.memory,
                engine=engine, obs=obs)
    if config.engine == "partition_only":
        core.set_partition_mode("MT_ITO")
    if config.start_instruction > 0:
        _boot_from_checkpoint(core, config, program)

    start = time.time()
    stats = core.run(max_instructions=config.max_instructions,
                     max_cycles=config.max_cycles)
    return SimResult(config=config, stats=stats,
                     wall_seconds=time.time() - start, obs=obs)
