"""Top-level simulation entry point.

``simulate(RunConfig(...))`` wires a workload, a core configuration, and a
pre-execution engine together, runs the simulation, and returns a
:class:`SimResult`.  The ``engine`` field selects the paper's compared
configurations:

* ``baseline``       — the Table III core alone;
* ``perfbp``         — perfect (oracle) branch prediction;
* ``phelps``         — full Phelps (flags on ``phelps_config`` select the
                       Fig. 11 ablations and Fig. 12b's no-stores variant);
* ``br`` / ``br12``  — Branch Runahead with speculative triggering, on the
                       baseline core or the widened BR-12w core;
* ``br_nonspec``     — Branch Runahead with non-speculative triggering;
* ``partition_only`` — the main thread running alone but with half the
                       frontend/resources (Fig. 13c).
"""

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core import Core, CoreConfig, SimStats
from repro.guard.errors import DivergenceError
from repro.memory import MemoryConfig
from repro.obs import Observability, ObserveConfig
from repro.phelps import PhelpsConfig, PhelpsEngine
from repro.workloads import build_workload

ENGINES = ("baseline", "perfbp", "phelps", "br", "br12", "br_nonspec", "partition_only")


@dataclass
class RunConfig:
    workload: str
    engine: str = "baseline"
    max_instructions: int = 120_000
    max_cycles: int = 5_000_000
    core: Optional[CoreConfig] = None
    memory: Optional[MemoryConfig] = None
    phelps_config: Optional[PhelpsConfig] = None
    # Observability: ``observe=True`` enables the metric registry, epoch
    # timeseries, and event trace for this run (``repro.obs``); the
    # optional ``observe_config`` tunes capacities / profiling / pipeline
    # tracing and implies ``observe=True``.
    observe: bool = False
    observe_config: Optional[ObserveConfig] = None
    # Sampled simulation (``repro.sampling``): fast-forward the functional
    # executor ``start_instruction`` instructions, boot the core from the
    # resulting architectural checkpoint, and only then simulate
    # ``max_instructions`` cycle-accurately.  ``warmup_instructions`` of
    # pre-region branch/memory footprint warm the predictor and caches at
    # boot.  ``checkpoint_dir`` names a shard store so repeated runs (and
    # other engines) reuse checkpoints instead of re-fast-forwarding.
    start_instruction: int = 0
    warmup_instructions: int = 0
    checkpoint_dir: Optional[str] = None
    # Mid-run snapshot/resume (``repro.core.snapshot``): with
    # ``snapshot_interval`` > 0 the core drains and snapshots every that
    # many retired instructions; ``snapshot_dir`` names a store so a
    # killed run resumes from its last snapshot instead of cycle 0.  The
    # interval is timing-visible (each drain is a full squash), so it
    # participates in ``cache_key``; the directory does not.
    snapshot_interval: int = 0
    snapshot_dir: Optional[str] = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.observe_config is not None:
            self.observe = True
        if self.start_instruction < 0:
            raise ValueError("start_instruction must be >= 0")
        if self.warmup_instructions > self.start_instruction:
            raise ValueError("warmup_instructions cannot exceed "
                             "start_instruction (warmup replays the tail of "
                             "the skipped prefix)")
        if self.snapshot_interval < 0:
            raise ValueError("snapshot_interval must be >= 0")
        if self.snapshot_interval and self.start_instruction:
            raise ValueError("snapshot_interval cannot be combined with "
                             "start_instruction (sampled regions already "
                             "resume from architectural checkpoints)")

    def to_dict(self) -> dict:
        """The full nested-dataclass serialization (JSON-ready)."""
        return dataclasses.asdict(self)

    def cache_key(self) -> str:
        """Filename-safe key derived from the *complete* configuration.

        Every field participates — including ``memory``, ``core``, engine
        configs, and ``max_cycles`` — so two runs that could produce
        different stats never share a cache entry (the legacy benchmark
        ``_key()`` ignored memory/cycle-cap fields and collided).  The one
        exception is ``checkpoint_dir``: it only says *where* checkpoints
        are stored, never changes their (deterministic) content, and two
        runs differing only in storage location must share an entry.
        ``snapshot_dir`` is excluded for the same reason; the snapshot
        *interval* stays in the key when non-zero (each snapshot drain is
        a timing-visible event) and is dropped when zero so keys minted
        before the field existed remain valid.
        """
        doc = self.to_dict()
        doc.pop("checkpoint_dir", None)
        doc.pop("snapshot_dir", None)
        if not doc.get("snapshot_interval"):
            doc.pop("snapshot_interval", None)
        payload = json.dumps(doc, sort_keys=True, default=str)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"{self.workload}-{self.engine}-{digest}"


@dataclass
class SimResult:
    config: RunConfig
    stats: SimStats
    wall_seconds: float
    # The run's observability hub (None when observe was off): registry,
    # sampler, events, profiler, and the chrome_trace() exporter.
    obs: Optional[Observability] = None
    # Parallel-runner provenance (``simulate_many``): how many attempts
    # this run took and the error of the last *failed* attempt (None when
    # the first attempt succeeded).  A serial ``simulate`` is attempt 1.
    attempts: int = 1
    last_error: Optional[str] = None
    # Snapshot/resume provenance: the retired-instruction count of the
    # snapshot this run resumed from (None when it started at cycle 0).
    resumed_at: Optional[int] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def mpki(self) -> float:
        return self.stats.mpki

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def _widened_core(core_cfg: CoreConfig) -> CoreConfig:
    """The BR-12w configuration: 4 extra lanes and enough extra frontend
    width/resources that the main thread keeps baseline allocations after
    the 50/50 split (paper Section VII)."""
    return dataclasses.replace(
        core_cfg,
        fetch_width=core_cfg.fetch_width * 12 // 8,
        dispatch_width=core_cfg.dispatch_width * 12 // 8,
        retire_width=core_cfg.retire_width * 12 // 8,
        rob_size=core_cfg.rob_size * 2,
        prf_size=core_cfg.prf_size * 3 // 2,
        lq_size=core_cfg.lq_size * 3 // 2 // 8 * 8,
        sq_size=core_cfg.sq_size * 3 // 2 // 8 * 8,
        lanes_simple=core_cfg.lanes_simple + 2,
        lanes_mem=core_cfg.lanes_mem + 1,
        lanes_complex=core_cfg.lanes_complex + 1,
    )


def _build_obs(config: RunConfig) -> Optional[Observability]:
    if not config.observe:
        return None
    ocfg = config.observe_config or ObserveConfig()
    if ocfg.epoch_instructions is None:
        # Align sampling epochs with the engine's training epochs so the
        # timeseries lines up with construct/deploy events.
        if config.engine in ("phelps", "br", "br12", "br_nonspec"):
            phelps_cfg = config.phelps_config or PhelpsConfig()
            ocfg = dataclasses.replace(ocfg,
                                       epoch_instructions=phelps_cfg.epoch_length)
    return Observability(ocfg)


def _boot_from_checkpoint(core: Core, config: RunConfig, program) -> None:
    """Fast-forward (or load) the region-start checkpoint and boot the core.

    Imported lazily: ``repro.sampling`` depends on the harness for its
    validation half, so the dependency must stay runtime-only here.
    """
    from repro.sampling.checkpoint import CheckpointStore, capture_checkpoint
    from repro.sampling.warmup import apply_warmup

    store = (CheckpointStore(config.checkpoint_dir)
             if config.checkpoint_dir else None)
    ckpt = capture_checkpoint(config.workload, config.start_instruction,
                              config.warmup_instructions, store=store,
                              program=program)
    core.boot_state(ckpt.regs, ckpt.mem, ckpt.pc)
    if config.warmup_instructions:
        apply_warmup(core, ckpt.warmup)


def _build_core(config: RunConfig):
    """Construct the (core, obs) pair for one run, engine selected and
    partition mode applied, but before any checkpoint/snapshot boot."""
    program = build_workload(config.workload)
    core_cfg = config.core or CoreConfig()
    engine = None

    if config.engine == "perfbp":
        core_cfg = dataclasses.replace(core_cfg, perfect_branch_prediction=True)
    elif config.engine == "phelps":
        engine = PhelpsEngine(config.phelps_config or PhelpsConfig())
    elif config.engine in ("br", "br12", "br_nonspec"):
        from repro.runahead import BranchRunaheadEngine, BRConfig

        br_cfg = BRConfig(speculative_triggering=config.engine != "br_nonspec")
        engine = BranchRunaheadEngine(br_cfg)
        if config.engine == "br12":
            core_cfg = _widened_core(core_cfg)

    obs = _build_obs(config)
    core = Core(program, config=core_cfg, mem_config=config.memory,
                engine=engine, obs=obs)
    if config.engine == "partition_only":
        core.set_partition_mode("MT_ITO")
    return core, obs, program


def _replay_divergence(config: RunConfig, blob: bytes) -> dict:
    """Rewind-and-replay: re-run from the preceding snapshot with full
    pipeline tracing and return a focused diagnostic bundle.

    The replay drives ``core.run`` directly (never :func:`simulate`), so a
    divergence inside the replay cannot recurse into another replay.
    Observability is passive, so turning the tracer on does not perturb
    timing — the divergence reproduces at the same cycle.
    """
    from repro.core.snapshot import SnapshotError, load_state
    from repro.guard.errors import recent_events

    try:
        state = load_state(blob)
    except SnapshotError as exc:
        return {"reproduced": False, "error": str(exc)}
    ocfg = config.observe_config or ObserveConfig()
    replay_cfg = dataclasses.replace(
        config, observe=True,
        observe_config=dataclasses.replace(ocfg, pipeline_trace=True))
    core, obs, _ = _build_core(replay_cfg)
    try:
        core.restore(state)
    except SnapshotError as exc:
        return {"reproduced": False, "error": str(exc)}
    bundle = {
        "reproduced": False,
        "snapshot_cycle": state["cycle"],
        "snapshot_retired": state["thread"]["retired"],
    }
    try:
        core.run(max_instructions=config.max_instructions,
                 max_cycles=config.max_cycles,
                 snapshot_interval=config.snapshot_interval)
    except DivergenceError as exc:
        r = exc.report
        bundle.update({
            "reproduced": True,
            "cycle": r.cycle,
            "kind": r.kind,
            "expected": r.expected,
            "actual": r.actual,
            "uop": r.uop,
            "pc": f"{r.pc:#x}",
            "events": recent_events(core, limit=48),
            "trace": (obs.tracer.render(last=40)
                      if obs is not None and obs.tracer is not None else None),
        })
    return bundle


def simulate(config: RunConfig,
             on_heartbeat=None,
             heartbeat_interval: float = 1.0) -> SimResult:
    """Run one config; optionally stream progress heartbeats.

    ``on_heartbeat(payload)`` fires at most every ``heartbeat_interval``
    seconds with a :class:`~repro.obs.live.HeartbeatTicker` payload
    (retired, cycles, cycles/sec, phase, guard).  Heartbeats are
    out-of-band telemetry: they read core state but never touch it, so a
    heartbeat-enabled run is bit-identical to a silent one and nothing
    heartbeat-related participates in ``cache_key()``.
    """
    core, obs, program = _build_core(config)
    if config.start_instruction > 0:
        _boot_from_checkpoint(core, config, program)

    resumed_at: Optional[int] = None
    last_blob: Optional[bytes] = None
    on_snapshot = None
    if config.snapshot_interval > 0 and config.snapshot_dir:
        from repro.core.snapshot import SnapshotError, SnapshotStore, load_state

        store = SnapshotStore(config.snapshot_dir)
        key = config.cache_key()
        blob = store.get(key)
        if blob is not None:
            try:
                state = load_state(blob)
                core.restore(state)
            except SnapshotError:
                # Unreadable or mismatched blob: keep it for post-mortem,
                # start the run from cycle 0.
                store.quarantine(key)
            else:
                resumed_at = state["thread"]["retired"]
                last_blob = blob

        def on_snapshot(b, _store=store, _key=key):
            nonlocal last_blob
            last_blob = b
            _store.put(_key, b)
    elif config.snapshot_interval > 0:
        # No store: keep the latest blob in memory so a guard divergence
        # can still rewind-and-replay.
        def on_snapshot(b):
            nonlocal last_blob
            last_blob = b

    hb_hook = None
    if on_heartbeat is not None:
        from repro.obs.live import HeartbeatTicker

        ticker = HeartbeatTicker(config.max_instructions)

        def hb_hook(c, _ticker=ticker, _emit=on_heartbeat):
            _emit(_ticker.payload(c))

    start = time.time()
    try:
        stats = core.run(max_instructions=config.max_instructions,
                         max_cycles=config.max_cycles,
                         snapshot_interval=config.snapshot_interval,
                         on_snapshot=on_snapshot,
                         on_heartbeat=hb_hook,
                         heartbeat_interval=heartbeat_interval)
    except DivergenceError as exc:
        if last_blob is not None and exc.report.replay is None:
            exc.report.replay = _replay_divergence(config, last_blob)
        raise
    return SimResult(config=config, stats=stats,
                     wall_seconds=time.time() - start, obs=obs,
                     resumed_at=resumed_at)
