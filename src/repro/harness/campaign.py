"""Journaled, resumable sweep campaigns.

A campaign is a set of :class:`RunConfig` points (a sweep cross product)
with a write-ahead journal: one atomic JSON shard per point under the
campaign directory, keyed by ``RunConfig.cache_key()`` and carrying a
status machine::

    pending -> running -> done
                      \\-> failed

plus attempts provenance.  The journal is written *ahead* of the work
(every point starts as a ``pending`` shard; a point flips to ``running``
the moment its worker spawns and to ``done``/``failed`` the moment its
result lands), so the journal is crash-consistent at every instant: after
a SIGKILL, ``done`` points hold their full result entry, ``running``
points are exactly the in-flight casualties to requeue, and nothing is
ever half-written (shards use the :mod:`repro.utils.shards` atomic-write
discipline; unreadable shards are quarantined to ``*.corrupt`` and
requeued — only that point recomputes).

``python -m repro sweep --resume <dir>`` rebuilds the point set from the
manifest (``campaign.json``), skips ``done`` points, requeues
``running``/``failed`` ones, and — because every simulation is
deterministic — produces results bit-identical to an uninterrupted
sweep.  :func:`entry_fingerprint` is the canonical "bit-identical"
comparison: a result entry minus host-dependent wall-clock.
"""

import json
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.parallel import (Progress, SweepInterrupted,
                                    simulate_many)
from repro.harness.runcache import entry_from_result
from repro.harness.simulator import RunConfig
from repro.obs.live import LIVE_NAME, LiveStatus
from repro.utils.shards import atomic_write_json, quarantine_shard

__all__ = ["CampaignJournal", "entry_fingerprint", "run_campaign"]

_SCHEMA = 1
_MANIFEST = "campaign.json"

# Fields of a cached result entry that legitimately differ between two
# runs of the same deterministic point.
_VOLATILE_ENTRY_FIELDS = ("wall_seconds",)


def entry_fingerprint(entry: Dict) -> str:
    """Canonical serialization of a result entry for bit-identity checks.

    Drops host-dependent wall-clock; everything else — cycles, IPC, MPKI,
    engine counters, metrics, epoch timeseries — must match exactly
    between an uninterrupted sweep and a killed-and-resumed one.
    """
    doc = {k: v for k, v in entry.items() if k not in _VOLATILE_ENTRY_FIELDS}
    return json.dumps(doc, sort_keys=True, default=str)


class CampaignJournal:
    """Write-ahead journal for one campaign directory.

    Layout::

        <root>/campaign.json      manifest: schema, spec, point list,
                                  interruption history
        <root>/<cache_key>.json   one status shard per point
    """

    def __init__(self, root, events=None):
        self.root = pathlib.Path(root)
        self.events = events        # optional EventTrace for quarantines
        self.quarantined = 0

    # ------------------------------------------------------------ paths
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / _MANIFEST

    def point_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # --------------------------------------------------------- manifest
    def load_manifest(self) -> Optional[Dict]:
        try:
            doc = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            if quarantine_shard(self.manifest_path, self.events,
                                "campaign-manifest") is not None:
                self.quarantined += 1
            return None
        if doc.get("schema") != _SCHEMA:
            return None
        return doc

    def write_manifest(self, doc: Dict) -> None:
        atomic_write_json(self.manifest_path, doc, indent=1, sort_keys=True)

    def note_interrupted(self, done: int, total: int) -> None:
        """Append an interruption record to the manifest history."""
        doc = self.load_manifest()
        if doc is None:
            return
        doc.setdefault("interruptions", []).append(
            {"done": done, "total": total, "unix": int(time.time())})
        self.write_manifest(doc)

    # ----------------------------------------------------------- shards
    def read_point(self, key: str) -> Optional[Dict]:
        """The point's shard, or None (missing / quarantined = recompute).

        A shard that exists but cannot be parsed — the signature of a
        writer killed mid-write before the atomic rename, or of disk
        damage — is quarantined to ``*.corrupt`` and the point requeues;
        every other point's state is untouched.
        """
        path = self.point_path(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            if quarantine_shard(path, self.events, "campaign") is not None:
                self.quarantined += 1
            return None
        if not isinstance(doc, dict) or doc.get("key") != key:
            if quarantine_shard(path, self.events, "campaign") is not None:
                self.quarantined += 1
            return None
        return doc

    def mark(self, key: str, status: str, **fields) -> Dict:
        """Transition a point's shard to ``status``, merging ``fields``.

        The previous shard's ``attempts`` count survives unless
        overridden; each write is one atomic rename.
        """
        doc = self.read_point(key) or {"key": key, "attempts": 0}
        doc["status"] = status
        doc.update(fields)
        atomic_write_json(self.point_path(key), doc, indent=1, sort_keys=True)
        return doc

    def write_point(self, key: str, doc: Dict) -> Dict:
        """Replace a point's shard wholesale (one atomic rename).

        Unlike :meth:`mark` nothing from the on-disk shard is merged
        back in — the lease layer (:mod:`repro.service.lease`) uses this
        to *drop* stale lease fields when a point changes hands, which a
        merge could silently resurrect.
        """
        doc = dict(doc)
        doc["key"] = key
        atomic_write_json(self.point_path(key), doc, indent=1, sort_keys=True)
        return doc

    def note_attempt(self, key: str) -> None:
        """A worker just spawned for this point: running, attempts += 1."""
        doc = self.read_point(key) or {"key": key, "attempts": 0}
        self.mark(key, "running", attempts=int(doc.get("attempts", 0)) + 1)

    # ------------------------------------------------------ preparation
    def prepare(self, configs: Sequence[RunConfig],
                spec: Optional[Dict] = None) -> None:
        """Write-ahead setup: manifest + a ``pending`` shard per point.

        Idempotent, and the heart of resume: points already ``done`` are
        left alone; points found ``running`` (in flight at a crash) or
        ``failed`` are requeued to ``pending`` with a ``requeued`` marker
        so their attempts provenance records the history.
        """
        manifest = self.load_manifest()
        points = [{"key": c.cache_key(), "workload": c.workload,
                   "engine": c.engine} for c in configs]
        if manifest is None:
            manifest = {"schema": _SCHEMA, "spec": spec or {},
                        "points": points, "interruptions": []}
            self.write_manifest(manifest)
        else:
            known = {p["key"] for p in manifest.get("points", ())}
            missing = [p for p in points if p["key"] not in known]
            if missing:
                manifest["points"] = list(manifest.get("points", ())) + missing
                self.write_manifest(manifest)
        for point in points:
            key = point["key"]
            doc = self.read_point(key)
            if doc is None:
                self.mark(key, "pending")
            elif doc.get("status") == "done" and doc.get("entry") is not None:
                continue
            elif doc.get("status") in ("running", "failed"):
                # Strip any lease and bump the generation: a resume must
                # fence out a worker that still thinks it owns the point
                # (its renewals raise LeaseLost against the new shard).
                requeued = {k: v for k, v in doc.items()
                            if k not in ("worker", "lease_expires_unix",
                                         "lease_renewed_unix", "hb",
                                         "error")}
                requeued["status"] = "pending"
                requeued["requeued"] = True
                requeued["generation"] = int(doc.get("generation", 0)) + 1
                self.write_point(key, requeued)

    def statuses(self) -> Dict[str, str]:
        """``key -> status`` for every point named in the manifest."""
        manifest = self.load_manifest() or {}
        out: Dict[str, str] = {}
        for point in manifest.get("points", ()):
            doc = self.read_point(point["key"])
            out[point["key"]] = doc.get("status", "pending") if doc else "pending"
        return out


def run_campaign(configs: Sequence[RunConfig],
                 journal: Optional[CampaignJournal] = None,
                 cache=None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 progress: Optional[Callable[[Progress], None]] = None,
                 events=None,
                 spec: Optional[Dict] = None,
                 live: Optional[LiveStatus] = None,
                 heartbeat_interval: float = 1.0) -> Dict[str, Dict]:
    """Run a point set with journal + cache flushing; returns key -> entry.

    The one sweep path for fresh runs, cache-warm reruns, and resumes:

    * journal ``done`` points and run-cache hits are *skipped* (their
      stored entries are returned as-is — that is what makes a resumed
      sweep bit-identical to an uninterrupted one);
    * every completed run is flushed to the journal shard and the cache
      the moment it finishes (``simulate_many``'s ``on_result``), never
      batched at the end;
    * on SIGINT/SIGTERM the :class:`SweepInterrupted` is re-raised with
      campaign-level counts after an obs ``campaign_interrupted`` event
      and a manifest interruption record.

    ``journal``/``cache`` are both optional — with neither, this is a
    plain ``simulate_many`` returning entries keyed by config.

    Live telemetry: a journaled campaign automatically maintains
    ``live.json`` beside the journal — worker heartbeats (every
    ``heartbeat_interval`` seconds) and status transitions fold into one
    atomically-published document that ``repro watch`` / ``repro serve``
    tail.  Pass ``live`` to use a pre-built :class:`~repro.obs.live.
    LiveStatus` (e.g. at a custom path); telemetry is skipped entirely
    when there is no journal and no explicit ``live``.
    """
    configs = list(configs)
    keys = [c.cache_key() for c in configs]
    total = len(configs)
    entries: Dict[str, Dict] = {}

    if live is None and journal is not None:
        live = LiveStatus(journal.root / LIVE_NAME,
                          interval=heartbeat_interval)
    if live is not None:
        for config, key in zip(configs, keys):
            live.point(key, config.workload, config.engine)

    if journal is not None:
        journal.prepare(configs, spec=spec)
        for key in keys:
            doc = journal.read_point(key)
            if doc and doc.get("status") == "done" and doc.get("entry") is not None:
                entries[key] = doc["entry"]
                if live is not None:
                    live.mark(key, "done",
                              wall_seconds=doc["entry"].get("wall_seconds"))

    to_run: List[int] = []
    for i, (config, key) in enumerate(zip(configs, keys)):
        if key in entries:
            continue
        if cache is not None:
            hit = cache.get(config)
            if hit is not None:
                entries[key] = hit
                if journal is not None:
                    journal.mark(key, "done", entry=hit, source="cache")
                if live is not None:
                    live.mark(key, "done",
                              wall_seconds=hit.get("wall_seconds"))
                continue
        to_run.append(i)

    if live is not None:
        live.write(force=True)
    if not to_run:
        return entries

    run_configs = [configs[i] for i in to_run]
    run_keys = [keys[i] for i in to_run]

    def _progress(p: Progress) -> None:
        key = run_keys[p.index]
        if journal is not None:
            if p.kind in ("start", "retry"):
                journal.note_attempt(key)
            elif p.kind == "failed":
                journal.mark(key, "failed", error=p.error)
        if live is not None:
            if p.kind in ("start", "retry"):
                live.mark(key, "running")
            elif p.kind == "failed":
                live.mark(key, "failed", error=p.error,
                          wall_seconds=p.wall_seconds)
            elif p.kind == "done":
                live.mark(key, "done", wall_seconds=p.wall_seconds)
            live.write()
        if progress is not None:
            progress(p)

    def _on_result(index: int, result) -> None:
        key = run_keys[index]
        entry = entry_from_result(result)
        entries[key] = entry
        if cache is not None:
            cache.put(run_configs[index], entry)
        if journal is not None:
            journal.mark(key, "done", entry=entry,
                         attempts_taken=result.attempts,
                         last_error=result.last_error)

    heartbeat = None
    if live is not None:
        def heartbeat(index: int, payload: Dict) -> None:
            live.beat(run_keys[index], payload)
            live.write()

    try:
        simulate_many(run_configs, jobs=jobs, timeout=timeout,
                      retries=retries, progress=_progress,
                      on_result=_on_result, heartbeat=heartbeat,
                      heartbeat_interval=heartbeat_interval)
    except SweepInterrupted:
        done = len(entries)
        if events is not None:
            events.campaign_interrupted(done, total)
        if journal is not None:
            journal.note_interrupted(done, total)
        if live is not None:
            live.write(force=True)
        raise SweepInterrupted(done, total) from None
    if live is not None:
        live.write(force=True)
    return entries
