"""Experiment sweeps used by the figure/table benchmarks."""

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.harness.simulator import RunConfig, SimResult, simulate


def compare_engines(workload: str, engines: Iterable[str],
                    max_instructions: int = 120_000,
                    base_config: Optional[RunConfig] = None) -> Dict[str, SimResult]:
    """Run one workload under several engines with identical parameters."""
    results: Dict[str, SimResult] = {}
    for engine in engines:
        if base_config is not None:
            cfg = dataclasses.replace(base_config, workload=workload, engine=engine)
        else:
            cfg = RunConfig(workload=workload, engine=engine,
                            max_instructions=max_instructions)
        results[engine] = simulate(cfg)
    return results


def speedup(result: SimResult, baseline: SimResult) -> float:
    """Cycles ratio at equal retired-instruction counts.

    When one run retires slightly fewer instructions (max_cycles guard),
    normalize by instructions to keep the comparison fair.
    """
    base_rate = baseline.stats.retired / max(baseline.stats.cycles, 1)
    this_rate = result.stats.retired / max(result.stats.cycles, 1)
    return this_rate / base_rate if base_rate else 0.0


def mpki_reduction(result: SimResult, baseline: SimResult) -> float:
    """Fractional MPKI reduction vs the baseline (Fig. 13a)."""
    if baseline.mpki <= 0:
        return 0.0
    return 1.0 - result.mpki / baseline.mpki


def sweep(workloads: Iterable[str], engines: Iterable[str],
          max_instructions: int = 120_000) -> Dict[str, Dict[str, SimResult]]:
    """Full cross product used by Fig. 12a-style experiments."""
    return {
        w: compare_engines(w, engines, max_instructions=max_instructions)
        for w in workloads
    }
