"""Plain-text rendering of experiment results (the benches' output)."""

from typing import Dict, Iterable, List, Optional, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a header rule.

    Tolerates ragged rows: short rows are padded with empty cells, extra
    cells beyond the header count are kept and get their own width.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(0)
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        padded = list(cells) + [""] * (len(widths) - len(cells))
        return "  ".join(c.ljust(w) for c, w in zip(padded, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, points: Dict) -> str:
    """One figure series as ``name: k1=v1 k2=v2 ...``."""
    body = " ".join(f"{k}={_fmt(v)}" for k, v in points.items())
    return f"{name}: {body}"


def bar(value: float, scale: float = 40.0, maximum: float = 2.0) -> str:
    """A crude ASCII bar for eyeballing figure shapes in bench output.

    Negative/zero values render empty; a non-positive ``maximum`` is
    treated as degenerate rather than dividing by zero.
    """
    if maximum <= 0:
        return ""
    n = max(0, int(value / maximum * scale))
    return "#" * min(n, int(scale * 2))


# ----------------------------------------------------------------------
# Observability rendering (the ``stats`` CLI verb and bench reports).
# ----------------------------------------------------------------------
def metrics_report(metrics: Dict[str, object], prefix: str = "") -> str:
    """Aligned ``name  value`` lines for a flat dotted-name snapshot,
    optionally filtered to one subtree."""
    if prefix:
        items = [(k, v) for k, v in metrics.items()
                 if k == prefix or k.startswith(prefix + ".")]
    else:
        items = list(metrics.items())
    if not items:
        return "(no metrics)"
    items.sort()
    width = max(len(k) for k, _ in items)
    return "\n".join(f"{k.ljust(width)}  {_fmt(v)}" for k, v in items)


def epoch_table(samples: List[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """The per-epoch timeseries as an ascii table.

    Default columns are the core trajectory; any watched counter present
    in at least one sample is appended automatically.
    """
    if not samples:
        return "(no epoch samples)"
    base = ["epoch", "cycles", "retired", "ipc", "mpki"]
    if columns is None:
        extras = sorted({k for s in samples for k in s}
                        - set(base) - {"mispredicts", "cum_mpki"})
        columns = base + extras
    rows = [[s.get(c, "") for c in columns] for s in samples]
    return ascii_table(list(columns), rows)
