"""Plain-text rendering of experiment results (the benches' output)."""

from typing import Dict, Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, points: Dict) -> str:
    """One figure series as ``name: k1=v1 k2=v2 ...``."""
    body = " ".join(f"{k}={_fmt(v)}" for k, v in points.items())
    return f"{name}: {body}"


def bar(value: float, scale: float = 40.0, maximum: float = 2.0) -> str:
    """A crude ASCII bar for eyeballing figure shapes in bench output."""
    n = max(0, int(value / maximum * scale))
    return "#" * min(n, int(scale * 2))
