"""Command-line interface.

::

    python -m repro list
    python -m repro run astar --engine phelps -n 80000
    python -m repro run astar bfs sssp --engine phelps --jobs 4
    python -m repro run astar --engine phelps --metrics-json m.json --trace-out t.json
    python -m repro stats astar --engine phelps
    python -m repro compare bfs --engines baseline phelps perfbp
    python -m repro sweep -w astar bfs -e baseline phelps --jobs 4
    python -m repro sweep -w astar -e baseline phelps --manifest camp/
    python -m repro sweep --resume camp/
    python -m repro run astar -n 500000 --snapshot-interval 100000 --snapshot-dir snaps/
    python -m repro sweep -w astar bfs -e baseline phelps --manifest camp/ --serve 8320
    python -m repro watch camp/
    python -m repro serve camp/ --port 8320
    python -m repro audit camp/ --rate 0.25 --seed 7
    python -m repro perf --out BENCH_perf.json
    python -m repro perf --record            # append to benchmarks/perf_history/
    python -m repro perf --compare           # newest vs previous history shard
    python -m repro perf --explain-skip
    python -m repro costs
    python -m repro inspect astar
    python -m repro guard --matrix -n 30000
    python -m repro guard --chaos -w astar bfs --bundle chaos.json
"""

import argparse
import sys

from repro.harness import (CampaignJournal, RunCache, RunConfig, ascii_table,
                           entry_from_result, epoch_table, interrupt_guard,
                           metrics_report, poll_interrupt, run_campaign,
                           simulate, simulate_many)
from repro.obs import ObserveConfig, write_chrome_trace
from repro.utils.shards import atomic_write_json
from repro.phelps import PhelpsConfig
from repro.phelps.budget import cost_table
from repro.workloads import workload_names

_ENGINE_CHOICES = ["baseline", "perfbp", "phelps", "br", "br_nonspec", "br12",
                   "partition_only"]

# Distinct nonzero exit codes so CI / scripts can tell the failure modes
# apart without parsing stderr (documented in ``guard --help``).  2 is
# argparse's usage-error code; 1 stays the generic failure.
EXIT_HANG = 3            # forward-progress watchdog fired (SimulationHang)
EXIT_DIVERGENCE = 4      # golden-model divergence (DivergenceError)
EXIT_WORKER_FAILURE = 5  # simulate_many run failed every attempt
EXIT_INVARIANT = 6       # cycle-level sanitizer violation (InvariantViolation)
EXIT_PERF_REGRESSION = 7 # perf --compare found a same-host regression
EXIT_INTEGRITY = 8       # audit re-execution fingerprint-diverged from a
#                          published entry (result-integrity failure)
EXIT_INTERRUPTED = 130   # SIGINT/SIGTERM: graceful stop (128 + SIGINT)

_EXIT_CODE_DOC = """\
exit codes:
  0  success
  1  generic failure (e.g. a chaos case neither recovered nor failed fast)
  2  usage error
  3  simulation hang: the forward-progress watchdog saw no main-thread
     commit for CoreConfig.watchdog_cycles cycles (SimulationHang)
  4  golden-model divergence: committed architectural state disagreed
     with the oracle functional executor (DivergenceError)
  5  worker failure: a simulate_many run failed on every attempt
     (SimulationFailed)
  6  invariant violation: the cycle-level sanitizer found inconsistent
     microarchitectural state (InvariantViolation)
  7  perf regression: perf --compare found a same-host slowdown past the
     measured noise floor plus margin
  8  integrity failure: an audit re-execution's fingerprint diverged
     from the published entry (repro audit, or a service campaign whose
     audits left unresolved mismatches / poisoned points)
130  interrupted: SIGINT/SIGTERM stopped a sweep/guard/sample gracefully
     after flushing completed results (128 + SIGINT; a second SIGINT
     hard-kills immediately)
"""


def _cmd_list(args) -> int:
    print("\n".join(workload_names()))
    return 0


def _metrics_payload(result) -> dict:
    """The ``--metrics-json`` document: run summary + full counter
    snapshot + per-epoch timeseries."""
    s = result.stats
    return {
        "workload": result.config.workload,
        "engine": result.config.engine,
        "cycles": s.cycles,
        "retired": s.retired,
        "ipc": s.ipc,
        "mpki": s.mpki,
        "mispredicts": s.mispredicts,
        "helper_retired": s.helper_retired,
        "halted": s.halted,
        "wall_seconds": result.wall_seconds,
        "counters": s.metrics,
        "epochs": s.epochs,
    }


def _print_run_summary(result, verbose: bool = False) -> None:
    s = result.stats
    cfg = result.config
    print(f"{cfg.workload} [{cfg.engine}] "
          f"{s.retired:,} insts in {s.cycles:,} cycles "
          f"({result.wall_seconds:.1f}s wall)")
    print(f"  IPC {s.ipc:.3f}  MPKI {s.mpki:.2f}  "
          f"mispredicts {s.mispredicts:,}  helper insts {s.helper_retired:,}")
    if verbose and s.engine:
        for k, v in s.engine.items():
            print(f"  {k}: {v}")


def _cmd_run(args) -> int:
    if len(args.workloads) > 1:
        if args.metrics_json or args.trace_out or args.profile:
            print("run: --metrics-json/--trace-out/--profile need a single "
                  "workload", file=sys.stderr)
            return 2
        configs = [RunConfig(workload=w, engine=args.engine,
                             max_instructions=args.instructions,
                             observe=args.observe,
                             snapshot_interval=args.snapshot_interval,
                             snapshot_dir=args.snapshot_dir)
                   for w in args.workloads]
        for result in simulate_many(configs, jobs=args.jobs):
            _print_run_summary(result, verbose=args.verbose)
        return 0
    workload = args.workloads[0]
    observe = bool(args.observe or args.metrics_json or args.trace_out
                   or args.profile)
    ocfg = ObserveConfig(profile=args.profile,
                         pipeline_trace=bool(args.trace_out)) if observe else None
    cfg = RunConfig(workload=workload, engine=args.engine,
                    max_instructions=args.instructions,
                    observe=observe, observe_config=ocfg,
                    snapshot_interval=args.snapshot_interval,
                    snapshot_dir=args.snapshot_dir)
    result = simulate(cfg)
    s = result.stats
    if result.resumed_at is not None:
        print(f"  resumed from snapshot at {result.resumed_at:,} retired "
              f"instructions ({args.snapshot_dir})")
    _print_run_summary(result, verbose=args.verbose)
    if args.metrics_json:
        atomic_write_json(args.metrics_json, _metrics_payload(result),
                          indent=1, default=str)
        print(f"  metrics -> {args.metrics_json} "
              f"({len(s.metrics)} counters, {len(s.epochs)} epoch samples)")
    if args.trace_out:
        n = write_chrome_trace(args.trace_out, result.obs.events.events(),
                               tracer=result.obs.tracer)
        print(f"  chrome trace -> {args.trace_out} ({n} events; open in "
              f"Perfetto / chrome://tracing)")
    if args.profile:
        print(result.obs.profiler.report())
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base_rate = None
    for engine in args.engines:
        r = simulate(RunConfig(workload=args.workload, engine=engine,
                               max_instructions=args.instructions))
        # A run can halt (or wedge) with 0 cycles or 0 retired; report
        # "n/a" rather than dividing by zero.
        rate = r.stats.retired / r.cycles if r.cycles else 0.0
        if base_rate is None:
            base_rate = rate
        speedup = rate / base_rate if base_rate else None
        rows.append([engine, r.ipc, r.mpki,
                     speedup if speedup is not None else "n/a"])
    print(ascii_table(["engine", "IPC", "MPKI", "speedup"], rows))
    return 0


def _cmd_sweep(args) -> int:
    """Cross-product sweep: process-pool fan-out, shard caching, and an
    optional write-ahead campaign journal for kill-and-resume."""
    if args.resume:
        journal = CampaignJournal(args.resume)
        manifest = journal.load_manifest()
        if manifest is None:
            print(f"sweep: no campaign manifest under {args.resume} "
                  f"(expected {journal.manifest_path})", file=sys.stderr)
            return 2
        spec = manifest.get("spec", {})
        workloads = args.workloads or spec.get("workloads")
        engines = args.engines or spec.get("engines")
        instructions = spec.get("instructions", args.instructions)
        cache_dir = args.cache_dir or spec.get("cache_dir")
        if not workloads or not engines:
            print("sweep: manifest spec has no workloads/engines; pass "
                  "-w/-e explicitly", file=sys.stderr)
            return 2
    else:
        if not args.workloads or not args.engines:
            print("sweep: -w/-e are required unless resuming with --resume",
                  file=sys.stderr)
            return 2
        workloads, engines = args.workloads, args.engines
        instructions = args.instructions
        cache_dir = args.cache_dir
        journal = CampaignJournal(args.manifest) if args.manifest else None

    configs = [RunConfig(workload=w, engine=e, max_instructions=instructions)
               for w in workloads for e in engines]
    cache = RunCache(cache_dir) if cache_dir else None
    spec_doc = {"workloads": list(workloads), "engines": list(engines),
                "instructions": instructions, "cache_dir": cache_dir}

    def _progress(p) -> None:
        label = f"{p.config.workload}/{p.config.engine}"
        if p.kind == "done":
            print(f"  [{p.done_count}/{p.total}] {label} "
                  f"({p.wall_seconds:.1f}s)")
        elif p.kind == "retry":
            print(f"  retry {label}")
        elif p.kind == "failed":
            print(f"  FAILED {label}: {p.error}", file=sys.stderr)

    print(f"sweep: {len(configs)} points (jobs={args.jobs or 'auto'}"
          + (f", journal={journal.root}" if journal is not None else "")
          + ")")
    server = None
    if args.serve is not None:
        if journal is None:
            print("sweep: --serve needs a campaign directory "
                  "(--manifest or --resume)", file=sys.stderr)
            return 2
        from repro.obs.serve import TelemetryServer
        server = TelemetryServer(journal.root, port=args.serve,
                                 interval=args.heartbeat_interval).start()
        print(f"sweep: telemetry at {server.url} "
              f"(/metrics /campaign /live /stream)")
    try:
        entries = run_campaign(configs, journal=journal, cache=cache,
                               jobs=args.jobs, timeout=args.timeout,
                               progress=_progress if not args.quiet else None,
                               spec=spec_doc,
                               heartbeat_interval=args.heartbeat_interval)
    finally:
        if server is not None:
            server.stop()

    rows = []
    for w in workloads:
        base = None
        for e in engines:
            key = RunConfig(workload=w, engine=e,
                            max_instructions=instructions).cache_key()
            entry = entries[key]
            rate = entry["retired"] / max(entry["cycles"], 1)
            if base is None:
                base = rate
            rows.append([w, e, entry["ipc"], entry["mpki"], entry["cycles"],
                         rate / base if base else "n/a"])
    print(ascii_table(["workload", "engine", "IPC", "MPKI", "cycles",
                       "speedup"], rows))
    return 0


def _cmd_sample(args) -> int:
    """Sampled simulation: BBV profile -> cluster -> checkpointed regions."""
    from repro.sampling import profile_bbv, sampled_run, sampled_vs_full

    common = dict(
        engine=args.engine,
        full_instructions=args.instructions,
        interval_instructions=args.interval,
        k=args.clusters,
        seed=args.seed,
        warmup_instructions=args.warmup,
        checkpoint_dir=args.checkpoint_dir,
    )
    # Under the guard a SIGINT/SIGTERM lands at a region boundary (the
    # evaluate_regions poll point) instead of killing mid-simulation;
    # main() maps the resulting SweepInterrupted to exit code 130.
    with interrupt_guard():
        if args.validate:
            report = sampled_vs_full(args.workload, **common)
            sampled = report["sampled"]
        else:
            report = sampled_run(args.workload, **common)
            sampled = report

    print(f"{args.workload} [{args.engine}] sampled: "
          f"{sampled['intervals_profiled']} intervals of "
          f"{args.interval:,} insts -> {len(sampled['regions'])} regions")
    rows = [[r["label"], r["start"], r["instructions"], r["weight"]]
            for r in sampled["regions"]]
    print(ascii_table(["region", "start", "insts", "weight"], rows))
    frac = sampled["simulated_fraction"]
    print(f"  sampled IPC {sampled['ipc']:.3f}  MPKI {sampled['mpki']:.2f}  "
          f"({sampled['instructions_simulated']:,} of "
          f"{sampled['instructions_profiled']:,} insts cycle-accurate, "
          f"{frac:.0%})")
    if sampled.get("checkpoints_reused") is not None:
        print(f"  checkpoints: {sampled['checkpoints_reused']}/"
              f"{sampled['checkpoints_total']} reused from "
              f"{args.checkpoint_dir}")
    if args.validate:
        print(f"  full IPC {report['full_ipc']:.3f}  "
              f"error {report['ipc_error_pct']}%  "
              f"wall speedup {report['wall_speedup']}x "
              f"({report['full_wall_seconds']:.1f}s full vs "
              f"{sampled['wall_seconds']:.1f}s sampled)")
    if args.report:
        atomic_write_json(args.report, report, indent=1, sort_keys=True)
        print(f"  report -> {args.report}")
    return 0


def _cps_floor_failures(points, floor):
    """Perf points whose absolute simulation speed is below the floor."""
    fails = []
    for p in points or []:
        cps = p.get("cycles_per_sec")
        if cps is not None and cps < floor:
            fails.append(f"{p['label']}: {cps:,} cycles/s < floor {floor:,.0f}")
    return fails


def _cmd_perf(args) -> int:
    from repro.harness.perf import (explain_skip, perf_smoke, profile_hot,
                                    write_perf_record)
    from repro.harness.perfhistory import (append_record, compare_records,
                                           latest_record, list_records,
                                           load_record)

    if args.profile_hot:
        record = profile_hot(top_n=args.top)
        for prof in record["profiles"]:
            print(f"\n{prof['label']} [{prof['storage']}] "
                  f"n={prof['instructions']:,} cycles={prof['cycles']:,} "
                  f"({prof['profiled_wall_seconds']:.2f}s profiled)")
            print(ascii_table(
                ["function", "calls", "tottime", "%", "cumtime"],
                [[h["function"], h["calls"], f"{h['tottime']:.3f}",
                  f"{h['tottime_pct']:.1f}", f"{h['cumtime']:.3f}"]
                 for h in prof["hot"]]))
        out = args.out or "BENCH_perf_profile.json"
        atomic_write_json(out, record, indent=1, sort_keys=True)
        print(f"profile record -> {out}")
        return 0

    if args.explain_skip:
        rows = explain_skip()
        print(ascii_table(
            ["point", "cycles", "skipped", "frac", "walks", "vetoes",
             "advances", "cyc/walk"],
            [[r["label"], r["cycles"], r["idle_cycles_skipped"],
              r["skipped_frac"], r["skip_walk_cycles"], r["skip_vetoes"],
              r["skip_bulk_advances"], r["cycles_per_walk"] or "n/a"]
             for r in rows]))
        sick = [r["label"] for r in rows
                if r["skip_walk_cycles"] > r["idle_cycles_skipped"] > 0]
        if sick:
            print(f"walks outweigh skipped cycles on: {', '.join(sick)} "
                  f"(the fast path costs more than it saves there)")
        return 0

    if args.compare is not None or args.against:
        # Pure comparison of existing records: never simulates.  The
        # history shards sort oldest-first, so with no explicit paths
        # this compares the two newest records.
        history = [(p, load_record(p)) for p in list_records(args.history_dir)]
        history = [(p, r) for p, r in history if r is not None]
        if args.against:
            new = load_record(args.against)
            if new is None:
                print(f"perf: cannot read record {args.against}",
                      file=sys.stderr)
                return 2
        elif history:
            _, new = history.pop()
        else:
            print(f"perf: no history under {args.history_dir} "
                  f"(record one with --record)", file=sys.stderr)
            return 2
        if args.compare:
            base = load_record(args.compare)
            if base is None:
                print(f"perf: cannot read baseline {args.compare}",
                      file=sys.stderr)
                return 2
        elif history:
            _, base = history[-1]
        else:
            print("perf: history has no record to use as baseline; pass "
                  "an explicit path to --compare", file=sys.stderr)
            return 2
        report = compare_records(base, new, margin_pct=args.margin)
        for d in report["points"]:
            if d.get("verdict") == "incomparable":
                print(f"  ?  {d['label']}: incomparable")
                continue
            mark = {"regression": "REG", "improvement": "imp",
                    "ok": "ok "}[d["verdict"]]
            print(f"  {mark} {d['label']}: {d['base_wall_seconds']:.2f}s -> "
                  f"{d['new_wall_seconds']:.2f}s ({d['delta_pct']:+.1f}%, "
                  f"noise {d['noise_pct']:.1f}% + margin "
                  f"{report['margin_pct']:.1f}%)")
        if not report["host_match"]:
            print("perf: records come from different hosts — wall-clock "
                  "deltas are advisory, not a gate", file=sys.stderr)
        if args.compare_out:
            atomic_write_json(args.compare_out, report, indent=1,
                              sort_keys=True)
            print(f"delta report -> {args.compare_out}")
        floor_fails = []
        if args.min_cycles_per_sec:
            floor_fails = _cps_floor_failures(new.get("points"),
                                              args.min_cycles_per_sec)
            for f in floor_fails:
                print(f"perf: FLOOR {f}", file=sys.stderr)
        if report["regressions"]:
            print(f"perf: REGRESSION on {', '.join(report['regressions'])}",
                  file=sys.stderr)
            if report["host_match"]:
                return EXIT_PERF_REGRESSION
        if floor_fails:
            return EXIT_PERF_REGRESSION
        return 0

    record = perf_smoke(rounds=args.rounds,
                        include_sampling=args.sampling)
    for p in record["points"]:
        print(f"{p['label']} n={p['instructions']:,}: "
              f"{p['instr_per_sec']:,} instr/s "
              f"(best of {record['rounds']}: {p['wall_seconds_best']:.2f}s; "
              f"no-skip {p['wall_seconds_best_no_skip']:.2f}s, "
              f"skip speedup {p['cycle_skip_speedup']}x, "
              f"{p['idle_cycles_skipped']:,} idle cycles skipped)")
    s = record.get("sampling")
    if s:
        print(f"{s['label']}: sampled-vs-full wall speedup "
              f"{s['wall_speedup']}x, IPC error {s['ipc_error_pct']}%, "
              f"{s['simulated_fraction']:.0%} of insts cycle-accurate")
    g = record.get("guard")
    if g:
        print(f"{g['label']}: off {g['wall_seconds_off']:.2f}s, "
              f"commit +{g['commit_overhead_pct']}%, "
              f"full +{g['full_overhead_pct']}%")
    if args.out:
        write_perf_record(args.out, record)
        print(f"perf record -> {args.out}")
    if args.record:
        shard = append_record(args.history_dir, record,
                              latest_path=args.out or "BENCH_perf.json")
        print(f"history shard -> {shard}")
    if args.min_cycles_per_sec:
        floor_fails = _cps_floor_failures(record["points"],
                                          args.min_cycles_per_sec)
        if floor_fails:
            for f in floor_fails:
                print(f"perf: FLOOR {f}", file=sys.stderr)
            return EXIT_PERF_REGRESSION
    return 0


def _cmd_ab(args) -> int:
    """Columnar-vs-legacy A/B cycle-exactness matrix."""
    from repro.harness.abcompare import ab_matrix
    from repro.phelps import PhelpsConfig

    # Short epochs so Phelps deploys helpers inside a test-sized run.
    phelps = PhelpsConfig(epoch_length=8000, min_iterations_per_visit=8)
    reports = ab_matrix(args.workloads, args.engines,
                        max_instructions=args.instructions,
                        phelps_config=phelps)
    for report in reports:
        print(report.summary())
    diverged = [r for r in reports if not r.match]
    if args.json:
        atomic_write_json(args.json,
                          {"schema": 1,
                           "reports": [r.to_dict() for r in reports]},
                          indent=1, sort_keys=True)
        print(f"ab report -> {args.json}")
    if diverged:
        pairs = ", ".join(f"{r.workload}/{r.engine}" for r in diverged)
        print(f"ab: DIVERGENCE on {pairs}", file=sys.stderr)
        return EXIT_DIVERGENCE
    print(f"ab: {len(reports)} pair(s) bit-identical across storage engines")
    return 0


def _remote_view(base_url: str):
    """One dashboard frame fetched over HTTP: a ``repro serve`` telemetry
    endpoint (``/live`` or ``/campaign``) or a campaign-service campaign
    URL (``.../campaigns/<id>``) — whichever the URL turns out to be."""
    import json as json_mod
    import urllib.error
    import urllib.request

    from repro.obs.live import live_view

    base = base_url.rstrip("/")

    def get(path):
        try:
            with urllib.request.urlopen(base + path, timeout=10) as resp:
                return json_mod.loads(resp.read().decode())
        except (urllib.error.URLError, OSError, ValueError):
            return None

    doc = get("/live")
    if doc is not None and doc.get("points") is not None:
        return doc  # already a derived live view
    for path in ("/campaign", ""):
        doc = get(path)
        if doc is not None and doc.get("points") is not None:
            return live_view({
                "schema": 1, "source": "remote",
                "total": doc.get("total", len(doc["points"])),
                "counts": doc.get("counts", {}),
                "points": doc["points"],
            })
    return None


def _cmd_watch(args) -> int:
    """Terminal dashboard tailing a campaign's live.json (or journal),
    or — with --connect — a remote telemetry/service endpoint."""
    import time as time_mod

    from repro.obs.live import journal_view, live_view, read_live, render_watch

    if not args.connect and not args.dir:
        print("watch: a campaign directory or --connect URL is required",
              file=sys.stderr)
        return 2
    if args.connect:
        def frame():
            return _remote_view(args.connect)
    else:
        def frame():
            doc = read_live(args.dir)
            if doc is not None:
                return live_view(doc)
            return journal_view(args.dir)

    view = frame()
    if view is None:
        where = args.connect or args.dir
        print(f"watch: no campaign at {where} "
              f"(expected live.json/campaign.json or a telemetry URL)",
              file=sys.stderr)
        return 2
    while True:
        if not args.once:
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
        print(render_watch(view, limit=args.limit))
        counts = view.get("counts") or {}
        finished = counts.get("done", 0) + counts.get("failed", 0)
        if args.once or (view.get("total") and finished >= view["total"]):
            return 0
        time_mod.sleep(args.interval)
        view = frame() or view


def _cmd_serve(args) -> int:
    """Standalone telemetry endpoint over a campaign directory."""
    import time as time_mod

    from repro.obs.serve import TelemetryServer

    server = TelemetryServer(args.dir, port=args.port,
                             host=args.host, interval=args.interval).start()
    print(f"serving {args.dir} at {server.url} "
          f"(/metrics /campaign /live /stream; Ctrl-C stops)")
    try:
        while True:
            time_mod.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        server.stop()


def _parse_tenants(specs):
    """``name=weight[:max_leased]`` strings -> {name: TenantPolicy}."""
    from repro.service import TenantPolicy

    tenants = {}
    for spec in specs or ():
        name, _, policy = spec.partition("=")
        if not name or not policy:
            raise ValueError(f"bad --tenant {spec!r} "
                             f"(want name=weight[:max_leased])")
        weight, _, cap = policy.partition(":")
        tenants[name] = TenantPolicy(weight=float(weight),
                                     max_leased=int(cap) if cap else None)
    return tenants


def _cmd_service(args) -> int:
    """The campaign daemon: sweeps as a service over HTTP."""
    from repro.service import CampaignService, ServiceConfig

    try:
        tenants = _parse_tenants(args.tenant)
    except ValueError as exc:
        print(f"service: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        root=args.root, host=args.host, port=args.port,
        workers=args.workers, lease_seconds=args.lease_seconds,
        cache_dir=args.cache_dir,
        max_queued_points=args.max_queued_points,
        max_active_campaigns=args.max_active,
        max_attempts=args.max_attempts,
        heartbeat_interval=args.heartbeat_interval,
        drain_seconds=args.drain_seconds,
        expose_dir=not args.no_expose_dir,
        tenants=tenants,
        audit_rate=args.audit_rate,
        audit_seed=args.audit_seed,
        quarantine_threshold=args.quarantine_threshold,
        poison_workers=args.poison_workers)
    service = CampaignService(config).start()
    print(f"campaign service at {service.url} "
          f"(root={args.root}, workers={args.workers}; "
          f"POST /campaigns submits, Ctrl-C stops, "
          f"SIGTERM drains)")
    service.serve_forever()
    return 0


def _cmd_worker(args) -> int:
    """One pull-model campaign worker (standalone or daemon-connected)."""
    from repro.service import WorkerOptions, work_campaign_dir, work_service

    if bool(args.connect) == bool(args.dir):
        print("worker: exactly one of --connect URL or --dir DIR is "
              "required", file=sys.stderr)
        return 2
    options = WorkerOptions(
        worker_id=args.id or "",
        lease_seconds=args.lease_seconds,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval,
        max_idle_polls=args.max_idle_polls,
        max_points=args.max_points,
        max_misses=args.max_misses,
        cache_dir=args.cache_dir,
        log=not args.quiet)
    if args.connect:
        report = work_service(args.connect, options)
    else:
        report = work_campaign_dir(args.dir, options)
    print(f"worker {report.worker_id}: {report.completed} completed "
          f"({report.cache_hits} from cache), {report.failed} failed, "
          f"{report.lease_lost} leases lost, {report.claimed} claims")
    if args.connect and (report.http_retries or report.breaker_opens
                         or report.renew_misses):
        print(f"worker {report.worker_id}: transport "
              f"{report.http_retries} retries, "
              f"{report.breaker_opens} breaker opens, "
              f"{report.renew_misses} renew misses")
    return 0


def _cmd_audit(args) -> int:
    """Offline sampled re-execution of a campaign's published entries.

    The deterministic-simulator counterpart of the service's live audit
    scheduler: re-run a seeded sample of the done points and demand
    bit-identical ``entry_fingerprint``s.  Any divergence means the
    stored entry was not produced by this simulator on this input —
    bit-rot, a corrupted worker, or a stale cache — and exits
    ``EXIT_INTEGRITY`` (8) so CI can gate on it.
    """
    import json as _json
    import pathlib

    from repro.harness.campaign import entry_fingerprint
    from repro.service.integrity import should_audit
    from repro.service.queue import configs_from_spec

    root = pathlib.Path(args.dir)
    try:
        manifest = _json.loads((root / "campaign.json").read_text())
    except (FileNotFoundError, _json.JSONDecodeError, OSError) as exc:
        print(f"audit: no readable campaign.json under {root}: {exc}",
              file=sys.stderr)
        return 2
    spec = manifest.get("spec") or {}
    if not spec.get("workloads") or not spec.get("engines"):
        print("audit: manifest has no runnable spec", file=sys.stderr)
        return 2
    configs = {c.cache_key(): c for c in configs_from_spec(spec)}
    audited = mismatched = sampled_out = unreadable = 0
    for meta in manifest.get("points", ()):
        key = meta.get("key")
        config = configs.get(key)
        if not key or config is None:
            continue
        try:
            shard = _json.loads((root / f"{key}.json").read_text())
        except (FileNotFoundError, _json.JSONDecodeError, OSError):
            unreadable += 1
            continue
        entry = shard.get("entry")
        if shard.get("status") != "done" or not isinstance(entry, dict):
            continue
        if not should_audit(key, args.rate, args.seed):
            sampled_out += 1
            continue
        audited += 1
        fresh = entry_from_result(simulate(config))
        if entry_fingerprint(fresh) == entry_fingerprint(entry):
            if not args.quiet:
                print(f"audit: {key} ok")
        else:
            mismatched += 1
            print(f"audit: MISMATCH {key} "
                  f"({config.workload}/{config.engine}): stored entry "
                  f"does not reproduce", file=sys.stderr)
    print(f"audit: {audited} re-executed, {mismatched} mismatched, "
          f"{sampled_out} outside the sample, {unreadable} unreadable")
    return EXIT_INTEGRITY if mismatched else 0


def _cmd_stats(args) -> int:
    ocfg = ObserveConfig(profile=args.profile)
    cfg = RunConfig(workload=args.workload, engine=args.engine,
                    max_instructions=args.instructions, observe_config=ocfg)
    result = simulate(cfg)
    s = result.stats
    print(f"{args.workload} [{args.engine}]  {s.summary()}")
    print(f"\n== per-epoch timeseries "
          f"(every {result.obs.sampler.epoch_instructions:,} insts) ==")
    print(epoch_table(s.epochs))
    print("\n== counters ==")
    print(metrics_report(s.metrics, prefix=args.prefix))
    if args.profile:
        print("\n== simulator wall-clock by stage ==")
        print(result.obs.profiler.report())
    return 0


def _cmd_costs(args) -> int:
    print(cost_table())
    return 0


def _guard_phelps_config() -> PhelpsConfig:
    """Short-epoch config so Phelps actually deploys within a 30k-inst
    guard run (the default 4000-inst epochs under-train live-in analysis
    at that horizon)."""
    return PhelpsConfig(epoch_length=8000, min_iterations_per_visit=8)


def _cmd_guard(args) -> int:
    import dataclasses

    from repro.core import CoreConfig

    workloads = args.workloads or list(workload_names())

    if args.chaos:
        from repro.guard.chaos import run_chaos_suite

        report = run_chaos_suite(workloads, instructions=args.instructions,
                                 seed=args.seed)
        for case in report["cases"]:
            mark = "ok    " if case["outcome"] == "recovered" else "FAILED"
            line = f"  {mark} {case['fault']:20s} {case['workload']}"
            if case["error"]:
                line += f"  ({case['error']})"
            print(line)
        print(f"chaos: {len(report['cases'])} cases, "
              f"{report['failed']} failed (seed {report['seed']})")
        if args.bundle:
            atomic_write_json(args.bundle, report, indent=1, sort_keys=True,
                              default=str)
            print(f"  report -> {args.bundle}")
        return 0 if report["failed"] == 0 else 1

    engines = args.engines
    core_cfg = CoreConfig(guard_level=args.level,
                          guard_check_interval=args.interval)
    failures = 0
    pairs = [(w, e) for w in workloads for e in engines]
    with interrupt_guard():
        for i, (workload, engine) in enumerate(pairs):
            # SIGINT/SIGTERM stop the matrix between runs (exit 130 via
            # main()); completed rows have already been printed.
            poll_interrupt(done=i, total=len(pairs))
            phelps_cfg = (_guard_phelps_config()
                          if engine in ("phelps", "br", "br12", "br_nonspec")
                          else None)
            cfg = RunConfig(workload=workload, engine=engine,
                            max_instructions=args.instructions,
                            core=dataclasses.replace(core_cfg),
                            phelps_config=phelps_cfg, observe=True)
            # A guard error raised here propagates to main(), which maps
            # it to its exit code and writes --bundle if given.
            result = simulate(cfg)
            checked = int(result.stats.metrics.get("guard.checked", 0))
            sweeps = int(result.stats.metrics.get("guard.sweeps", 0))
            if checked == 0:
                print(f"  FAILED {workload}/{engine}: guard checked nothing",
                      file=sys.stderr)
                failures += 1
                continue
            print(f"  ok     {workload:12s} {engine:10s} "
                  f"{result.stats.retired:,} retired, {checked:,} checked"
                  + (f", {sweeps:,} invariant sweeps" if sweeps else ""))
    total = len(workloads) * len(engines)
    print(f"guard: {total} runs, {failures} failed "
          f"(level={args.level}, n={args.instructions:,})")
    return 0 if failures == 0 else 1


def _cmd_trace(args) -> int:
    from repro.core import Core, CoreConfig
    from repro.core.trace import PipelineTracer
    from repro.phelps import PhelpsEngine
    from repro.workloads import build_workload

    engine = PhelpsEngine(PhelpsConfig()) if args.engine == "phelps" else None
    core = Core(build_workload(args.workload), config=CoreConfig(), engine=engine)
    tracer = PipelineTracer(core)
    core.run(max_instructions=args.instructions)
    print(tracer.render(last=args.last))
    print(f"\navg fetch-to-retire latency: {tracer.average_latency():.1f} cycles, "
          f"{len(tracer.squashed())} squashed uops in window")
    return 0


def _cmd_inspect(args) -> int:
    from repro.core import Core, CoreConfig
    from repro.phelps import PhelpsEngine
    from repro.workloads import build_workload

    engine = PhelpsEngine(PhelpsConfig())
    core = Core(build_workload(args.workload), config=CoreConfig(), engine=engine)
    core.run(max_instructions=args.instructions)
    print(f"epochs: {engine.epoch_index}, activations: {engine.activations}")
    print(f"loop status: {engine.loop_status}")
    for start, row in engine.htc.rows.items():
        kind = "nested (OT+IT)" if row.is_nested else "inner-thread-only"
        print(f"\nHTC row @ {start:#x}: {kind}, {row.size} instructions, "
              f"{len(row.queue_assignment)} queues")
        for inst in (row.outer_insts + row.inner_insts)[:args.limit]:
            print(f"  {inst!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Phelps (HPCA 2025) reproduction: cycle-level simulation driver")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="simulate one or more workloads on one engine")
    run.add_argument("workloads", nargs="+", metavar="workload")
    run.add_argument("--engine", default="baseline", choices=_ENGINE_CHOICES)
    run.add_argument("-n", "--instructions", type=int, default=100_000)
    run.add_argument("-j", "--jobs", type=int, default=None,
                     help="worker processes for multi-workload runs "
                          "(default: CPU count; 1 = serial in-process)")
    run.add_argument("-v", "--verbose", action="store_true")
    run.add_argument("--observe", action="store_true",
                     help="enable the observability layer (metrics registry, "
                          "epoch timeseries, event trace)")
    run.add_argument("--metrics-json", metavar="PATH",
                     help="write the metric snapshot + epoch timeseries as "
                          "JSON (implies --observe)")
    run.add_argument("--trace-out", metavar="PATH",
                     help="write a Chrome trace-event JSON (Perfetto-"
                          "loadable) of engine events + pipeline slices "
                          "(implies --observe)")
    run.add_argument("--profile", action="store_true",
                     help="attribute simulator wall-clock per pipeline "
                          "stage (implies --observe)")
    run.add_argument("--snapshot-interval", type=int, default=0,
                     metavar="N",
                     help="take a mid-run core snapshot every N retired "
                          "instructions (0 = off); with --snapshot-dir a "
                          "killed run resumes from its last snapshot")
    run.add_argument("--snapshot-dir", metavar="DIR", default=None,
                     help="snapshot shard store; rerunning the same config "
                          "against this directory resumes cycle-exactly "
                          "from the newest snapshot")
    run.set_defaults(fn=_cmd_run)

    stats = sub.add_parser(
        "stats", help="run one workload with full observability and "
                      "pretty-print counters + per-epoch timeseries")
    stats.add_argument("workload")
    stats.add_argument("--engine", default="phelps",
                       choices=["baseline", "perfbp", "phelps", "br",
                                "br_nonspec", "br12", "partition_only"])
    stats.add_argument("-n", "--instructions", type=int, default=100_000)
    stats.add_argument("--prefix", default="",
                       help="only show counters under this dotted prefix "
                            "(e.g. phelps.queues)")
    stats.add_argument("--profile", action="store_true")
    stats.set_defaults(fn=_cmd_stats)

    cmp_ = sub.add_parser("compare", help="run several engines on one workload")
    cmp_.add_argument("workload")
    cmp_.add_argument("--engines", nargs="+",
                      default=["baseline", "phelps", "perfbp"])
    cmp_.add_argument("-n", "--instructions", type=int, default=100_000)
    cmp_.set_defaults(fn=_cmd_compare)

    sweep = sub.add_parser(
        "sweep", help="workload x engine cross product with process-pool "
                      "fan-out, a sharded result cache, and a resumable "
                      "campaign journal",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sweep.add_argument("-w", "--workloads", nargs="+", default=None,
                       help="workloads (required unless --resume)")
    sweep.add_argument("-e", "--engines", nargs="+", default=None,
                       choices=_ENGINE_CHOICES,
                       help="engines (required unless --resume)")
    sweep.add_argument("-n", "--instructions", type=int, default=100_000)
    sweep.add_argument("--manifest", metavar="DIR", default=None,
                       help="write-ahead campaign journal directory: one "
                            "atomic status shard per point plus "
                            "campaign.json; a killed sweep resumes with "
                            "--resume DIR")
    sweep.add_argument("--resume", metavar="DIR", default=None,
                       help="resume the campaign journaled under DIR: "
                            "done points are skipped, points running at "
                            "the crash are requeued; results are "
                            "bit-identical to an uninterrupted sweep")
    sweep.add_argument("-j", "--jobs", type=int, default=None,
                       help="worker processes (default: CPU count; "
                            "1 = serial in-process)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run timeout in seconds (one retry)")
    sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="sharded run cache directory (one JSON file per "
                            "run key, e.g. benchmarks/results/cache)")
    sweep.add_argument("-q", "--quiet", action="store_true",
                       help="suppress per-run progress lines")
    sweep.add_argument("--serve", type=int, metavar="PORT", default=None,
                       help="serve live telemetry over HTTP while the "
                            "sweep runs (/metrics, /campaign, /live, "
                            "/stream; needs --manifest or --resume; "
                            "port 0 = ephemeral)")
    sweep.add_argument("--heartbeat-interval", type=float, default=1.0,
                       metavar="SEC",
                       help="worker progress-heartbeat cadence in seconds "
                            "(drives live.json and the watch/serve views)")
    sweep.set_defaults(fn=_cmd_sweep)

    watch = sub.add_parser(
        "watch", help="terminal dashboard tailing a campaign directory "
                      "(live heartbeats, stalled-worker flags, ETA)")
    watch.add_argument("dir", nargs="?", default=None,
                       help="campaign directory (the --manifest/"
                            "--resume DIR of a sweep)")
    watch.add_argument("--connect", metavar="URL", default=None,
                       help="watch a remote campaign over HTTP instead of "
                            "a directory: a 'repro serve' endpoint or a "
                            "campaign-service .../campaigns/<id> URL")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds")
    watch.add_argument("--once", action="store_true",
                       help="print one frame and exit (no screen clearing)")
    watch.add_argument("--limit", type=int, default=0,
                       help="truncate the point table to this many rows "
                            "(0 = all)")
    watch.set_defaults(fn=_cmd_watch)

    serve = sub.add_parser(
        "serve", help="HTTP telemetry endpoint over a campaign directory "
                      "(Prometheus /metrics, /campaign JSON, SSE /stream)")
    serve.add_argument("dir", help="campaign directory to serve")
    serve.add_argument("--port", type=int, default=8320,
                       help="listen port (0 = ephemeral, printed at start)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default loopback only)")
    serve.add_argument("--interval", type=float, default=1.0,
                       help="SSE frame period in seconds")
    serve.set_defaults(fn=_cmd_serve)

    service = sub.add_parser(
        "service", help="campaign daemon: submit sweeps over HTTP, "
                        "executed by a leased multi-worker pool",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    service.add_argument("--root", metavar="DIR", default="campaigns",
                         help="directory holding one campaign journal "
                              "subdirectory per submission")
    service.add_argument("--port", type=int, default=8330,
                         help="listen port (0 = ephemeral, printed at "
                              "start; a busy port degrades to ephemeral "
                              "with a log line)")
    service.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback only)")
    service.add_argument("--workers", type=int, default=2,
                         help="in-daemon worker pool size (0 = rely on "
                              "external 'repro worker --connect' "
                              "processes)")
    service.add_argument("--lease-seconds", type=float, default=30.0,
                         help="how long a worker's claim on a point is "
                              "trusted without a renewal; the reaper "
                              "requeues points past this")
    service.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="sharded run cache: submissions dedupe "
                              "against it and workers publish into it")
    service.add_argument("--max-queued-points", type=int, default=100_000,
                         help="back-pressure bound: submissions past this "
                              "total queue depth get HTTP 429 + "
                              "Retry-After")
    service.add_argument("--max-active", type=int, default=4,
                         help="campaigns executing concurrently; the rest "
                              "queue in weighted-fair order")
    service.add_argument("--max-attempts", type=int, default=3,
                         help="per-point attempt cap for failed-point "
                              "retries (0 = no retries)")
    service.add_argument("--heartbeat-interval", type=float, default=1.0,
                         help="worker heartbeat/lease-renewal cadence")
    service.add_argument("--drain-seconds", type=float, default=30.0,
                         help="SIGTERM grace: stop offering work, wait "
                              "this long for leased points to land, "
                              "record the interruption, then exit")
    service.add_argument("--no-expose-dir", action="store_true",
                         help="never reveal campaign directories over "
                              "/schedule (enforces filesystem-free "
                              "workers)")
    service.add_argument("--tenant", action="append", metavar="SPEC",
                         help="tenant policy name=weight[:max_leased], "
                              "repeatable (e.g. --tenant ci=2.0:4)")
    service.add_argument("--audit-rate", type=float, default=0.0,
                         help="fraction of completed points re-executed "
                              "on a different worker and fingerprint-"
                              "checked (0 = off, 1 = every point)")
    service.add_argument("--audit-seed", type=int, default=0,
                         help="seed for the deterministic audit sample")
    service.add_argument("--quarantine-threshold", type=float, default=5.0,
                         help="reputation score (weighted mismatches/"
                              "crashes/lease expiries) past which a "
                              "worker stops being offered work")
    service.add_argument("--poison-workers", type=int, default=3,
                         help="distinct workers that must fail a point "
                              "before it is terminally poisoned "
                              "(0 = never poison)")
    service.set_defaults(fn=_cmd_service)

    worker = sub.add_parser(
        "worker", help="pull-model campaign worker: claim leased points "
                       "from a daemon (--connect) or a campaign "
                       "directory (--dir)")
    worker.add_argument("--connect", metavar="URL", default=None,
                        help="campaign-service base URL to pull work from")
    worker.add_argument("--dir", metavar="DIR", default=None,
                        help="drain one campaign directory directly "
                             "(no daemon needed)")
    worker.add_argument("--id", default=None,
                        help="worker id recorded in leases "
                             "(default: w<pid>)")
    worker.add_argument("--lease-seconds", type=float, default=30.0)
    worker.add_argument("--heartbeat-interval", type=float, default=1.0)
    worker.add_argument("--poll-interval", type=float, default=0.5,
                        help="idle wait between /schedule polls")
    worker.add_argument("--max-idle-polls", type=int, default=0,
                        help="exit after this many consecutive empty "
                             "polls (0 = poll forever)")
    worker.add_argument("--max-points", type=int, default=0,
                        help="exit after claiming this many points "
                             "(0 = unbounded)")
    worker.add_argument("--max-misses", type=int, default=0,
                        help="exit after this many consecutive failed "
                             "polls (0 = never: the circuit breaker "
                             "paces reconnection to a dead daemon)")
    worker.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="local run cache (connected workers never "
                             "use the daemon's filesystem; results "
                             "still reach the daemon's cache through "
                             "POST /complete)")
    worker.add_argument("-q", "--quiet", action="store_true")
    worker.set_defaults(fn=_cmd_worker)

    audit = sub.add_parser(
        "audit", help="re-execute a seeded sample of a campaign's done "
                      "points and verify bit-identical fingerprints",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    audit.add_argument("dir", help="campaign directory to audit")
    audit.add_argument("--rate", type=float, default=1.0,
                       help="fraction of done points to re-execute "
                            "(seeded, deterministic; default all)")
    audit.add_argument("--seed", type=int, default=0,
                       help="sample seed (same seed -> same sample)")
    audit.add_argument("-q", "--quiet", action="store_true",
                       help="only report mismatches and the summary")
    audit.set_defaults(fn=_cmd_audit)

    sample = sub.add_parser(
        "sample", help="sampled simulation: BBV profile -> k-means regions "
                       "-> checkpointed cycle-accurate runs")
    sample.add_argument("workload")
    sample.add_argument("--engine", default="baseline",
                        choices=_ENGINE_CHOICES)
    sample.add_argument("-n", "--instructions", type=int, default=100_000,
                        help="instructions to profile (the full-run length)")
    sample.add_argument("--interval", type=int, default=10_000,
                        help="BBV interval size in instructions")
    sample.add_argument("-k", "--clusters", type=int, default=4,
                        help="number of k-means clusters / regions")
    sample.add_argument("--seed", type=int, default=42,
                        help="clustering seed (projection + k-means++)")
    sample.add_argument("--warmup", type=int, default=2_000,
                        help="pre-region instructions replayed into the "
                             "branch predictor and caches at checkpoint boot")
    sample.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="checkpoint shard store (one JSON per region "
                             "start, e.g. benchmarks/results/checkpoints)")
    sample.add_argument("--validate", action="store_true",
                        help="also run the full program cycle-accurately "
                             "and report the sampled-vs-full IPC error")
    sample.add_argument("--report", metavar="PATH", default=None,
                        help="write the sampling (or validation) report "
                             "as JSON")
    sample.set_defaults(fn=_cmd_sample)

    perf = sub.add_parser(
        "perf", help="best-of-N wall-clock perf smoke, append-only perf "
                     "history, and noise-aware regression comparison",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    perf.add_argument("--rounds", type=int, default=3)
    perf.add_argument("--out", metavar="PATH", default=None,
                      help="write the JSON perf record here")
    perf.add_argument("--sampling", action="store_true",
                      help="also measure sampled-vs-full wall-clock "
                           "speedup and IPC error on one workload")
    perf.add_argument("--record", action="store_true",
                      help="append this measurement to the perf history "
                           "(an immutable shard under --history-dir) and "
                           "mirror the newest record to BENCH_perf.json")
    perf.add_argument("--history-dir", metavar="DIR",
                      default="benchmarks/perf_history",
                      help="append-only perf-history directory")
    perf.add_argument("--compare", nargs="?", const="", metavar="BASE",
                      default=None,
                      help="compare two existing records without "
                           "simulating: BASE (or the second-newest "
                           "history shard) against --against (or the "
                           "newest); exits 7 on a same-host regression")
    perf.add_argument("--against", metavar="PATH", default=None,
                      help="the 'new' record for --compare (default: "
                           "newest history shard)")
    perf.add_argument("--margin", type=float, default=5.0,
                      help="regression margin in percent, added on top "
                           "of the measured best-of-N noise floor")
    perf.add_argument("--compare-out", metavar="PATH", default=None,
                      help="write the --compare delta report as JSON")
    perf.add_argument("--explain-skip", action="store_true",
                      help="run each perf point once and break down the "
                           "idle-skip economics (quiescence walks, "
                           "vetoes, bulk advances) instead of measuring")
    perf.add_argument("--profile-hot", action="store_true",
                      help="cProfile each perf point per storage engine "
                           "(columnar and legacy) and write the top-N "
                           "hot-function tables (default "
                           "BENCH_perf_profile.json) instead of measuring")
    perf.add_argument("--top", type=int, default=20,
                      help="functions per table for --profile-hot")
    perf.add_argument("--min-cycles-per-sec", type=float, default=None,
                      metavar="FLOOR",
                      help="absolute speed floor: exit 7 if any measured "
                           "(or, with --compare, any 'new'-record) point "
                           "simulates fewer cycles per second than FLOOR")
    perf.set_defaults(fn=_cmd_perf)

    ab = sub.add_parser(
        "ab",
        help="columnar-vs-legacy A/B cycle-exactness check",
        description="Run each workload x engine pair twice — once on the "
                    "columnar structure-of-arrays core state and once on "
                    "the legacy object-graph state — and diff cycles, all "
                    "SimStats fields, and a digest of the full commit "
                    "stream.  Any difference is a correctness bug in the "
                    "columnar refactor, reported with exit code 4.",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ab.add_argument("-w", "--workloads", nargs="+",
                    default=["astar", "sssp"],
                    help="workloads to A/B (default: astar sssp)")
    ab.add_argument("--engines", nargs="+", default=["baseline", "phelps"],
                    choices=_ENGINE_CHOICES)
    ab.add_argument("-n", "--instructions", type=int, default=30_000)
    ab.add_argument("--json", metavar="PATH", default=None,
                    help="write all A/B reports as JSON")
    ab.set_defaults(fn=_cmd_ab)

    sub.add_parser("costs", help="print Table II").set_defaults(fn=_cmd_costs)

    guard = sub.add_parser(
        "guard",
        help="simulation health: golden-model guard runs and the "
             "fault-injection chaos suite",
        description="Run workloads under the golden-model co-simulation "
                    "guard (and, at --level full, the cycle-level invariant "
                    "sanitizer), or inject the chaos-suite fault classes "
                    "and check every one recovers or fails fast typed.",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    guard.add_argument("-w", "--workloads", nargs="+", default=None,
                       help="workloads to run (default: all registry "
                            "workloads)")
    guard.add_argument("--engines", nargs="+",
                       default=["baseline", "phelps"],
                       choices=_ENGINE_CHOICES,
                       help="engines for guard runs (default: baseline "
                            "and phelps)")
    guard.add_argument("--matrix", action="store_true",
                       help="alias for the acceptance matrix: all registry "
                            "workloads x default engines (same as passing "
                            "no -w)")
    guard.add_argument("--chaos", action="store_true",
                       help="run the fault-injection chaos suite instead "
                            "of guard runs")
    guard.add_argument("--level", default="commit",
                       choices=["commit", "full"],
                       help="guard level: 'commit' checks every retired "
                            "main-thread uop against the oracle; 'full' "
                            "adds the per-cycle invariant sanitizer")
    guard.add_argument("--interval", type=int, default=1,
                       help="invariant-sweep interval in cycles "
                            "(level=full only)")
    guard.add_argument("-n", "--instructions", type=int, default=30_000)
    guard.add_argument("--seed", type=int, default=1,
                       help="chaos-suite injection seed (deterministic "
                            "replay)")
    guard.add_argument("--bundle", metavar="PATH", default=None,
                       help="on guard failure, write the diagnostic bundle "
                            "JSON here; with --chaos, write the full suite "
                            "report")
    guard.set_defaults(fn=_cmd_guard)

    trace = sub.add_parser("trace", help="pipeline-trace a short run")
    trace.add_argument("workload")
    trace.add_argument("--engine", default="baseline",
                       choices=["baseline", "phelps"])
    trace.add_argument("-n", "--instructions", type=int, default=2000)
    trace.add_argument("--last", type=int, default=40)
    trace.set_defaults(fn=_cmd_trace)

    ins = sub.add_parser("inspect", help="show the helper thread Phelps builds")
    ins.add_argument("workload")
    ins.add_argument("-n", "--instructions", type=int, default=80_000)
    ins.add_argument("--limit", type=int, default=40)
    ins.set_defaults(fn=_cmd_inspect)
    return p


def _write_bundle(args, doc: dict) -> None:
    path = getattr(args, "bundle", None)
    if not path:
        return
    atomic_write_json(path, doc, indent=1, sort_keys=True, default=str)
    print(f"diagnostic bundle -> {path}", file=sys.stderr)


def main(argv=None) -> int:
    from repro.guard.errors import (DivergenceError, InvariantViolation,
                                    SimulationHang)
    from repro.harness.parallel import SimulationFailed, SweepInterrupted

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except SweepInterrupted as exc:
        print(f"INTERRUPTED: {exc}; completed results were flushed "
              f"(resume a journaled sweep with --resume)", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("INTERRUPTED", file=sys.stderr)
        return EXIT_INTERRUPTED
    except SimulationHang as exc:
        print(f"HANG: {exc}", file=sys.stderr)
        _write_bundle(args, exc.report.to_dict())
        return EXIT_HANG
    except DivergenceError as exc:
        print(f"DIVERGENCE: {exc}", file=sys.stderr)
        _write_bundle(args, exc.report.to_dict())
        return EXIT_DIVERGENCE
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}", file=sys.stderr)
        _write_bundle(args, exc.report.to_dict())
        return EXIT_INVARIANT
    except SimulationFailed as exc:
        print(f"WORKER FAILURE: {exc}", file=sys.stderr)
        _write_bundle(args, {"failures": [
            {"index": i, "workload": c.workload, "engine": c.engine,
             "error": err} for i, c, err in exc.failures]})
        return EXIT_WORKER_FAILURE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
