"""Command-line interface.

::

    python -m repro list
    python -m repro run astar --engine phelps -n 80000
    python -m repro run astar --engine phelps --metrics-json m.json --trace-out t.json
    python -m repro stats astar --engine phelps
    python -m repro compare bfs --engines baseline phelps perfbp
    python -m repro costs
    python -m repro inspect astar
"""

import argparse
import json
import sys

from repro.harness import RunConfig, ascii_table, epoch_table, metrics_report, simulate
from repro.obs import ObserveConfig, write_chrome_trace
from repro.phelps import PhelpsConfig
from repro.phelps.budget import cost_table
from repro.workloads import workload_names


def _cmd_list(args) -> int:
    print("\n".join(workload_names()))
    return 0


def _metrics_payload(result) -> dict:
    """The ``--metrics-json`` document: run summary + full counter
    snapshot + per-epoch timeseries."""
    s = result.stats
    return {
        "workload": result.config.workload,
        "engine": result.config.engine,
        "cycles": s.cycles,
        "retired": s.retired,
        "ipc": s.ipc,
        "mpki": s.mpki,
        "mispredicts": s.mispredicts,
        "helper_retired": s.helper_retired,
        "halted": s.halted,
        "wall_seconds": result.wall_seconds,
        "counters": s.metrics,
        "epochs": s.epochs,
    }


def _cmd_run(args) -> int:
    observe = bool(args.observe or args.metrics_json or args.trace_out
                   or args.profile)
    ocfg = ObserveConfig(profile=args.profile,
                         pipeline_trace=bool(args.trace_out)) if observe else None
    cfg = RunConfig(workload=args.workload, engine=args.engine,
                    max_instructions=args.instructions,
                    observe=observe, observe_config=ocfg)
    result = simulate(cfg)
    s = result.stats
    print(f"{args.workload} [{args.engine}] "
          f"{s.retired:,} insts in {s.cycles:,} cycles "
          f"({result.wall_seconds:.1f}s wall)")
    print(f"  IPC {s.ipc:.3f}  MPKI {s.mpki:.2f}  "
          f"mispredicts {s.mispredicts:,}  helper insts {s.helper_retired:,}")
    if args.verbose and s.engine:
        for k, v in s.engine.items():
            print(f"  {k}: {v}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            json.dump(_metrics_payload(result), fh, indent=1, default=str)
        print(f"  metrics -> {args.metrics_json} "
              f"({len(s.metrics)} counters, {len(s.epochs)} epoch samples)")
    if args.trace_out:
        n = write_chrome_trace(args.trace_out, result.obs.events.events(),
                               tracer=result.obs.tracer)
        print(f"  chrome trace -> {args.trace_out} ({n} events; open in "
              f"Perfetto / chrome://tracing)")
    if args.profile:
        print(result.obs.profiler.report())
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base_rate = None
    for engine in args.engines:
        r = simulate(RunConfig(workload=args.workload, engine=engine,
                               max_instructions=args.instructions))
        # A run can halt (or wedge) with 0 cycles or 0 retired; report
        # "n/a" rather than dividing by zero.
        rate = r.stats.retired / r.cycles if r.cycles else 0.0
        if base_rate is None:
            base_rate = rate
        speedup = rate / base_rate if base_rate else None
        rows.append([engine, r.ipc, r.mpki,
                     speedup if speedup is not None else "n/a"])
    print(ascii_table(["engine", "IPC", "MPKI", "speedup"], rows))
    return 0


def _cmd_stats(args) -> int:
    ocfg = ObserveConfig(profile=args.profile)
    cfg = RunConfig(workload=args.workload, engine=args.engine,
                    max_instructions=args.instructions, observe_config=ocfg)
    result = simulate(cfg)
    s = result.stats
    print(f"{args.workload} [{args.engine}]  {s.summary()}")
    print(f"\n== per-epoch timeseries "
          f"(every {result.obs.sampler.epoch_instructions:,} insts) ==")
    print(epoch_table(s.epochs))
    print("\n== counters ==")
    print(metrics_report(s.metrics, prefix=args.prefix))
    if args.profile:
        print("\n== simulator wall-clock by stage ==")
        print(result.obs.profiler.report())
    return 0


def _cmd_costs(args) -> int:
    print(cost_table())
    return 0


def _cmd_trace(args) -> int:
    from repro.core import Core, CoreConfig
    from repro.core.trace import PipelineTracer
    from repro.phelps import PhelpsEngine
    from repro.workloads import build_workload

    engine = PhelpsEngine(PhelpsConfig()) if args.engine == "phelps" else None
    core = Core(build_workload(args.workload), config=CoreConfig(), engine=engine)
    tracer = PipelineTracer(core)
    core.run(max_instructions=args.instructions)
    print(tracer.render(last=args.last))
    print(f"\navg fetch-to-retire latency: {tracer.average_latency():.1f} cycles, "
          f"{len(tracer.squashed())} squashed uops in window")
    return 0


def _cmd_inspect(args) -> int:
    from repro.core import Core, CoreConfig
    from repro.phelps import PhelpsEngine
    from repro.workloads import build_workload

    engine = PhelpsEngine(PhelpsConfig())
    core = Core(build_workload(args.workload), config=CoreConfig(), engine=engine)
    core.run(max_instructions=args.instructions)
    print(f"epochs: {engine.epoch_index}, activations: {engine.activations}")
    print(f"loop status: {engine.loop_status}")
    for start, row in engine.htc.rows.items():
        kind = "nested (OT+IT)" if row.is_nested else "inner-thread-only"
        print(f"\nHTC row @ {start:#x}: {kind}, {row.size} instructions, "
              f"{len(row.queue_assignment)} queues")
        for inst in (row.outer_insts + row.inner_insts)[:args.limit]:
            print(f"  {inst!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Phelps (HPCA 2025) reproduction: cycle-level simulation driver")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="simulate one workload/engine pair")
    run.add_argument("workload")
    run.add_argument("--engine", default="baseline",
                     choices=["baseline", "perfbp", "phelps", "br",
                              "br_nonspec", "br12", "partition_only"])
    run.add_argument("-n", "--instructions", type=int, default=100_000)
    run.add_argument("-v", "--verbose", action="store_true")
    run.add_argument("--observe", action="store_true",
                     help="enable the observability layer (metrics registry, "
                          "epoch timeseries, event trace)")
    run.add_argument("--metrics-json", metavar="PATH",
                     help="write the metric snapshot + epoch timeseries as "
                          "JSON (implies --observe)")
    run.add_argument("--trace-out", metavar="PATH",
                     help="write a Chrome trace-event JSON (Perfetto-"
                          "loadable) of engine events + pipeline slices "
                          "(implies --observe)")
    run.add_argument("--profile", action="store_true",
                     help="attribute simulator wall-clock per pipeline "
                          "stage (implies --observe)")
    run.set_defaults(fn=_cmd_run)

    stats = sub.add_parser(
        "stats", help="run one workload with full observability and "
                      "pretty-print counters + per-epoch timeseries")
    stats.add_argument("workload")
    stats.add_argument("--engine", default="phelps",
                       choices=["baseline", "perfbp", "phelps", "br",
                                "br_nonspec", "br12", "partition_only"])
    stats.add_argument("-n", "--instructions", type=int, default=100_000)
    stats.add_argument("--prefix", default="",
                       help="only show counters under this dotted prefix "
                            "(e.g. phelps.queues)")
    stats.add_argument("--profile", action="store_true")
    stats.set_defaults(fn=_cmd_stats)

    cmp_ = sub.add_parser("compare", help="run several engines on one workload")
    cmp_.add_argument("workload")
    cmp_.add_argument("--engines", nargs="+",
                      default=["baseline", "phelps", "perfbp"])
    cmp_.add_argument("-n", "--instructions", type=int, default=100_000)
    cmp_.set_defaults(fn=_cmd_compare)

    sub.add_parser("costs", help="print Table II").set_defaults(fn=_cmd_costs)

    trace = sub.add_parser("trace", help="pipeline-trace a short run")
    trace.add_argument("workload")
    trace.add_argument("--engine", default="baseline",
                       choices=["baseline", "phelps"])
    trace.add_argument("-n", "--instructions", type=int, default=2000)
    trace.add_argument("--last", type=int, default=40)
    trace.set_defaults(fn=_cmd_trace)

    ins = sub.add_parser("inspect", help="show the helper thread Phelps builds")
    ins.add_argument("workload")
    ins.add_argument("-n", "--instructions", type=int, default=80_000)
    ins.add_argument("--limit", type=int, default=40)
    ins.set_defaults(fn=_cmd_inspect)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
