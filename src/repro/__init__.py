"""repro — a full reproduction of "Delinquent Loop Pre-execution Using
Predicated Helper Threads" (HPCA 2025).

Public API tour:

* :mod:`repro.isa` — the mini RISC-V-like ISA, assembler DSL, and
  functional executor the whole system is built on;
* :mod:`repro.core` — the out-of-order superscalar core (Table III) with
  SMT-style partitioning (Table I) and the pre-execution engine interface;
* :mod:`repro.phelps` — the paper's contribution: predicated helper
  threads, loop-iteration-lockstep prediction queues, dual decoupled
  helper threads, and the epoch controller;
* :mod:`repro.runahead` — the Branch Runahead comparator;
* :mod:`repro.workloads` — synthetic astar / GAP / SPEC2017-like kernels;
* :mod:`repro.harness` — ``simulate(RunConfig(...))`` and experiment
  sweeps that regenerate every figure and table.

Quickstart::

    from repro.harness import RunConfig, simulate

    base = simulate(RunConfig(workload="astar", engine="baseline"))
    phelps = simulate(RunConfig(workload="astar", engine="phelps"))
    print(base.mpki, "->", phelps.mpki)
"""

from repro.harness import RunConfig, SimResult, simulate
from repro.core import Core, CoreConfig
from repro.phelps import PhelpsConfig, PhelpsEngine
from repro.workloads import build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "RunConfig",
    "SimResult",
    "simulate",
    "Core",
    "CoreConfig",
    "PhelpsConfig",
    "PhelpsEngine",
    "build_workload",
    "workload_names",
    "__version__",
]
