"""Figure 12a: speedups of perfBP, Phelps, and Branch Runahead (+BR-12w)
over the baseline core, across GAP + astar + SPEC2017-like workloads.

Shape targets: big Phelps wins on bfs/bc-class graph kernels and astar;
Phelps ~1.0 on SPEC2017-likes (helper threads ineligible or branches not
delinquent); BR at or below 1.0 on most workloads with BR-12w recovering;
perfBP as the ceiling.
"""

from repro.harness import ascii_table

from benchmarks.common import (ALL_WORKLOADS, GAP_WORKLOADS, emit, prewarm,
                               run, speedup_of)

ENGINES = ["perfbp", "phelps", "br", "br12"]


def _collect():
    prewarm((w, e) for w in ALL_WORKLOADS for e in ["baseline"] + ENGINES)
    table = {}
    for w in ALL_WORKLOADS:
        base = run(w, "baseline")
        table[w] = {"baseline": base}
        for e in ENGINES:
            table[w][e] = run(w, e)
    return table


def test_fig12a_speedups(benchmark):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for w in ALL_WORKLOADS:
        base = table[w]["baseline"]
        rows.append([w] + [speedup_of(table[w][e], base) for e in ENGINES])
    emit("fig12a_speedup", ascii_table(["workload"] + ENGINES, rows))

    sp = {w: {e: speedup_of(table[w][e], table[w]["baseline"]) for e in ENGINES}
          for w in ALL_WORKLOADS}

    # perfBP is (near) the ceiling everywhere.
    for w in ALL_WORKLOADS:
        assert sp[w]["perfbp"] >= sp[w]["phelps"] * 0.95, w

    # Phelps: significant speedups on the delinquent graph kernels + astar.
    assert sp["bfs"]["phelps"] > 1.3
    assert sp["bc"]["phelps"] > 1.1
    assert sp["astar"]["phelps"] > 1.05
    gap_wins = sum(1 for w in GAP_WORKLOADS if sp[w]["phelps"] > 1.1)
    assert gap_wins >= 4

    # Phelps never activates (or stays neutral) on predictable SPEC-likes.
    for w in ["exchange2", "x264", "mcf", "gcc", "leela", "omnetpp"]:
        assert 0.93 <= sp[w]["phelps"] <= 1.07, w

    # Phelps beats BR on the delinquent workloads.
    for w in GAP_WORKLOADS + ["astar"]:
        assert sp[w]["phelps"] >= sp[w]["br"] * 0.98, w

    # BR-12w >= BR (the main thread keeps baseline resources).
    br12_wins = sum(1 for w in ALL_WORKLOADS if sp[w]["br12"] >= sp[w]["br"] * 0.97)
    assert br12_wins >= len(ALL_WORKLOADS) * 2 // 3

    benchmark.extra_info["phelps_speedups"] = {w: round(sp[w]["phelps"], 3)
                                               for w in ALL_WORKLOADS}
