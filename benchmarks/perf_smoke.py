"""Simulator perf smoke: wall-clock / instructions-per-second trajectory.

Runs the fixed measurement points from :mod:`repro.harness.perf`
(best-of-3 each, cycle-skip on and off) and writes ``BENCH_perf.json`` at
the repo root so future PRs have a perf baseline to compare against.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--rounds N] [--out PATH]

Equivalent to ``python -m repro perf --out BENCH_perf.json``.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.harness.perf import perf_smoke, write_perf_record  # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).parent.parent / "BENCH_perf.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    record = perf_smoke(rounds=args.rounds)
    for p in record["points"]:
        print(f"{p['label']}: {p['instr_per_sec']:,} instr/s "
              f"(skip speedup {p['cycle_skip_speedup']}x)")
    write_perf_record(args.out, record)
    print(f"perf record -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
