"""Figure 15: (a) window-size and pipeline-depth sensitivity;
(b) bfs speedups on different input graphs.

Shape targets: Phelps speedups persist (or grow) at ROB 1024 on bc/bfs;
deeper pipelines increase Phelps' advantage (bigger misprediction
penalty); bfs wins on all three input graphs.
"""

from repro.core import CoreConfig
from repro.harness import ascii_table

from benchmarks.common import emit, run, speedup_of

WINDOWS = [316, 632, 1024]
DEPTHS = [11, 15, 19]
WINDOW_WORKLOADS = ["bc", "bfs", "astar"]
BFS_INPUTS = ["bfs", "bfs_web", "bfs_uniform"]


def _window_core(rob: int, depth: int = 11) -> CoreConfig:
    cfg = CoreConfig(pipeline_stages=depth)
    rob_rounded = rob // 8 * 8
    return cfg.with_window(rob_rounded)


def test_fig15a_window_size(benchmark):
    def collect():
        table = {}
        for w in WINDOW_WORKLOADS:
            table[w] = {}
            for rob in WINDOWS:
                core = _window_core(rob)
                table[w][rob] = {
                    "baseline": run(w, "baseline", core=core),
                    "phelps": run(w, "phelps", core=core),
                }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    sp = {}
    for w in WINDOW_WORKLOADS:
        sp[w] = {rob: speedup_of(table[w][rob]["phelps"], table[w][rob]["baseline"])
                 for rob in WINDOWS}
        rows.append([w] + [sp[w][rob] for rob in WINDOWS])
    emit("fig15a_window", ascii_table(["workload"] + [f"ROB {r}" for r in WINDOWS], rows))

    # Phelps keeps winning across window sizes on the delinquent kernels.
    for w in WINDOW_WORKLOADS:
        assert sp[w][632] > 1.02, w
        assert sp[w][1024] > 1.0, w
    benchmark.extra_info["speedups"] = {w: {str(r): round(v, 3) for r, v in d.items()}
                                        for w, d in sp.items()}


def test_fig15a_pipeline_depth(benchmark):
    def collect():
        table = {}
        for w in ["bfs", "astar"]:
            table[w] = {}
            for depth in DEPTHS:
                core = CoreConfig(pipeline_stages=depth)
                table[w][depth] = {
                    "baseline": run(w, "baseline", core=core),
                    "phelps": run(w, "phelps", core=core),
                }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    sp = {}
    for w in table:
        sp[w] = {d: speedup_of(table[w][d]["phelps"], table[w][d]["baseline"])
                 for d in DEPTHS}
        rows.append([w] + [sp[w][d] for d in DEPTHS])
    emit("fig15a_depth", ascii_table(["workload"] + [f"{d} stages" for d in DEPTHS], rows))

    # Deeper pipelines raise the misprediction penalty: Phelps' advantage
    # grows monotonically-ish (paper: astar 15/22/27%, bfs 64/70/74%).
    for w in sp:
        assert sp[w][19] > sp[w][11] * 0.98, w
        assert sp[w][19] > 1.05, w


def test_fig15b_bfs_inputs(benchmark):
    def collect():
        return {w: {"baseline": run(w, "baseline"), "phelps": run(w, "phelps")}
                for w in BFS_INPUTS}

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    sp = {}
    for w in BFS_INPUTS:
        sp[w] = speedup_of(table[w]["phelps"], table[w]["baseline"])
        rows.append([w, sp[w], table[w]["baseline"]["mpki"], table[w]["phelps"]["mpki"]])
    emit("fig15b_bfs_inputs", ascii_table(
        ["input", "speedup", "baseline MPKI", "Phelps MPKI"], rows))

    # bfs speeds up on every input graph (paper Fig. 15b).
    for w in BFS_INPUTS:
        assert sp[w] > 1.1, w
