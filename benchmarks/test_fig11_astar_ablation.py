"""Figure 11: Phelps vs Branch Runahead on astar, plus feature ablations.

Paper: BR-non-spec < BR-spec (29%) < Phelps full (47%); MPKI 29.5 -> 2.68
(full), 13.4 (b1->b2), 22.9 (b1), 24.5 (b1->s1).  Shape targets: the same
ordering, with b1->s1 no better than b1 (unsuppressed stores poison b1).
"""

import dataclasses

from repro.harness import ascii_table
from repro.phelps import PhelpsConfig

from benchmarks.common import PHELPS, emit, run, speedup_of

CONFIGS = [
    ("BR-non-spec", "br_nonspec", None),
    ("BR-spec", "br", None),
    ("Phelps:b1->b2->s1", "phelps", PHELPS),
    ("Phelps:b1->b2", "phelps", PHELPS.ablation_b1_b2()),
    ("Phelps:b1", "phelps", PHELPS.ablation_b1()),
    ("Phelps:b1->s1", "phelps", PHELPS.ablation_b1_s1()),
]


def _collect():
    base = run("astar", "baseline")
    rows = []
    results = {}
    for label, engine, pcfg in CONFIGS:
        r = run("astar", engine, phelps_config=pcfg)
        results[label] = r
        rows.append([label, speedup_of(r, base), r["mpki"], r["ipc"]])
    rows.insert(0, ["baseline", 1.0, base["mpki"], base["ipc"]])
    return base, results, rows


def test_fig11_astar_ablation(benchmark):
    base, results, rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit("fig11_astar_ablation",
         ascii_table(["config", "speedup", "MPKI", "IPC"], rows))

    full = results["Phelps:b1->b2->s1"]
    b1b2 = results["Phelps:b1->b2"]
    b1 = results["Phelps:b1"]
    b1s1 = results["Phelps:b1->s1"]
    br = results["BR-spec"]
    br_ns = results["BR-non-spec"]

    # Shape assertions from the paper:
    assert full["mpki"] < b1b2["mpki"] < b1["mpki"]          # feature order
    assert b1s1["mpki"] >= b1["mpki"] * 0.9                  # s1 w/o b2 hurts
    assert speedup_of(full, base) > speedup_of(br, base)     # Phelps > BR
    assert speedup_of(br, base) >= speedup_of(br_ns, base) * 0.98  # spec >= non-spec
    assert full["mpki"] < base["mpki"] * 0.75                # big MPKI cut

    benchmark.extra_info["full_speedup"] = speedup_of(full, base)
    benchmark.extra_info["full_mpki"] = full["mpki"]
    benchmark.extra_info["baseline_mpki"] = base["mpki"]
