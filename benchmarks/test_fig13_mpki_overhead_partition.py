"""Figure 13: (a) MPKI reduction, (b) retired helper-thread instructions,
(c) impact of partitioning alone on the main thread.

Shape targets: (a) large MPKI reductions on most GAP kernels + astar;
(b) nontrivial helper-instruction overhead (paper: mean 34.7 M per 100 M);
(c) partitioning alone costs a few percent to tens of percent, worst for
high-ILP kernels (the paper's exchange2: 31%).
"""

from repro.harness import ascii_table

from benchmarks.common import GAP_WORKLOADS, emit, prewarm, run, speedup_of

WORKLOADS = GAP_WORKLOADS + ["astar"]


def _collect_a_b():
    prewarm((w, e) for w in WORKLOADS for e in ("baseline", "phelps"))
    table = {}
    for w in WORKLOADS:
        table[w] = {"baseline": run(w, "baseline"), "phelps": run(w, "phelps")}
    return table


def test_fig13a_mpki_reduction(benchmark):
    table = benchmark.pedantic(_collect_a_b, rounds=1, iterations=1)
    rows = []
    reductions = {}
    for w in WORKLOADS:
        base, ph = table[w]["baseline"], table[w]["phelps"]
        red = 1 - ph["mpki"] / base["mpki"] if base["mpki"] else 0.0
        reductions[w] = red
        rows.append([w, base["mpki"], ph["mpki"], f"{100 * red:.1f}%"])
    emit("fig13a_mpki", ascii_table(
        ["workload", "baseline MPKI", "Phelps MPKI", "reduction"], rows))

    # Paper: 72-91% on four of six GAP kernels (large regions); our scaled
    # regions include the training epochs, so expect >= 25% on at least
    # four kernels and >= 40% on the best ones.
    big = sum(1 for w in WORKLOADS if reductions[w] >= 0.25)
    assert big >= 4
    assert max(reductions.values()) >= 0.4
    benchmark.extra_info["reductions"] = {w: round(r, 3) for w, r in reductions.items()}


def test_fig13b_helper_overhead(benchmark):
    table = benchmark.pedantic(_collect_a_b, rounds=1, iterations=1)
    rows = []
    for w in WORKLOADS:
        ph = table[w]["phelps"]
        per100 = 100.0 * ph["helper_retired"] / max(ph["retired"], 1)
        rows.append([w, ph["helper_retired"], f"{per100:.1f}"])
    emit("fig13b_overhead", ascii_table(
        ["workload", "helper insts retired", "per 100 MT insts"], rows))

    # Paper: mean overhead 34.7 helper instructions per 100 retired.
    overheads = [100.0 * table[w]["phelps"]["helper_retired"]
                 / max(table[w]["phelps"]["retired"], 1) for w in WORKLOADS]
    mean = sum(overheads) / len(overheads)
    assert 10 <= mean <= 120
    benchmark.extra_info["mean_overhead_per_100"] = round(mean, 1)


def test_fig13c_partitioning_cost(benchmark):
    def collect():
        table = {}
        for w in WORKLOADS + ["exchange2", "perlbench"]:
            table[w] = {
                "baseline": run(w, "baseline"),
                "partition": run(w, "partition_only"),
            }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    slowdowns = {}
    for w, entry in table.items():
        slow = 1 - speedup_of(entry["partition"], entry["baseline"])
        slowdowns[w] = slow
        rows.append([w, entry["baseline"]["ipc"], entry["partition"]["ipc"],
                     f"{100 * slow:.1f}%"])
    emit("fig13c_partition", ascii_table(
        ["workload", "IPC full", "IPC half", "slowdown"], rows))

    # Everything slows down somewhat; high-ILP exchange2 hurts most among
    # the predictable kernels (paper: 2%..31%).
    assert all(s > -0.02 for s in slowdowns.values())
    assert slowdowns["exchange2"] > 0.10
    assert slowdowns["exchange2"] > slowdowns["perlbench"]
    assert max(slowdowns.values()) < 0.60
