"""Design-choice ablations (beyond the paper's figures).

DESIGN.md commits to ablating the key structural parameters Phelps fixes
by fiat in Table II: prediction-queue depth (32 iterations), speculative
store-cache geometry (16x2 doublewords), and the epoch length.  These
sweeps justify the paper's choices on our substrate.
"""

import dataclasses

from repro.harness import ascii_table
from repro.phelps import PhelpsConfig

from benchmarks.common import PHELPS, emit, run, speedup_of


def test_queue_depth_sweep(benchmark):
    """Shallow queues cap how far the helper thread can run ahead."""
    depths = [4, 32, 128]

    def collect():
        base = run("astar", "baseline")
        out = {"baseline": base}
        for d in depths:
            cfg = dataclasses.replace(PHELPS, queue_depth=d)
            out[d] = run("astar", "phelps", phelps_config=cfg)
        return out

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    base = table["baseline"]
    rows = [[d, speedup_of(table[d], base), table[d]["mpki"],
             table[d]["engine"]["queue"]["not_timely"]] for d in depths]
    emit("ablation_queue_depth", ascii_table(
        ["queue depth", "speedup", "MPKI", "not timely"], rows))

    # Depth 4 strangles runahead relative to the paper's 32.
    assert table[4]["engine"]["queue"]["not_timely"] >= \
        table[32]["engine"]["queue"]["not_timely"]
    assert speedup_of(table[32], base) >= speedup_of(table[4], base) * 0.98
    # Diminishing returns beyond 32 (the paper's choice is near the knee).
    assert speedup_of(table[128], base) <= speedup_of(table[32], base) * 1.10


def test_spec_cache_geometry_sweep(benchmark):
    """The 16x2 speculative cache loses data (stale helper reads);
    a larger cache reduces wrong outcomes."""
    geometries = [(2, 2), (16, 2), (64, 4)]

    def collect():
        base = run("astar", "baseline")
        out = {"baseline": base}
        for sets, ways in geometries:
            cfg = dataclasses.replace(PHELPS, spec_cache_sets=sets,
                                      spec_cache_ways=ways)
            out[(sets, ways)] = run("astar", "phelps", phelps_config=cfg)
        return out

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    base = table["baseline"]
    rows = []
    for g in geometries:
        key = g if g in table else list(table)[1]
        e = table[g]
        rows.append([f"{g[0]}x{g[1]}", speedup_of(e, base), e["mpki"],
                     e["engine"]["queue_wrong"], e["engine"]["spec_cache_losses"]])
    emit("ablation_spec_cache", ascii_table(
        ["geometry", "speedup", "MPKI", "wrong outcomes", "evictions"], rows))

    tiny, paper, big = (table[g] for g in geometries)
    assert tiny["engine"]["spec_cache_losses"] >= paper["engine"]["spec_cache_losses"]
    assert big["engine"]["queue_wrong"] <= tiny["engine"]["queue_wrong"]


def test_epoch_length_sweep(benchmark):
    """Short epochs deploy helper threads sooner but train CDFSM/slices on
    fewer iterations; long epochs delay deployment."""
    epochs = [8_000, 20_000, 50_000]

    def collect():
        base = run("bfs", "baseline")
        out = {"baseline": base}
        for ep in epochs:
            cfg = dataclasses.replace(PHELPS, epoch_length=ep)
            out[ep] = run("bfs", "phelps", phelps_config=cfg)
        return out

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    base = table["baseline"]
    rows = [[ep, speedup_of(table[ep], base), table[ep]["mpki"],
             table[ep]["engine"]["activations"]] for ep in epochs]
    emit("ablation_epoch_length", ascii_table(
        ["epoch length", "speedup", "MPKI", "activations"], rows))

    # All three deploy and win; 50k deploys at 100k-instruction regions
    # only just in time, so the mid value should be at least competitive.
    assert all(speedup_of(table[ep], base) > 1.0 for ep in epochs[:2])
    assert speedup_of(table[20_000], base) >= speedup_of(table[50_000], base) * 0.95
