import sys
import pathlib

# Make `benchmarks.common` importable when pytest roots at the repo.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
