"""Tables I, II, III: configuration and cost tables regenerated from code."""

from fractions import Fraction

from repro.core import CoreConfig, PartitionPlan
from repro.harness import ascii_table
from repro.memory import MemoryConfig
from repro.phelps import component_costs, total_cost_bytes
from repro.phelps.budget import total_cost_kb

from benchmarks.common import emit


def test_table1_partitioning(benchmark):
    def collect():
        cfg = CoreConfig()
        out = {}
        for mode in ("MT_ITO", "MT_OT_IT"):
            plan = PartitionPlan(cfg, mode)
            out[mode] = {role: plan.share(role) for role in plan.roles()}
        return out

    shares = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for mode, roles in shares.items():
        for role, s in roles.items():
            rows.append([mode, role, s.fetch_width, s.rob, s.prf_quota, s.lq, s.sq])
    emit("table1_partitioning", ascii_table(
        ["mode", "thread", "fetch", "ROB", "PRF", "LQ", "SQ"], rows))

    # Table I fractions.
    mt_ito = shares["MT_ITO"]
    assert mt_ito["MT"].rob == mt_ito["ITO"].rob == 316
    nested = shares["MT_OT_IT"]
    assert nested["MT"].rob == 316        # 1/2
    assert nested["OT"].rob == 79         # 1/8
    assert nested["IT"].rob == 237        # 3/8
    assert nested["MT"].fetch_width == 4
    assert nested["OT"].fetch_width == 1
    assert nested["IT"].fetch_width == 3


def test_table2_component_costs(benchmark):
    costs = benchmark.pedantic(component_costs, rounds=1, iterations=1)
    rows = [[name, f"{b:.1f}"] for name, b in costs]
    rows.append(["TOTAL", f"{total_cost_bytes():.0f} B = {total_cost_kb():.2f} KB"])
    emit("table2_costs", ascii_table(["component", "bytes"], rows))

    named = dict(costs)
    assert named["DBT"] == 5280
    assert named["HTC"] == 2432
    assert named["Visit Queue"] == 560
    assert abs(total_cost_kb() - 10.82) < 0.01
    benchmark.extra_info["total_kb"] = round(total_cost_kb(), 2)


def test_table3_core_config(benchmark):
    def collect():
        return CoreConfig(), MemoryConfig()

    core, mem = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        ["fetch/retire width", f"{core.fetch_width}/{core.retire_width}"],
        ["pipeline stages", core.pipeline_stages],
        ["ROB/PRF/LQ/SQ/IQ",
         f"{core.rob_size}/{core.prf_size}/{core.lq_size}/{core.sq_size}/{core.iq_size}"],
        ["lanes (simple/mem/complex)",
         f"{core.lanes_simple}/{core.lanes_mem}/{core.lanes_complex}"],
        ["L1I", f"{mem.l1i_size // 1024}KB {mem.l1i_ways}-way"],
        ["L1D", f"{mem.l1d_size // 1024}KB {mem.l1d_ways}-way {mem.l1d_latency}cy"],
        ["L2", f"{mem.l2_size // 1024}KB {mem.l2_ways}-way {mem.l2_latency}cy"],
        ["L3", f"{mem.l3_size // 1024}KB {mem.l3_ways}-way {mem.l3_latency}cy"],
        ["DRAM", f"{mem.dram_latency}cy"],
    ]
    emit("table3_core", ascii_table(["parameter", "value"], rows))

    # Table III values.
    assert core.rob_size == 632 and core.prf_size == 696
    assert core.lq_size == core.sq_size == 144 and core.iq_size == 128
    assert core.pipeline_stages == 11
    assert mem.l1d_size == 48 * 1024 and mem.l1d_ways == 12
    assert mem.l2_latency == 15 and mem.l3_latency == 40 and mem.dram_latency == 100
