"""Figure 14: misprediction taxonomy under Phelps.

For every workload, the Phelps run's retired mispredictions are classified
by why they were not eliminated (training phases, helper ineligibility,
non-delinquency), plus the eliminated share vs the baseline run.

Shape targets (paper):
  * GAP + astar: most mispredictions eliminated;
  * mcf: dominated by "del. but not in loop" (callee branch);
  * leela/deepsjeng/omnetpp: "too big" / "not delinquent";
  * xz: split between "not delinquent" and "not iterating";
  * gcc: DBT thrash -> "gathering";
  * xalanc/exchange2/x264: predictable or not delinquent.
"""

from repro.harness import ascii_table

from benchmarks.common import ALL_WORKLOADS, emit, prewarm, run

CLASSES = ["eliminated", "gathering", "being_constructed", "not_chosen",
           "too_big", "not_iterating", "ot_depends_on_it", "not_in_loop",
           "not_delinquent", "deployed_residual", "installed_not_active"]


def _collect():
    prewarm((w, e) for w in ALL_WORKLOADS for e in ("baseline", "phelps"))
    table = {}
    for w in ALL_WORKLOADS:
        base = run(w, "baseline")
        ph = run(w, "phelps")
        classes = dict(ph["engine"].get("misp_classes", {}))
        eliminated = max(0, base["mispredicts"] - ph["mispredicts"])
        classes["eliminated"] = eliminated
        table[w] = {"classes": classes, "base": base, "phelps": ph}
    return table


def test_fig14_misp_breakdown(benchmark):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for w in ALL_WORKLOADS:
        classes = table[w]["classes"]
        total = sum(classes.values()) or 1
        rows.append([w] + [f"{100 * classes.get(c, 0) / total:.0f}%" for c in CLASSES])
    emit("fig14_breakdown", ascii_table(["workload"] + CLASSES, rows))

    def share(w, cls):
        classes = table[w]["classes"]
        total = sum(classes.values()) or 1
        return classes.get(cls, 0) / total

    # GAP + astar: eliminated is the biggest single cause of change.  (The
    # paper's SimPoints are steady-state; our regions include the two
    # training epochs, which caps the whole-region eliminated share.)
    for w in ["bfs", "pr", "cc", "astar"]:
        assert share(w, "eliminated") > 0.25, w

    # mcf: delinquent but not inside contiguous loop bounds.
    assert share("mcf", "not_in_loop") > 0.3

    # leela / omnetpp / deepsjeng: helper thread too big.
    for w in ["leela", "omnetpp", "deepsjeng"]:
        assert share(w, "too_big") > 0.2, w

    # xz: short-trip loops -> not iterating enough (plus non-delinquent).
    assert share("xz", "not_iterating") + share("xz", "not_delinquent") > 0.3

    # gcc: DBT thrash keeps branches "gathering".
    assert share("gcc", "gathering") > 0.5

    # xalanc: individually non-delinquent branches.
    assert share("xalanc", "not_delinquent") > 0.3
