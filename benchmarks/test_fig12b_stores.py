"""Figure 12b: Phelps with and without helper-thread stores.

Shape targets: predicated stores are critical on astar and bc (workloads
whose delinquent branches are influenced by guarded stores); bfs loses
less accuracy because its store-to-load distances are long (the main
thread usually retires the store first).
"""

from repro.harness import ascii_table

from benchmarks.common import (GAP_WORKLOADS, PHELPS, emit, prewarm, run,
                               speedup_of)

WORKLOADS = GAP_WORKLOADS + ["astar"]


def _collect():
    prewarm([(w, e) for w in WORKLOADS for e in ("baseline", "phelps")]
            + [(w, "phelps", {"phelps_config": PHELPS.without_stores()})
               for w in WORKLOADS])
    table = {}
    for w in WORKLOADS:
        table[w] = {
            "baseline": run(w, "baseline"),
            "with": run(w, "phelps"),
            "without": run(w, "phelps", phelps_config=PHELPS.without_stores()),
        }
    return table


def test_fig12b_store_importance(benchmark):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for w in WORKLOADS:
        base = table[w]["baseline"]
        rows.append([
            w,
            speedup_of(table[w]["with"], base),
            speedup_of(table[w]["without"], base),
            table[w]["with"]["mpki"],
            table[w]["without"]["mpki"],
        ])
    emit("fig12b_stores", ascii_table(
        ["workload", "speedup w/ stores", "speedup w/o stores",
         "MPKI w/", "MPKI w/o"], rows))

    # astar: the doubly-guarded s1 is essential.
    astar = table["astar"]
    assert astar["with"]["mpki"] < astar["without"]["mpki"] * 0.95
    # bc: sigma updates influence future sigma reads (at worst neutral).
    bc = table["bc"]
    assert bc["with"]["mpki"] <= bc["without"]["mpki"] * 1.1
    # Stores help or stay neutral overall on the majority.
    better = sum(1 for w in WORKLOADS
                 if table[w]["with"]["mpki"] <= table[w]["without"]["mpki"] * 1.05)
    assert better >= len(WORKLOADS) - 2
