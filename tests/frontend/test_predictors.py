import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import (
    BimodalPredictor,
    GsharePredictor,
    TageConfig,
    TageSCL,
)


def _train_and_measure(predictor, stream, warmup=0):
    """Run (pc, taken) pairs through predict/spec_update/update; return accuracy.

    Models the hardware history-repair loop: the predicted direction is
    speculatively shifted into history, and on a misprediction the history
    is restored from the pre-branch checkpoint and the actual outcome is
    inserted (exactly what squash-recovery does in the core).
    """
    correct = 0
    total = 0
    for i, (pc, taken) in enumerate(stream):
        cp = predictor.checkpoint()
        meta = predictor.predict(pc)
        predictor.spec_update(pc, meta.taken)
        if meta.taken != taken:
            predictor.restore(cp)
            predictor.spec_update(pc, taken)
        predictor.update(pc, taken, meta)
        if i >= warmup:
            total += 1
            correct += int(meta.taken == taken)
    return correct / max(total, 1)


def _alternating(pc, n):
    return [(pc, bool(i % 2)) for i in range(n)]


def _biased(pc, n, rng, p_taken=0.95):
    return [(pc, rng.random() < p_taken) for i in range(n)]


def _random_stream(pc, n, rng):
    return [(pc, rng.random() < 0.5) for _ in range(n)]


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor()
        acc = _train_and_measure(p, [(0x1000, True)] * 100, warmup=4)
        assert acc == 1.0

    def test_learns_always_not_taken(self):
        p = BimodalPredictor()
        acc = _train_and_measure(p, [(0x1000, False)] * 100, warmup=4)
        assert acc == 1.0

    def test_alternating_is_poor(self):
        p = BimodalPredictor()
        acc = _train_and_measure(p, _alternating(0x1000, 200), warmup=10)
        assert acc < 0.7

    def test_distinct_pcs_use_distinct_counters(self):
        p = BimodalPredictor()
        stream = [(0x1000, True), (0x2000, False)] * 50
        acc = _train_and_measure(p, stream, warmup=4)
        assert acc == 1.0

    def test_confidence_tracks_saturation(self):
        p = BimodalPredictor()
        for _ in range(4):
            p.update(0x1000, True)
        assert p.confidence(0x1000)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=1000)


class TestGshare:
    def test_learns_alternating_pattern(self):
        p = GsharePredictor()
        acc = _train_and_measure(p, _alternating(0x1000, 400), warmup=100)
        assert acc > 0.95

    def test_learns_period_4_pattern(self):
        p = GsharePredictor()
        pattern = [True, True, False, True]
        stream = [(0x1000, pattern[i % 4]) for i in range(800)]
        acc = _train_and_measure(p, stream, warmup=200)
        assert acc > 0.9

    def test_checkpoint_restore_roundtrip(self):
        p = GsharePredictor()
        for i in range(20):
            p.spec_update(0x1000, bool(i % 3))
        cp = p.checkpoint()
        before = p.predict(0x1000).taken
        p.spec_update(0x1000, True)
        p.spec_update(0x1000, False)
        p.restore(cp)
        assert p.predict(0x1000).taken == before


class TestTage:
    def test_learns_constant_direction_fast(self):
        p = TageSCL()
        acc = _train_and_measure(p, [(0x1000, True)] * 200, warmup=10)
        assert acc > 0.99

    def test_learns_alternating(self):
        p = TageSCL()
        acc = _train_and_measure(p, _alternating(0x1000, 600), warmup=200)
        assert acc > 0.95

    def test_learns_long_period_pattern(self):
        """A period-12 pattern needs > bimodal/gshare-short history."""
        p = TageSCL()
        pattern = [True] * 11 + [False]
        stream = [(0x1000, pattern[i % 12]) for i in range(3000)]
        acc = _train_and_measure(p, stream, warmup=1000)
        assert acc > 0.95

    def test_random_data_dependent_branch_stays_delinquent(self):
        """The defining property: arbitrary-data branches are unpredictable."""
        rng = random.Random(7)
        p = TageSCL()
        acc = _train_and_measure(p, _random_stream(0x1000, 4000, rng), warmup=500)
        assert acc < 0.65

    def test_biased_branch_tracks_bias(self):
        rng = random.Random(11)
        p = TageSCL()
        acc = _train_and_measure(p, _biased(0x1000, 3000, rng, 0.95), warmup=500)
        assert acc > 0.9

    def test_correlated_branches(self):
        """Branch B repeats branch A's outcome: global history captures it."""
        rng = random.Random(3)
        p = TageSCL()
        stream = []
        for _ in range(1500):
            a = rng.random() < 0.5
            stream.append((0x1000, a))
            stream.append((0x2000, a))
        correct_b = 0
        total_b = 0
        for i, (pc, taken) in enumerate(stream):
            cp = p.checkpoint()
            meta = p.predict(pc)
            p.spec_update(pc, meta.taken)
            if meta.taken != taken:
                p.restore(cp)
                p.spec_update(pc, taken)
            p.update(pc, taken, meta)
            if pc == 0x2000 and i > 600:
                total_b += 1
                correct_b += int(meta.taken == taken)
        assert correct_b / total_b > 0.95

    def test_loop_predictor_nails_constant_trip_count(self):
        cfg = TageConfig(use_loop=True)
        p = TageSCL(cfg)
        trip = 37  # too long for comfortable history capture
        stream = []
        for _ in range(60):
            stream.extend([(0x1000, True)] * trip)
            stream.append((0x1000, False))
        acc = _train_and_measure(p, stream, warmup=len(stream) // 2)
        assert acc > 0.98

    def test_loop_predictor_disabled_config(self):
        cfg = TageConfig(use_loop=False)
        p = TageSCL(cfg)
        assert p._loops == {}

    def test_checkpoint_restore_roundtrip(self):
        p = TageSCL()
        for i in range(50):
            p.spec_update(0x1000 + 4 * (i % 5), bool(i % 3))
        cp = p.checkpoint()
        ghr_before = p._ghr
        p.spec_update(0x1000, True)
        p.spec_update(0x1004, False)
        p.restore(cp)
        assert p._ghr == ghr_before

    def test_history_lengths_are_geometric(self):
        cfg = TageConfig(num_tables=6, min_history=4, max_history=128)
        lengths = cfg.history_lengths()
        assert lengths[0] == 4
        assert lengths[-1] == 128
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0x1000, 0x1100), st.booleans()), max_size=200))
    def test_never_crashes_on_random_streams(self, stream):
        p = TageSCL(TageConfig(table_entries=64, base_entries=128))
        for pc, taken in stream:
            pc &= ~3
            meta = p.predict(pc)
            p.spec_update(pc, meta.taken)
            p.update(pc, taken, meta)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32))
    def test_counters_stay_in_range_after_training(self, seed):
        rng = random.Random(seed)
        p = TageSCL(TageConfig(table_entries=64, base_entries=128))
        for _ in range(300):
            pc = rng.randrange(0x1000, 0x1100) & ~3
            taken = rng.random() < 0.5
            meta = p.predict(pc)
            p.spec_update(pc, meta.taken)
            p.update(pc, taken, meta)
        for table in p._tables:
            assert all(0 <= c <= 7 for c in table.ctrs)
            assert all(0 <= u <= 3 for u in table.useful)
        assert all(0 <= c <= 3 for c in p._base)
