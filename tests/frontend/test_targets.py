import pytest

from repro.frontend import BranchTargetBuffer, IndirectTargetPredictor, ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.insert(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer()
        btb.insert(0x1000, 0x2000)
        btb.insert(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.insert(0x1000, 1)
        btb.insert(0x1004, 2)
        btb.lookup(0x1000)          # make 0x1000 MRU
        btb.insert(0x1008, 3)       # evicts 0x1004
        assert btb.lookup(0x1000) == 1
        assert btb.lookup(0x1004) is None
        assert btb.lookup(0x1008) == 3

    def test_different_sets_do_not_conflict(self):
        btb = BranchTargetBuffer(sets=4, ways=1)
        btb.insert(0x1000, 1)
        btb.insert(0x1004, 2)
        assert btb.lookup(0x1000) == 1
        assert btb.lookup(0x1004) == 2

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=3)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_pop_empty_returns_none(self):
        assert ReturnAddressStack().pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_checkpoint_restore(self):
        ras = ReturnAddressStack()
        ras.push(1)
        cp = ras.checkpoint()
        ras.push(2)
        ras.restore(cp)
        assert ras.pop() == 1
        assert ras.pop() is None


class TestIndirect:
    def test_last_target(self):
        p = IndirectTargetPredictor()
        assert p.predict(0x1000) is None
        p.update(0x1000, 0x5000)
        assert p.predict(0x1000) == 0x5000
        p.update(0x1000, 0x6000)
        assert p.predict(0x1000) == 0x6000
