from repro.core import Core, CoreConfig
from repro.core.trace import PipelineTracer
from repro.isa import Assembler
from repro.memory import MemoryConfig


def _core_with_tracer(n_insts=50, limit=10_000):
    a = Assembler("t")
    a.li("x1", 0)
    for i in range(n_insts):
        a.addi("x1", "x1", 1)
    a.halt()
    core = Core(a.build(), config=CoreConfig().scaled(),
                mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                        enable_l2_prefetcher=False))
    tracer = PipelineTracer(core, limit=limit)
    return core, tracer


class TestTracer:
    def test_stage_order_monotone(self):
        core, tracer = _core_with_tracer()
        core.run()
        retired = tracer.retired()
        assert len(retired) == 52
        for t in retired:
            if t.opcode in ("halt", "nop"):  # done at dispatch, never issue
                assert t.fetch <= t.dispatch <= t.retire
            else:
                assert t.fetch <= t.dispatch <= t.issue <= t.writeback <= t.retire

    def test_halts_and_nops_traced(self):
        core, tracer = _core_with_tracer()
        core.run()
        ops = {t.opcode for t in tracer.retired()}
        assert "halt" in ops

    def test_render_contains_rows(self):
        core, tracer = _core_with_tracer()
        core.run()
        text = tracer.render(last=5)
        assert "addi" in text
        assert len(text.splitlines()) == 6

    def test_average_latency_at_least_pipeline_depth(self):
        core, tracer = _core_with_tracer()
        core.run()
        assert tracer.average_latency() >= core.config.pipeline_stages - 2

    def test_limit_bounds_memory(self):
        core, tracer = _core_with_tracer(n_insts=100, limit=20)
        core.run()
        assert len(tracer.traces) <= 20

    def test_squashed_uops_marked(self):
        a = Assembler("sq")
        arr = a.data("arr", [(i * 73) % 2 for i in range(64)])
        a.li("x1", arr)
        a.li("x2", 64)
        a.li("x3", 0)
        a.label("loop")
        a.slli("x5", "x3", 3)
        a.add("x5", "x5", "x1")
        a.ld("x6", "x5", 0)
        a.beq("x6", "x0", "skip")
        a.addi("x4", "x4", 1)
        a.label("skip")
        a.addi("x3", "x3", 1)
        a.blt("x3", "x2", "loop")
        a.halt()
        core = Core(a.build(), config=CoreConfig().scaled(),
                    mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                            enable_l2_prefetcher=False))
        tracer = PipelineTracer(core)
        stats = core.run()
        assert stats.mispredicts > 0
        assert len(tracer.squashed()) > 0
        for t in tracer.squashed():
            assert t.retire == -1


class TestFifoEviction:
    """Regression tests: the FIFO ``limit`` must evict the oldest
    (thread, seq) keys from *both* ``traces`` and ``order`` in lockstep."""

    def test_oldest_keys_evicted_from_both_structures(self):
        core, tracer = _core_with_tracer(n_insts=100, limit=20)
        core.run()
        assert len(tracer.traces) <= 20
        assert len(tracer.order) <= 20
        # No orphans in either direction.
        assert set(tracer.order) == set(tracer.traces)
        # Survivors are the *youngest* sequence numbers, in FIFO order.
        seqs = [seq for _, seq in tracer.order]
        assert seqs == sorted(seqs)
        evicted_max = max(seqs)
        assert all(seq > evicted_max - 20 for seq in seqs)

    def test_accessors_survive_eviction(self):
        core, tracer = _core_with_tracer(n_insts=200, limit=10)
        core.run()
        # retired()/squashed()/render() index traces via order; after heavy
        # eviction they must not KeyError.
        assert all(t.retire >= 0 for t in tracer.retired())
        tracer.squashed()
        rendered = tracer.render(last=5)
        assert len(rendered.splitlines()) <= 2 + 5

    def test_limit_one(self):
        core, tracer = _core_with_tracer(n_insts=30, limit=1)
        core.run()
        assert len(tracer.traces) == 1
        assert list(tracer.order) == list(tracer.traces)
