"""Pipeline corner cases: indirect jumps, RAS depth, structural stalls,
MSHR pressure, and wrong-path behaviour."""

import pytest

from repro.core import Core, CoreConfig
from repro.isa import Assembler, run_program
from repro.memory import MemoryConfig
from tests.core.conftest import arch_reg, small_core


def _build(fn, name="t"):
    a = Assembler(name)
    fn(a)
    return a.build()


class TestIndirectControl:
    def test_jalr_computed_dispatch_table(self):
        """An indirect jump whose target alternates: the last-target
        predictor mispredicts on change but execution stays correct."""
        def prog(a):
            a.li("x5", 0)      # accumulator
            a.li("x6", 0)      # i
            a.li("x7", 40)
            a.label("loop")
            a.andi("x8", "x6", 1)
            a.slli("x8", "x8", 3)    # 0 or 8: offset into table
            a.li("x9", 0)            # will hold target
            # Compute target: even -> even_case, odd -> odd_case.
            a.beq("x8", "x0", "even_path")
            a.li("x9", 0)
            a.label("even_path")
            a.nop()
            a.addi("x6", "x6", 1)
            a.blt("x6", "x7", "loop")
            a.halt()

        core = small_core(_build(prog))
        stats = core.run()
        assert stats.halted

    def test_jalr_via_register_target(self):
        def prog(a):
            a.li("x5", 0)
            a.li("x6", 0)
            a.li("x7", 30)
            a.label("loop")
            # Call through a register that always points at 'fn'.
            a.li("x10", 0)
            a.label("setaddr")
            a.nop()
            a.call("fn")
            a.addi("x6", "x6", 1)
            a.blt("x6", "x7", "loop")
            a.halt()
            a.label("fn")
            a.addi("x5", "x5", 2)
            a.ret()

        core = small_core(_build(prog))
        stats = core.run()
        assert stats.halted
        assert arch_reg(core, 5) == 60

    def test_deep_recursion_overflows_ras(self):
        """Recursion deeper than the RAS: returns mispredict but execute
        correctly."""
        def prog(a):
            a.li("x10", 40)          # depth > RAS depth of 32
            a.call("rec")
            a.mv("x11", "x10")
            a.halt()
            a.label("rec")
            a.beq("x10", "x0", "base")
            a.addi("x10", "x10", -1)
            # Save ra on a software stack.
            a.addi("sp", "sp", -8)
            a.li("x12", 0x800000)
            a.add("x13", "sp", "x12")
            a.sd("ra", "x13", 0)
            a.call("rec")
            a.li("x12", 0x800000)
            a.add("x13", "sp", "x12")
            a.ld("ra", "x13", 0)
            a.addi("sp", "sp", 8)
            a.addi("x10", "x10", 1)
            a.ret()
            a.label("base")
            a.ret()

        p = _build(prog)
        ref = run_program(p, max_steps=100_000)
        core = small_core(p)
        stats = core.run(max_cycles=500_000)
        assert stats.halted
        assert arch_reg(core, 11) == ref.regs[11]


class TestStructuralStalls:
    def test_tiny_rob_still_correct(self):
        def prog(a):
            arr = a.data("arr", list(range(32)))
            a.li("x1", arr)
            a.li("x2", 32)
            a.li("x3", 0)
            a.li("x4", 0)
            a.label("loop")
            a.slli("x5", "x3", 3)
            a.add("x5", "x5", "x1")
            a.ld("x6", "x5", 0)
            a.add("x4", "x4", "x6")
            a.addi("x3", "x3", 1)
            a.blt("x3", "x2", "loop")
            a.halt()

        cfg = CoreConfig(rob_size=16, prf_size=48, lq_size=8, sq_size=8, iq_size=8)
        core = Core(_build(prog), config=cfg,
                    mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                            enable_l2_prefetcher=False))
        stats = core.run()
        assert stats.halted
        assert arch_reg(core, 4) == sum(range(32))

    def test_tiny_iq_serializes_but_correct(self):
        def prog(a):
            for i in range(100):
                a.li(2 + (i % 6), i)
            a.halt()

        cfg = CoreConfig(rob_size=64, prf_size=96, lq_size=8, sq_size=8, iq_size=2)
        core = Core(_build(prog), config=cfg,
                    mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                            enable_l2_prefetcher=False))
        stats = core.run()
        assert stats.halted
        assert stats.retired == 101

    def test_store_queue_pressure(self):
        def prog(a):
            buf = a.alloc("buf", 64)
            a.li("x1", buf)
            for i in range(64):
                a.li("x2", i * 3)
                a.sd("x2", "x1", i * 8)
            a.halt()

        cfg = CoreConfig(rob_size=64, prf_size=96, lq_size=8, sq_size=4, iq_size=16)
        core = Core(_build(prog), config=cfg,
                    mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                            enable_l2_prefetcher=False))
        stats = core.run()
        assert stats.halted
        buf = core.program.addr_of("buf")
        for i in range(64):
            assert core.mem[buf + i * 8] == i * 3


class TestMemoryPressure:
    def test_many_parallel_misses_use_mshrs(self):
        """Independent loads spread over distant lines: MSHRs merge and
        overlap the misses."""
        def prog(a):
            a.li("x1", 0x400000)
            for i in range(32):
                a.slli("x5", "x0", 0)
                a.li("x5", 0x400000 + i * 4096)
                a.ld(8 + (i % 8), "x5", 0)
            a.halt()

        core = small_core(_build(prog))
        stats = core.run()
        assert stats.halted
        assert core.hierarchy.mshrs.allocations > 8

    def test_wrong_path_loads_do_not_corrupt_memory(self):
        def prog(a):
            arr = a.data("arr", [(i * 7) % 2 for i in range(64)])
            buf = a.alloc("buf", 4)
            a.li("x1", arr)
            a.li("x7", buf)
            a.li("x2", 64)
            a.li("x3", 0)
            a.label("loop")
            a.slli("x5", "x3", 3)
            a.add("x5", "x5", "x1")
            a.ld("x6", "x5", 0)
            a.beq("x6", "x0", "skip")     # mispredicts often
            a.li("x8", 0xdead)
            a.sd("x8", "x7", 0)           # store on the taken path
            a.label("skip")
            a.addi("x3", "x3", 1)
            a.blt("x3", "x2", "loop")
            a.halt()

        p = _build(prog)
        ref = run_program(p)
        core = small_core(p)
        stats = core.run()
        assert stats.mispredicts > 0
        buf = p.addr_of("buf")
        assert core.mem.get(buf, 0) == ref.mem.get(buf, 0)
