import pytest

from repro.core import Core, CoreConfig
from repro.memory import MemoryConfig


def small_core(program, **overrides):
    """A scaled-down core for fast tests."""
    cfg = CoreConfig().scaled()
    for k, v in overrides.items():
        setattr(cfg, k, v)
    mem = MemoryConfig(enable_l1_prefetcher=False, enable_l2_prefetcher=False)
    return Core(program, config=cfg, mem_config=mem)


def arch_reg(core, logical):
    """Committed architectural value of logical register ``logical``."""
    return core.prf.read(core.main.amt.lookup(logical))


@pytest.fixture
def make_core():
    return small_core
