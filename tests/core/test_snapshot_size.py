"""Snapshot blobs must shrink under the columnar refactor.

The columnar classes serialize their columns as packed bytes
(``array('q').tobytes()``, packed cache words) instead of element-wise
object graphs, so a mid-run snapshot of the columnar engine must be
strictly smaller than the same boundary snapshotted from the legacy
engine — while restoring to the same simulation.
"""

import dataclasses
import pickle

from repro.core import Core, CoreConfig
from repro.workloads import build_workload


def _snapshot_blob(columnar: bool) -> bytes:
    core = Core(build_workload("astar"),
                config=CoreConfig(columnar=columnar))
    blobs = []
    core.run(max_instructions=10_000, snapshot_interval=8000,
             on_snapshot=blobs.append)
    assert blobs, "run never reached a snapshot boundary"
    return blobs[-1], core.collect_stats()


def test_columnar_snapshot_is_smaller():
    col_blob, col_stats = _snapshot_blob(columnar=True)
    leg_blob, leg_stats = _snapshot_blob(columnar=False)
    # Same simulation on both sides of the size comparison.
    assert col_stats.cycles == leg_stats.cycles
    assert col_stats.retired == leg_stats.retired
    assert len(col_blob) < len(leg_blob), \
        f"columnar snapshot ({len(col_blob)}B) not smaller than " \
        f"legacy ({len(leg_blob)}B)"


def test_columnar_components_pickle_compact():
    # The per-structure claim behind the blob-level one: a populated
    # columnar register file round-trips through pickle smaller than the
    # legacy twin holding identical contents.
    from repro.core import legacy
    from repro.core.regfile import PhysRegFile

    new, old = PhysRegFile(512), legacy.LegacyPhysRegFile(512)
    for reg in range(1, 512):
        # Representative 64-bit register contents (pointers, hashes) —
        # where the packed column beats per-element int pickling.
        value = (reg * 0x9E3779B97F4A7C15) % (1 << 63)
        new.write(reg, value)
        old.write(reg, value)
    assert len(pickle.dumps(new)) < len(pickle.dumps(old))
    restored = pickle.loads(pickle.dumps(new))
    assert restored.value == new.value
    assert restored.ready == new.ready
