"""The PreExecutionEngine contract: the NullEngine must be a true no-op,
and every hook the pipeline calls must exist with a safe default."""

from repro.core import Core, CoreConfig, NullEngine, PreExecutionEngine
from repro.core.engine_api import PreExecutionEngine as Base
from repro.isa import Assembler
from repro.memory import MemoryConfig


def _tiny_program():
    a = Assembler()
    a.li("x1", 1)
    a.li("x2", 2)
    a.add("x3", "x1", "x2")
    a.halt()
    return a.build()


class TestNullEngine:
    def test_defaults_are_safe(self):
        e = NullEngine()
        assert e.fetch_override(None, None) is None
        assert e.checkpoint() is None
        assert e.retire_blocked(None, None) is False
        assert e.stats() == {}
        # No-ops must not raise.
        e.restore(None)
        e.note_fetched(None, None)
        e.note_refetched(None, None)
        e.on_squash(None, None)
        e.on_retire(None, None)
        e.on_cycle(0)
        e.on_helper_branch_mispredicted(None, None)

    def test_core_without_engine_uses_null(self):
        core = Core(_tiny_program())
        assert isinstance(core.engine, Base)
        stats = core.run()
        assert stats.halted

    def test_attach_stores_core_reference(self):
        e = NullEngine()
        core = Core(_tiny_program(), engine=e)
        assert e.core is core


class RecordingEngine(PreExecutionEngine):
    def __init__(self):
        self.events = []

    def note_fetched(self, thread, uop):
        self.events.append(("fetch", uop.pc))

    def on_retire(self, thread, uop):
        self.events.append(("retire", uop.pc))

    def on_cycle(self, cycle):
        pass


class TestHookDelivery:
    def test_fetch_and_retire_hooks_fire_in_order(self):
        e = RecordingEngine()
        core = Core(_tiny_program(), config=CoreConfig().scaled(),
                    mem_config=MemoryConfig(enable_l1_prefetcher=False,
                                            enable_l2_prefetcher=False),
                    engine=e)
        core.run()
        fetched = [pc for kind, pc in e.events if kind == "fetch"]
        retired = [pc for kind, pc in e.events if kind == "retire"]
        assert retired == [0x1000, 0x1004, 0x1008, 0x100c]
        # Every retired instruction was fetched first.
        assert set(retired) <= set(fetched)
