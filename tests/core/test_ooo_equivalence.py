"""The golden property: out-of-order execution with speculation, forwarding,
violations and recovery must produce exactly the architectural state of
in-order functional execution."""

from hypothesis import given, settings, strategies as st

from repro.isa import Assembler, run_program
from repro.isa.opcodes import Opcode
from tests.core.conftest import arch_reg, small_core


@st.composite
def random_programs(draw):
    """Random terminating programs with loops, branches, loads, and stores.

    Structure: a counted outer loop (guaranteed termination) whose body is a
    random mix of ALU ops, loads/stores into a small scratch array, and
    forward branches that skip a random number of body instructions.
    """
    a = Assembler("rand")
    scratch = a.data("scratch", [draw(st.integers(-50, 50)) for _ in range(8)])
    trip = draw(st.integers(1, 12))
    a.li("x1", scratch)
    a.li("x2", trip)
    a.li("x3", 0)  # induction
    for r in range(4, 10):
        a.li(r, draw(st.integers(-20, 20)))
    a.label("loop")

    n_body = draw(st.integers(3, 25))
    ops = [Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR,
           Opcode.MUL, Opcode.SLT, Opcode.MIN, Opcode.MAX]
    skip_id = 0
    emitted = 0
    while emitted < n_body:
        kind = draw(st.integers(0, 9))
        rd = draw(st.integers(4, 9))
        rs1 = draw(st.integers(3, 9))
        rs2 = draw(st.integers(3, 9))
        if kind <= 4:
            a._emit(draw(st.sampled_from(ops)), rd, rs1, rs2)
        elif kind == 5:
            a.addi(rd, rs1, draw(st.integers(-10, 10)))
        elif kind == 6:
            # load from scratch[(x{rs1} & 7)]
            a.andi(10, rs1, 7)
            a.slli(10, 10, 3)
            a.add(10, 10, 1)
            a.ld(rd, 10, 0)
            emitted += 3
        elif kind == 7:
            a.andi(10, rs1, 7)
            a.slli(10, 10, 3)
            a.add(10, 10, 1)
            a.sd(rs2, 10, 0)
            emitted += 3
        else:
            # forward branch skipping the next few instructions
            label = f"skip{skip_id}"
            skip_id += 1
            op = draw(st.sampled_from([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]))
            a._branch(op, rs1, rs2, label)
            for _ in range(draw(st.integers(1, 3))):
                a._emit(draw(st.sampled_from(ops)),
                        draw(st.integers(4, 9)),
                        draw(st.integers(3, 9)),
                        draw(st.integers(3, 9)))
                emitted += 1
            a.label(label)
        emitted += 1

    a.addi("x3", "x3", 1)
    a.blt("x3", "x2", "loop")
    a.halt()
    return a.build()


class TestOOOEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_matches_in_order_execution(self, program):
        ref = run_program(program, max_steps=200_000)
        core = small_core(program)
        stats = core.run(max_cycles=2_000_000)
        assert stats.halted, "OOO core failed to reach HALT"
        for i in range(1, 16):
            assert arch_reg(core, i) == ref.regs[i], f"x{i} mismatch"
        for addr, val in ref.mem.items():
            assert core.mem.get(addr, 0) == val, f"mem[{addr:#x}] mismatch"
        assert stats.retired == ref.retired

    @settings(max_examples=15, deadline=None)
    @given(random_programs())
    def test_matches_with_perfect_prediction(self, program):
        ref = run_program(program, max_steps=200_000)
        core = small_core(program, perfect_branch_prediction=True)
        stats = core.run(max_cycles=2_000_000)
        assert stats.halted
        assert stats.mispredicts == 0
        for i in range(1, 16):
            assert arch_reg(core, i) == ref.regs[i]
        for addr, val in ref.mem.items():
            assert core.mem.get(addr, 0) == val

    @settings(max_examples=10, deadline=None)
    @given(random_programs())
    def test_resource_conservation_at_halt(self, program):
        """No physical registers leak across a full run."""
        core = small_core(program)
        core.run(max_cycles=2_000_000)
        held = core.pool.held_by(core.main.id)
        committed = len(set(core.main.rmt.mapped_physical()))
        in_flight = sum(1 for u in core.main.rob if u.phys_dest is not None)
        assert held == committed + in_flight
