"""Event-driven idle-cycle skipping must be architecturally invisible.

``Core.run`` jumps the clock over quiescent stretches; every reported
number (cycles, IPC, MPKI, mispredicts, helper activity) must be
identical to the naive cycle-by-cycle loop across all engines.
"""

import dataclasses

import pytest

from repro.core import CoreConfig
from repro.harness.simulator import RunConfig, simulate
from repro.memory.hierarchy import MemoryConfig

N = 6_000

POINTS = [
    ("astar", "baseline"),
    ("astar", "phelps"),
    ("sssp", "baseline"),
    ("bfs", "br"),
    ("bfs", "br_nonspec"),
    ("astar", "partition_only"),
]


def _pair(workload, engine, **kw):
    fast_cfg = RunConfig(workload=workload, engine=engine,
                         max_instructions=N, **kw)
    naive_cfg = dataclasses.replace(
        fast_cfg, core=CoreConfig(enable_cycle_skip=False))
    return simulate(fast_cfg).stats, simulate(naive_cfg).stats


@pytest.mark.parametrize("workload,engine", POINTS)
def test_cycle_skip_is_cycle_exact(workload, engine):
    fast, naive = _pair(workload, engine)
    assert naive.idle_cycles_skipped == 0
    assert (fast.cycles, fast.retired) == (naive.cycles, naive.retired)
    assert fast.ipc == naive.ipc
    assert fast.mpki == naive.mpki
    assert fast.mispredicts == naive.mispredicts
    assert fast.retired_branches == naive.retired_branches
    assert fast.helper_retired == naive.helper_retired
    assert fast.full_squashes == naive.full_squashes


def test_stall_heavy_run_actually_skips():
    fast, naive = _pair("sssp", "baseline")
    assert fast.idle_cycles_skipped > 0
    assert fast.idle_cycles_skipped < fast.cycles


def test_slow_memory_skips_majority_of_cycles():
    """With 400-cycle DRAM and no prefetchers the machine is mostly idle;
    the fast path must skip a large share of cycles and still agree."""
    mem = dict(dram_latency=400, enable_l1_prefetcher=False,
               enable_l2_prefetcher=False)
    fast, naive = _pair("sssp", "baseline", memory=MemoryConfig(**mem))
    assert (fast.cycles, fast.retired, fast.mispredicts) == \
           (naive.cycles, naive.retired, naive.mispredicts)
    assert fast.idle_cycles_skipped > fast.cycles // 4


def test_skip_disabled_by_config():
    cfg = RunConfig(workload="sssp", engine="baseline", max_instructions=N,
                    core=CoreConfig(enable_cycle_skip=False))
    assert simulate(cfg).stats.idle_cycles_skipped == 0
