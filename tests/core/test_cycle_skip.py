"""Event-driven idle-cycle skipping must be architecturally invisible.

``Core.run`` jumps the clock over quiescent stretches; every reported
number (cycles, IPC, MPKI, mispredicts, helper activity) must be
identical to the naive cycle-by-cycle loop across all engines.
"""

import dataclasses

import pytest

from repro.core import CoreConfig
from repro.harness.simulator import RunConfig, simulate
from repro.memory.hierarchy import MemoryConfig

N = 6_000

POINTS = [
    ("astar", "baseline"),
    ("astar", "phelps"),
    ("sssp", "baseline"),
    ("bfs", "br"),
    ("bfs", "br_nonspec"),
    ("astar", "partition_only"),
]


def _pair(workload, engine, **kw):
    fast_cfg = RunConfig(workload=workload, engine=engine,
                         max_instructions=N, **kw)
    naive_cfg = dataclasses.replace(
        fast_cfg, core=CoreConfig(enable_cycle_skip=False))
    return simulate(fast_cfg).stats, simulate(naive_cfg).stats


@pytest.mark.parametrize("workload,engine", POINTS)
def test_cycle_skip_is_cycle_exact(workload, engine):
    fast, naive = _pair(workload, engine)
    assert naive.idle_cycles_skipped == 0
    assert (fast.cycles, fast.retired) == (naive.cycles, naive.retired)
    assert fast.ipc == naive.ipc
    assert fast.mpki == naive.mpki
    assert fast.mispredicts == naive.mispredicts
    assert fast.retired_branches == naive.retired_branches
    assert fast.helper_retired == naive.helper_retired
    assert fast.full_squashes == naive.full_squashes


def test_stall_heavy_run_actually_skips():
    fast, naive = _pair("sssp", "baseline")
    assert fast.idle_cycles_skipped > 0
    assert fast.idle_cycles_skipped < fast.cycles


def test_slow_memory_skips_majority_of_cycles():
    """With 400-cycle DRAM and no prefetchers the machine is mostly idle;
    the fast path must skip a large share of cycles and still agree."""
    mem = dict(dram_latency=400, enable_l1_prefetcher=False,
               enable_l2_prefetcher=False)
    fast, naive = _pair("sssp", "baseline", memory=MemoryConfig(**mem))
    assert (fast.cycles, fast.retired, fast.mispredicts) == \
           (naive.cycles, naive.retired, naive.mispredicts)
    assert fast.idle_cycles_skipped > fast.cycles // 4


def test_skip_disabled_by_config():
    cfg = RunConfig(workload="sssp", engine="baseline", max_instructions=N,
                    core=CoreConfig(enable_cycle_skip=False))
    assert simulate(cfg).stats.idle_cycles_skipped == 0


def test_skip_counters_account_for_every_walk():
    """Self-diagnosis counters (perf --explain-skip): every quiescence
    walk either bulk-advances, is vetoed, or found no quiescence; walks
    that advance must account for all skipped cycles."""
    fast, naive = _pair("sssp", "baseline")
    assert fast.skip_walk_cycles > 0
    assert fast.skip_bulk_advances <= fast.skip_walk_cycles
    assert fast.skip_vetoes <= fast.skip_walk_cycles
    assert fast.idle_cycles_skipped > 0
    assert fast.skip_bulk_advances > 0
    for s in (naive,):
        assert (s.skip_walk_cycles, s.skip_vetoes, s.skip_bulk_advances) \
            == (0, 0, 0)


def test_failed_walks_latch_instead_of_respinning():
    """The sssp-slow-dram regression fix: a walk that finds no quiescence
    latches the fast path off until real work recurs, so walk count stays
    far below the idle-cycle count instead of rivaling it."""
    mem = dict(dram_latency=400, enable_l1_prefetcher=False,
               enable_l2_prefetcher=False)
    fast, _ = _pair("sssp", "baseline", memory=MemoryConfig(**mem))
    assert fast.idle_cycles_skipped > fast.cycles // 4
    # Pre-latch this workload ran one walk per idle tick (tens of
    # thousands); with the latch each walk must pay for itself many
    # times over in skipped cycles.
    assert fast.skip_walk_cycles * 10 < fast.idle_cycles_skipped


def test_skip_counters_surface_in_metrics_registry():
    cfg = RunConfig(workload="sssp", engine="baseline", max_instructions=N,
                    observe=True)
    m = simulate(cfg).stats.metrics
    assert m["core.skip.walk_cycles"] > 0
    assert m["core.skip.bulk_advances"] > 0
    assert m["core.skip.vetoes"] >= 0
