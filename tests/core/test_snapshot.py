"""Mid-run core snapshot/resume: cycle-exactness, stores, rewind-and-replay.

The contract under test (see ``repro.core.snapshot``): a run configured
with ``snapshot_interval=N`` drains at every N-instruction commit
boundary whether or not anything consumes the snapshots, so a run that
restores from its last persisted snapshot is *cycle-exact* against an
uninterrupted run of the same config — stats, counters, guard progress
and all.
"""

import dataclasses
import pickle

import pytest

from repro.core import Core, CoreConfig
from repro.core.snapshot import SnapshotError, SnapshotStore, take_snapshot
from repro.guard.checker import SimGuard
from repro.guard.errors import DivergenceError
from repro.harness import RunConfig, simulate
from repro.workloads import build_workload


def _stats_key(result):
    s = result.stats
    return (s.cycles, s.retired, s.ipc, s.mpki, s.mispredicts,
            s.helper_retired, s.engine)


def _run_twice(tmp_path, **cfg_kwargs):
    """Same config against the same snapshot dir: full run, then resume."""
    cfg = RunConfig(snapshot_dir=str(tmp_path / "snaps"), **cfg_kwargs)
    full = simulate(cfg)
    resumed = simulate(cfg)
    assert full.resumed_at is None
    assert resumed.resumed_at is not None
    return full, resumed


def test_baseline_resume_cycle_exact(tmp_path):
    full, resumed = _run_twice(tmp_path, workload="astar", engine="baseline",
                               max_instructions=6000, snapshot_interval=2000)
    assert resumed.resumed_at >= 4000  # resumed from the *last* snapshot
    assert _stats_key(full) == _stats_key(resumed)
    # Full stats equality, not just headline numbers: every counter and
    # epoch sample must survive the snapshot/restore round trip.
    assert full.stats == dataclasses.replace(resumed.stats)


def test_phelps_mid_deployment_resume(tmp_path):
    # Long enough that Phelps trains, deploys helper threads, and the
    # snapshot boundary lands while rows are live (the drain terminates
    # the deployment, exactly as an epoch boundary would).
    full, resumed = _run_twice(tmp_path, workload="astar", engine="phelps",
                               max_instructions=30000,
                               snapshot_interval=10000)
    assert _stats_key(full) == _stats_key(resumed)


def test_perfbp_oracle_rewind_resume(tmp_path):
    # perfbp consults the oracle ahead of commit; the snapshot drain must
    # rewind the oracle to the retired frontier or the resumed run would
    # replay the future twice.
    full, resumed = _run_twice(tmp_path, workload="perlbench",
                               engine="perfbp", max_instructions=8000,
                               snapshot_interval=3000)
    assert _stats_key(full) == _stats_key(resumed)


def test_guard_survives_snapshot_resume(tmp_path):
    # The golden model is part of the snapshot: a resumed guarded run
    # keeps lockstep from the restored boundary and ends with the same
    # cumulative checked count as the uninterrupted run.
    kwargs = dict(workload="astar", engine="phelps", max_instructions=20000,
                  core=CoreConfig(guard_level="commit"), observe=True,
                  snapshot_interval=8000)
    full, resumed = _run_twice(tmp_path, **kwargs)
    assert _stats_key(full) == _stats_key(resumed)
    assert (full.stats.metrics["guard.checked"]
            == resumed.stats.metrics["guard.checked"] >= 20000)


def test_snapshot_requires_drained_core():
    core = Core(build_workload("astar"), config=CoreConfig())
    core.run(max_instructions=500)
    # Mid-flight core: the ROB/frontend still hold speculative uops.
    core.tick()
    if core.main.rob or core.main.frontend_q:
        with pytest.raises(SnapshotError):
            take_snapshot(core)
    # The public API drains first and therefore always succeeds.
    blob = core.snapshot()
    assert pickle.loads(blob)["cycle"] == core.cycle


def test_corrupt_snapshot_quarantined(tmp_path):
    snaps = tmp_path / "snaps"
    cfg = RunConfig(workload="astar", engine="baseline",
                    max_instructions=6000, snapshot_interval=2000,
                    snapshot_dir=str(snaps))
    clean = simulate(cfg)
    [shard] = list(snaps.glob("*.snap"))
    shard.write_bytes(b"not a pickle")
    rerun = simulate(cfg)
    # The damaged shard was moved aside, the run started from scratch,
    # and its stats still match (determinism, just slower).
    assert rerun.resumed_at is None
    assert list(snaps.glob("*.corrupt"))
    assert _stats_key(clean) == _stats_key(rerun)


def test_snapshot_store_roundtrip(tmp_path):
    store = SnapshotStore(tmp_path)
    assert store.get("k") is None
    store.put("k", b"\x00\x01blob")
    assert store.get("k") == b"\x00\x01blob"
    assert store.path_for("k").suffix == ".snap"


def test_cache_key_backward_compatible():
    base = RunConfig(workload="astar", engine="baseline",
                     max_instructions=6000)
    # snapshot_dir is storage plumbing and snapshot_interval=0 is the
    # legacy default: neither may change existing cache digests.
    assert base.cache_key() == RunConfig(
        workload="astar", engine="baseline", max_instructions=6000,
        snapshot_dir="/anywhere").cache_key()
    # A nonzero interval perturbs timing (drains) and must be visible.
    assert base.cache_key() != RunConfig(
        workload="astar", engine="baseline", max_instructions=6000,
        snapshot_interval=2000).cache_key()


def test_divergence_triggers_rewind_and_replay(tmp_path, monkeypatch):
    """A guarded run that diverges after a snapshot attaches a focused
    replay bundle: re-run from the preceding snapshot with full pipeline
    tracing, reproducing the same divergence."""
    original = SimGuard.on_retire

    def tripwire(self, thread, uop):
        if thread.retired >= 10_000:
            self._diverge(uop, "injected", "test-expected", "test-actual")
        return original(self, thread, uop)

    monkeypatch.setattr(SimGuard, "on_retire", tripwire)
    cfg = RunConfig(workload="astar", engine="baseline",
                    max_instructions=12000,
                    core=CoreConfig(guard_level="commit"), observe=True,
                    snapshot_interval=4000,
                    snapshot_dir=str(tmp_path / "snaps"))
    with pytest.raises(DivergenceError) as exc:
        simulate(cfg)
    replay = exc.value.report.replay
    assert replay is not None
    assert replay["reproduced"] is True
    assert replay["kind"] == "injected"
    # The replay started from the snapshot *before* the failure point ...
    assert 4000 <= replay["snapshot_retired"] < 10_000
    # ... and carries the focused diagnostics a bug hunt needs.
    assert replay["trace"]
    assert "replay" in exc.value.report.to_dict()
